// Shared pieces for the figure/ablation benchmark harnesses.
//
// Every harness follows the paper's protocol (§5.1): build a dataset,
// generate 100 perturbed-copy queries (scaled-down defaults are
// flag-overridable), run each method over the workload, and report the
// same series the corresponding figure plots. "Elapsed" combines measured
// CPU wall time with the simulated period disk model (see
// storage/disk_model.h and DESIGN.md).

#ifndef WARPINDEX_BENCH_COMMON_BENCH_UTIL_H_
#define WARPINDEX_BENCH_COMMON_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "obs/stage_timings.h"
#include "sequence/dataset.h"
#include "sequence/query_workload.h"

namespace warpindex {
namespace bench {

// Parses "0.5,1,2" into {0.5, 1.0, 2.0}. Exits the process on bad input.
std::vector<double> ParseDoubleList(const std::string& text);
std::vector<int64_t> ParseIntList(const std::string& text);

// Per-method aggregate over a query workload.
struct WorkloadSummary {
  double avg_candidates = 0.0;
  double candidate_ratio = 0.0;  // avg_candidates / dataset size
  double avg_matches = 0.0;
  double avg_wall_ms = 0.0;     // measured CPU per query
  double avg_io_ms = 0.0;       // simulated disk per query
  double avg_elapsed_ms = 0.0;  // wall * cpu_scale + io
  double avg_pages = 0.0;       // page reads per query
  double avg_dtw_cells = 0.0;   // DP cells per query
  double avg_dtw_evals = 0.0;   // exact-DTW evaluations started per query
  // Average per-query milliseconds per stage (rtree_search,
  // candidate_fetch, dtw_postfilter, ...).
  StageTimings avg_stage_ms;
  // Candidates-in / pruned per filtering stage, summed over the whole
  // workload (integer counters, so totals rather than averages).
  StageCounters total_prunes;
};

// Runs every query through `kind` and aggregates. `cpu_scale` multiplies
// measured CPU time in the elapsed metric: the disk model already matches
// the paper's 2001 platform, and scaling the CPU side by ~100 (modern core
// vs the paper's 400 MHz UltraSPARC-IIi) restores the period's CPU/I-O
// balance. Pass 1.0 for raw modern-hardware numbers.
WorkloadSummary RunWorkload(const Engine& engine, MethodKind kind,
                            const std::vector<Sequence>& queries,
                            double epsilon, double cpu_scale = 1.0);

// Prints the standard header block for a harness: what paper artifact it
// reproduces and the workload parameters used.
void PrintPreamble(const std::string& title, const std::string& paper_ref,
                   const std::string& workload);

// Prints one "label: stage=ms stage=ms ..." per-stage breakdown line for
// a workload summary (skipped when no stages were recorded).
void PrintStageBreakdown(std::FILE* out, const std::string& label,
                         const WorkloadSummary& summary);

std::string FormatDouble(double v, int precision = 3);

// Accumulates per-(sweep point, method) workload rows and writes them as
// JSON lines, one object per row, so benches can emit machine-readable
// per-stage output alongside their tables. Constructed with an empty path
// it is disabled (AddRow/Flush are no-ops).
class MetricsJsonWriter {
 public:
  MetricsJsonWriter(std::string bench_name, std::string path)
      : bench_name_(std::move(bench_name)), path_(std::move(path)) {}

  // `sweep_name`/`sweep_value` identify the x-axis point (e.g. "eps",
  // 2.0); `method` the series.
  void AddRow(const std::string& method, const std::string& sweep_name,
              double sweep_value, const WorkloadSummary& summary);

  // Writes all rows; exits the process on I/O failure. Returns true if a
  // file was written (false when disabled).
  bool Flush();

  bool enabled() const { return !path_.empty(); }

 private:
  std::string bench_name_;
  std::string path_;
  std::vector<std::string> rows_;
};

}  // namespace bench
}  // namespace warpindex

#endif  // WARPINDEX_BENCH_COMMON_BENCH_UTIL_H_
