#include "common/workload.h"

#include <algorithm>
#include <cmath>

namespace warpindex {
namespace bench {

ZipfianSampler::ZipfianSampler(ZipfianOptions options)
    : options_(options), rng_(options.seed) {
  const size_t n = std::max<size_t>(1, options_.num_items);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), options_.skew);
    cdf_[i] = total;
  }
  for (double& c : cdf_) {
    c /= total;
  }
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

size_t ZipfianSampler::Next() {
  const double u = uniform_(rng_);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

std::vector<size_t> GenerateZipfianIndices(const ZipfianOptions& options,
                                           size_t count) {
  ZipfianSampler sampler(options);
  std::vector<size_t> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(sampler.Next());
  }
  return out;
}

}  // namespace bench
}  // namespace warpindex
