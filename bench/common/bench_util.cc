#include "common/bench_util.h"

#include <cstdio>
#include <cstdlib>

namespace warpindex {
namespace bench {
namespace {

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (begin <= text.size()) {
    const size_t comma = text.find(',', begin);
    if (comma == std::string::npos) {
      parts.push_back(text.substr(begin));
      break;
    }
    parts.push_back(text.substr(begin, comma - begin));
    begin = comma + 1;
  }
  return parts;
}

}  // namespace

std::vector<double> ParseDoubleList(const std::string& text) {
  std::vector<double> values;
  for (const std::string& part : SplitCommas(text)) {
    char* end = nullptr;
    const double v = std::strtod(part.c_str(), &end);
    if (end == part.c_str() || *end != '\0') {
      std::fprintf(stderr, "bad number in list: '%s'\n", part.c_str());
      std::exit(1);
    }
    values.push_back(v);
  }
  return values;
}

std::vector<int64_t> ParseIntList(const std::string& text) {
  std::vector<int64_t> values;
  for (const double v : ParseDoubleList(text)) {
    values.push_back(static_cast<int64_t>(v));
  }
  return values;
}

WorkloadSummary RunWorkload(const Engine& engine, MethodKind kind,
                            const std::vector<Sequence>& queries,
                            double epsilon, double cpu_scale) {
  WorkloadSummary summary;
  for (const Sequence& q : queries) {
    const SearchResult result = engine.SearchWith(kind, q, epsilon);
    summary.avg_candidates += static_cast<double>(result.num_candidates);
    summary.avg_matches += static_cast<double>(result.matches.size());
    summary.avg_wall_ms += result.cost.wall_ms;
    const double io_ms = engine.disk_model().CostMillis(result.cost.io);
    summary.avg_io_ms += io_ms;
    summary.avg_elapsed_ms += result.cost.wall_ms * cpu_scale + io_ms;
    summary.avg_pages +=
        static_cast<double>(result.cost.io.TotalPageReads());
  }
  const double n = static_cast<double>(queries.size());
  summary.avg_candidates /= n;
  summary.avg_matches /= n;
  summary.avg_wall_ms /= n;
  summary.avg_io_ms /= n;
  summary.avg_elapsed_ms /= n;
  summary.avg_pages /= n;
  summary.candidate_ratio =
      summary.avg_candidates / static_cast<double>(engine.dataset().size());
  return summary;
}

void PrintPreamble(const std::string& title, const std::string& paper_ref,
                   const std::string& workload) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("workload:   %s\n\n", workload.c_str());
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace bench
}  // namespace warpindex
