#include "common/bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "obs/exporters.h"

namespace warpindex {
namespace bench {
namespace {

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (begin <= text.size()) {
    const size_t comma = text.find(',', begin);
    if (comma == std::string::npos) {
      parts.push_back(text.substr(begin));
      break;
    }
    parts.push_back(text.substr(begin, comma - begin));
    begin = comma + 1;
  }
  return parts;
}

}  // namespace

std::vector<double> ParseDoubleList(const std::string& text) {
  std::vector<double> values;
  for (const std::string& part : SplitCommas(text)) {
    char* end = nullptr;
    const double v = std::strtod(part.c_str(), &end);
    if (end == part.c_str() || *end != '\0') {
      std::fprintf(stderr, "bad number in list: '%s'\n", part.c_str());
      std::exit(1);
    }
    values.push_back(v);
  }
  return values;
}

std::vector<int64_t> ParseIntList(const std::string& text) {
  std::vector<int64_t> values;
  for (const double v : ParseDoubleList(text)) {
    values.push_back(static_cast<int64_t>(v));
  }
  return values;
}

WorkloadSummary RunWorkload(const Engine& engine, MethodKind kind,
                            const std::vector<Sequence>& queries,
                            double epsilon, double cpu_scale) {
  WorkloadSummary summary;
  for (const Sequence& q : queries) {
    const SearchResult result = engine.SearchWith(kind, q, epsilon);
    summary.avg_candidates += static_cast<double>(result.num_candidates);
    summary.avg_matches += static_cast<double>(result.matches.size());
    summary.avg_wall_ms += result.cost.wall_ms;
    const double io_ms = engine.disk_model().CostMillis(result.cost.io);
    summary.avg_io_ms += io_ms;
    summary.avg_elapsed_ms += result.cost.wall_ms * cpu_scale + io_ms;
    summary.avg_pages +=
        static_cast<double>(result.cost.io.TotalPageReads());
    summary.avg_dtw_cells += static_cast<double>(result.cost.dtw_cells);
    summary.avg_dtw_evals += static_cast<double>(result.cost.dtw_evals);
    summary.avg_stage_ms.Merge(result.cost.stages);
    summary.total_prunes.Merge(result.cost.prunes);
  }
  const double n = static_cast<double>(queries.size());
  summary.avg_candidates /= n;
  summary.avg_matches /= n;
  summary.avg_wall_ms /= n;
  summary.avg_io_ms /= n;
  summary.avg_elapsed_ms /= n;
  summary.avg_pages /= n;
  summary.avg_dtw_cells /= n;
  summary.avg_dtw_evals /= n;
  summary.avg_stage_ms.Scale(1.0 / n);
  summary.candidate_ratio =
      summary.avg_candidates / static_cast<double>(engine.dataset().size());
  return summary;
}

void PrintPreamble(const std::string& title, const std::string& paper_ref,
                   const std::string& workload) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("workload:   %s\n\n", workload.c_str());
}

void PrintStageBreakdown(std::FILE* out, const std::string& label,
                         const WorkloadSummary& summary) {
  if (summary.avg_stage_ms.empty()) {
    return;
  }
  std::fprintf(out, "%-14s", label.c_str());
  for (const auto& [stage, ms] : summary.avg_stage_ms.entries()) {
    std::fprintf(out, "  %s=%.3fms", stage.c_str(), ms);
  }
  std::fprintf(out, "\n");
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void MetricsJsonWriter::AddRow(const std::string& method,
                               const std::string& sweep_name,
                               double sweep_value,
                               const WorkloadSummary& summary) {
  if (!enabled()) {
    return;
  }
  std::string row = "{\"bench\":" + JsonEscape(bench_name_) +
                    ",\"method\":" + JsonEscape(method) + "," +
                    JsonEscape(sweep_name) + ":" +
                    FormatDouble(sweep_value, 6);
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      ",\"avg_candidates\":%.6f,\"candidate_ratio\":%.6f,"
      "\"avg_matches\":%.6f,\"avg_wall_ms\":%.6f,\"avg_io_ms\":%.6f,"
      "\"avg_elapsed_ms\":%.6f,\"avg_pages\":%.6f,\"avg_dtw_cells\":%.1f,"
      "\"avg_dtw_evals\":%.3f",
      summary.avg_candidates, summary.candidate_ratio, summary.avg_matches,
      summary.avg_wall_ms, summary.avg_io_ms, summary.avg_elapsed_ms,
      summary.avg_pages, summary.avg_dtw_cells, summary.avg_dtw_evals);
  row += buf;
  row += ",\"stages_ms\":{";
  bool first = true;
  for (const auto& [stage, ms] : summary.avg_stage_ms.entries()) {
    if (!first) {
      row += ",";
    }
    first = false;
    row += JsonEscape(stage) + ":" + FormatDouble(ms, 6);
  }
  row += "},\"prunes\":{";
  first = true;
  for (const auto& [stage, counts] : summary.total_prunes.entries()) {
    if (!first) {
      row += ",";
    }
    first = false;
    std::snprintf(buf, sizeof(buf), ":{\"in\":%llu,\"pruned\":%llu}",
                  static_cast<unsigned long long>(counts.in),
                  static_cast<unsigned long long>(counts.pruned));
    row += JsonEscape(stage) + buf;
  }
  row += "}}";
  rows_.push_back(std::move(row));
}

bool MetricsJsonWriter::Flush() {
  if (!enabled()) {
    return false;
  }
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write --metrics_json file '%s'\n",
                 path_.c_str());
    std::exit(1);
  }
  for (const std::string& row : rows_) {
    std::fprintf(f, "%s\n", row.c_str());
  }
  std::fclose(f);
  std::printf("\nwrote %zu metric rows to %s\n", rows_.size(),
              path_.c_str());
  return true;
}

}  // namespace bench
}  // namespace warpindex
