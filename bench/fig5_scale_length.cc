// Figure 5 / Experiment 4: elapsed time vs sequence length (paper: 100 to
// 5,000, with 10,000 sequences at tolerance 0.1).
//
// Paper result shape: scan methods grow steeply with the length while
// TW-Sim-Search stays nearly unchanged (36x-175x over LB-Scan, growing
// with length).
//
// Defaults are scaled (N=2,000, lengths to 1,000, ST-Filter capped by
// total symbols); flags restore the paper's grid.

#include <cstdio>

#include "common/bench_util.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

int Run(int argc, char** argv) {
  std::string len_list = "100,200,500,1000";
  int64_t num_sequences = 2000;  // paper: 10000
  double eps = 0.1;
  int64_t num_queries = 20;  // paper: 100
  int64_t st_max_symbols = 1000000;
  int64_t categories = 100;

  double cpu_scale = 100.0;

  FlagSet flags("fig5_scale_length");
  flags.AddString("lens", &len_list, "sequence lengths to sweep");
  flags.AddInt64("n", &num_sequences, "number of sequences (paper: 10000)");
  flags.AddDouble("eps", &eps, "tolerance");
  flags.AddInt64("queries", &num_queries, "queries per configuration");
  flags.AddInt64("st_max_symbols", &st_max_symbols,
                 "largest total symbol count at which ST-Filter is run");
  flags.AddInt64("categories", &categories, "ST-Filter category count");
  flags.AddDouble("cpu_scale", &cpu_scale,
                  "CPU slowdown factor applied to measured wall time in the "
                  "elapsed metric (~100 matches the paper's 400 MHz "
                  "UltraSPARC-IIi; 1 = raw modern CPU)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  bench::PrintPreamble(
      "Figure 5: elapsed time vs sequence length",
      "Kim/Park/Chu ICDE'01, Experiment 4, Figure 5",
      std::to_string(num_sequences) + " random-walk sequences, eps=" +
          bench::FormatDouble(eps, 2) + ", " + std::to_string(num_queries) +
          " queries per length");

  TablePrinter table(stdout,
                     {"length", "naive_ms", "lb_scan_ms", "st_filter_ms",
                      "tw_sim_ms", "speedup_vs_best_scan"});
  table.PrintHeader();
  for (const int64_t len : bench::ParseIntList(len_list)) {
    RandomWalkOptions rw;
    rw.num_sequences = static_cast<size_t>(num_sequences);
    rw.min_length = static_cast<size_t>(len);
    rw.max_length = static_cast<size_t>(len);
    const bool run_st = num_sequences * len <= st_max_symbols;
    EngineOptions options;
    options.build_st_filter = run_st;
    options.st_filter_categories = static_cast<size_t>(categories);
    const Engine engine(GenerateRandomWalkDataset(rw), options);
    const auto queries = GenerateQueryWorkload(
        engine.dataset(), QueryWorkloadOptions{
                              .num_queries = static_cast<size_t>(num_queries)});

    const auto naive =
        bench::RunWorkload(engine, MethodKind::kNaiveScan, queries, eps, cpu_scale);
    const auto lb =
        bench::RunWorkload(engine, MethodKind::kLbScan, queries, eps, cpu_scale);
    const auto tw =
        bench::RunWorkload(engine, MethodKind::kTwSimSearch, queries, eps, cpu_scale);
    std::string st_cell = "(skipped)";
    if (run_st) {
      const auto st =
          bench::RunWorkload(engine, MethodKind::kStFilter, queries, eps, cpu_scale);
      st_cell = bench::FormatDouble(st.avg_elapsed_ms, 1);
    }
    const double best_scan =
        std::min(naive.avg_elapsed_ms, lb.avg_elapsed_ms);
    table.PrintRow({std::to_string(len),
                    bench::FormatDouble(naive.avg_elapsed_ms, 1),
                    bench::FormatDouble(lb.avg_elapsed_ms, 1), st_cell,
                    bench::FormatDouble(tw.avg_elapsed_ms, 1),
                    bench::FormatDouble(best_scan / tw.avg_elapsed_ms, 1)});
  }
  std::printf(
      "\nexpected shape: scans grow ~linearly in length; tw_sim nearly "
      "unchanged; speedup grows with length.\n");
  return 0;
}

}  // namespace
}  // namespace warpindex

int main(int argc, char** argv) { return warpindex::Run(argc, argv); }
