// Ablation A3: ST-Filter category count (paper §3.4).
//
// The paper describes the trade-off: more categories -> fewer candidates
// but a larger suffix tree (fewer shared subsequences), and leaves finding
// the optimum as an open problem. This harness sweeps the count.

#include <cstdio>

#include "common/bench_util.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "sequence/stock_generator.h"

namespace warpindex {
namespace {

int Run(int argc, char** argv) {
  int64_t num_sequences = 545;
  int64_t num_queries = 50;
  double eps = 2.0;
  std::string categories_list = "5,10,25,50,100,200,400";

  FlagSet flags("abl3_categories");
  flags.AddInt64("n", &num_sequences, "number of stock sequences");
  flags.AddInt64("queries", &num_queries, "queries");
  flags.AddDouble("eps", &eps, "tolerance (dollars)");
  flags.AddString("categories", &categories_list, "category counts");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  StockDataOptions stock;
  stock.num_sequences = static_cast<size_t>(num_sequences);

  bench::PrintPreamble(
      "Ablation A3: ST-Filter category count",
      "Kim/Park/Chu ICDE'01 §3.4 (candidate count vs suffix-tree size "
      "trade-off)",
      std::to_string(num_sequences) + " stock sequences, eps=" +
          bench::FormatDouble(eps, 1));

  TablePrinter table(stdout,
                     {"categories", "tree_nodes", "tree_mb",
                      "candidate_ratio", "st_filter_ms"});
  table.PrintHeader();
  for (const int64_t categories : bench::ParseIntList(categories_list)) {
    EngineOptions options;
    options.build_st_filter = true;
    options.st_filter_categories = static_cast<size_t>(categories);
    const Engine engine(GenerateStockDataset(stock), options);
    const auto queries = GenerateQueryWorkload(
        engine.dataset(), QueryWorkloadOptions{
                              .num_queries = static_cast<size_t>(num_queries)});
    const auto st =
        bench::RunWorkload(engine, MethodKind::kStFilter, queries, eps);
    const SuffixTree& tree = engine.st_filter()->tree();
    table.PrintRow(
        {std::to_string(categories), std::to_string(tree.num_nodes()),
         bench::FormatDouble(
             static_cast<double>(tree.ApproxBytes()) / 1e6, 2),
         bench::FormatDouble(st.candidate_ratio, 4),
         bench::FormatDouble(st.avg_elapsed_ms, 1)});
  }
  std::printf(
      "\nexpected shape: candidate ratio falls as categories grow (finer "
      "intervals bound distances tighter) while per-query tree traversal "
      "and tree size stop improving — the paper's open trade-off (§3.4).\n");
  return 0;
}

}  // namespace
}  // namespace warpindex

int main(int argc, char** argv) { return warpindex::Run(argc, argv); }
