// Microbenchmarks for the DTW engine: full evaluation vs thresholded
// early-abandoning vs Sakoe-Chiba banding, across sequence lengths and
// base distances, plus the envelope lower bounds of the filter cascade
// (ns per candidate and tightness relative to exact banded DTW, LB_Yi,
// and the feature-level D_tw-lb).

#include <benchmark/benchmark.h>

#include "common/prng.h"
#include "dtw/dtw.h"
#include "dtw/lb_improved.h"
#include "dtw/lb_keogh.h"
#include "dtw/lb_yi.h"
#include "sequence/feature.h"

namespace warpindex {
namespace {

Sequence MakeWalk(size_t len, uint64_t seed) {
  Prng prng(seed);
  Sequence s;
  s.Reserve(len);
  double v = prng.UniformDouble(1.0, 10.0);
  for (size_t i = 0; i < len; ++i) {
    s.Append(v);
    v += prng.UniformDouble(-0.1, 0.1);
  }
  return s;
}

void BM_DtwFullLinf(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Sequence a = MakeWalk(len, 1);
  const Sequence b = MakeWalk(len, 2);
  const Dtw dtw(DtwOptions::Linf());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw.Distance(a, b).distance);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(len * len));
}
BENCHMARK(BM_DtwFullLinf)->Arg(64)->Arg(256)->Arg(1024);

void BM_DtwFullL1(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Sequence a = MakeWalk(len, 1);
  const Sequence b = MakeWalk(len, 2);
  const Dtw dtw(DtwOptions::L1());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw.Distance(a, b).distance);
  }
}
BENCHMARK(BM_DtwFullL1)->Arg(64)->Arg(256)->Arg(1024);

// The paper's CPU argument for L_inf: thresholded evaluation abandons
// dissimilar pairs almost immediately.
void BM_DtwEarlyAbandonDistantPair(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Sequence a = MakeWalk(len, 1);
  const Sequence b = MakeWalk(len, 77);  // independent walk, far away
  const Dtw dtw(DtwOptions::Linf());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dtw.DistanceWithThreshold(a, b, 0.1).distance);
  }
}
BENCHMARK(BM_DtwEarlyAbandonDistantPair)->Arg(64)->Arg(256)->Arg(1024);

void BM_DtwBanded(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Sequence a = MakeWalk(len, 1);
  const Sequence b = MakeWalk(len, 2);
  DtwOptions options = DtwOptions::Linf();
  options.band = static_cast<int>(len / 10);
  const Dtw dtw(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw.Distance(a, b).distance);
  }
}
BENCHMARK(BM_DtwBanded)->Arg(256)->Arg(1024);

void BM_DtwWithPath(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Sequence a = MakeWalk(len, 1);
  const Sequence b = MakeWalk(len, 2);
  const Dtw dtw(DtwOptions::Linf());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw.DistanceWithPath(a, b).distance);
  }
}
BENCHMARK(BM_DtwWithPath)->Arg(64)->Arg(256);

void BM_LbYi(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Sequence a = MakeWalk(len, 1);
  const Sequence b = MakeWalk(len, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LbYi(a, b, DtwCombiner::kMax));
  }
}
BENCHMARK(BM_LbYi)->Arg(64)->Arg(256)->Arg(1024);

void BM_FeatureExtraction(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Sequence a = MakeWalk(len, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExtractFeature(a));
  }
}
BENCHMARK(BM_FeatureExtraction)->Arg(64)->Arg(256)->Arg(1024);

void BM_DtwLowerBound(benchmark::State& state) {
  const FeatureVector a = ExtractFeature(MakeWalk(256, 1));
  const FeatureVector b = ExtractFeature(MakeWalk(256, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DtwLowerBoundDistance(a, b));
  }
}
BENCHMARK(BM_DtwLowerBound);

// ---- Envelope lower bounds (the cascade's lb_keogh / lb_improved
// stages). Arg(0) is the sequence length, Arg(1) the Sakoe-Chiba radius.
// items_processed counts candidates, so the report's items/s inverts to
// ns per candidate — the unit the CascadePlanner's cost model estimates.

void BM_ComputeBandEnvelope(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const size_t radius = static_cast<size_t>(state.range(1));
  const Sequence q = MakeWalk(len, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeBandEnvelope(q, radius));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ComputeBandEnvelope)
    ->Args({256, 8})
    ->Args({256, 32})
    ->Args({1024, 16});

void BM_LbKeogh(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const int band = static_cast<int>(state.range(1));
  DtwOptions options = DtwOptions::Linf();
  options.band = band;
  const Sequence q = MakeWalk(len, 1);
  const Sequence s = MakeWalk(len, 2);
  const BandEnvelope env = ComputeBandEnvelope(q, EnvelopeRadiusFor(options));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LbKeogh(s, q, env, options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LbKeogh)->Args({256, 8})->Args({256, 32})->Args({1024, 16});

void BM_LbImproved(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const int band = static_cast<int>(state.range(1));
  DtwOptions options = DtwOptions::Linf();
  options.band = band;
  const Sequence q = MakeWalk(len, 1);
  const Sequence s = MakeWalk(len, 2);
  const BandEnvelope env = ComputeBandEnvelope(q, EnvelopeRadiusFor(options));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LbImproved(s, q, env, options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LbImproved)->Args({256, 8})->Args({256, 32})->Args({1024, 16});

// Tightness of the whole bound ladder at one banded configuration:
// counters report mean bound / exact-DTW over a pool of walk pairs (1.0
// would be a perfect bound), so the speed rows above can be read against
// how much pruning power each extra nanosecond buys.
void BM_EnvelopeBoundTightness(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const int band = static_cast<int>(state.range(1));
  DtwOptions options = DtwOptions::Linf();
  options.band = band;
  const Dtw dtw(options);
  constexpr int kPairs = 50;
  double feature_sum = 0.0;
  double yi_sum = 0.0;
  double keogh_sum = 0.0;
  double improved_sum = 0.0;
  for (auto _ : state) {
    feature_sum = yi_sum = keogh_sum = improved_sum = 0.0;
    for (int p = 0; p < kPairs; ++p) {
      const Sequence q = MakeWalk(len, 1 + 2 * static_cast<uint64_t>(p));
      const Sequence s = MakeWalk(len, 2 + 2 * static_cast<uint64_t>(p));
      const BandEnvelope env =
          ComputeBandEnvelope(q, EnvelopeRadiusFor(options));
      const double exact = dtw.Distance(s, q).distance;
      feature_sum +=
          DtwLowerBoundDistance(ExtractFeature(s), ExtractFeature(q)) /
          exact;
      yi_sum += LbYi(s, q, options) / exact;
      keogh_sum += LbKeogh(s, q, env, options) / exact;
      improved_sum += LbImproved(s, q, env, options) / exact;
    }
    benchmark::DoNotOptimize(improved_sum);
  }
  state.counters["tight_feature"] = feature_sum / kPairs;
  state.counters["tight_yi"] = yi_sum / kPairs;
  state.counters["tight_keogh"] = keogh_sum / kPairs;
  state.counters["tight_improved"] = improved_sum / kPairs;
}
BENCHMARK(BM_EnvelopeBoundTightness)->Args({256, 8})->Args({256, 64});

}  // namespace
}  // namespace warpindex
