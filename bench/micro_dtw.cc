// Microbenchmarks for the DTW engine: full evaluation vs thresholded
// early-abandoning vs Sakoe-Chiba banding, across sequence lengths and
// base distances.

#include <benchmark/benchmark.h>

#include "common/prng.h"
#include "dtw/dtw.h"
#include "dtw/lb_yi.h"
#include "sequence/feature.h"

namespace warpindex {
namespace {

Sequence MakeWalk(size_t len, uint64_t seed) {
  Prng prng(seed);
  Sequence s;
  s.Reserve(len);
  double v = prng.UniformDouble(1.0, 10.0);
  for (size_t i = 0; i < len; ++i) {
    s.Append(v);
    v += prng.UniformDouble(-0.1, 0.1);
  }
  return s;
}

void BM_DtwFullLinf(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Sequence a = MakeWalk(len, 1);
  const Sequence b = MakeWalk(len, 2);
  const Dtw dtw(DtwOptions::Linf());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw.Distance(a, b).distance);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(len * len));
}
BENCHMARK(BM_DtwFullLinf)->Arg(64)->Arg(256)->Arg(1024);

void BM_DtwFullL1(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Sequence a = MakeWalk(len, 1);
  const Sequence b = MakeWalk(len, 2);
  const Dtw dtw(DtwOptions::L1());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw.Distance(a, b).distance);
  }
}
BENCHMARK(BM_DtwFullL1)->Arg(64)->Arg(256)->Arg(1024);

// The paper's CPU argument for L_inf: thresholded evaluation abandons
// dissimilar pairs almost immediately.
void BM_DtwEarlyAbandonDistantPair(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Sequence a = MakeWalk(len, 1);
  const Sequence b = MakeWalk(len, 77);  // independent walk, far away
  const Dtw dtw(DtwOptions::Linf());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dtw.DistanceWithThreshold(a, b, 0.1).distance);
  }
}
BENCHMARK(BM_DtwEarlyAbandonDistantPair)->Arg(64)->Arg(256)->Arg(1024);

void BM_DtwBanded(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Sequence a = MakeWalk(len, 1);
  const Sequence b = MakeWalk(len, 2);
  DtwOptions options = DtwOptions::Linf();
  options.band = static_cast<int>(len / 10);
  const Dtw dtw(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw.Distance(a, b).distance);
  }
}
BENCHMARK(BM_DtwBanded)->Arg(256)->Arg(1024);

void BM_DtwWithPath(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Sequence a = MakeWalk(len, 1);
  const Sequence b = MakeWalk(len, 2);
  const Dtw dtw(DtwOptions::Linf());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw.DistanceWithPath(a, b).distance);
  }
}
BENCHMARK(BM_DtwWithPath)->Arg(64)->Arg(256);

void BM_LbYi(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Sequence a = MakeWalk(len, 1);
  const Sequence b = MakeWalk(len, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LbYi(a, b, DtwCombiner::kMax));
  }
}
BENCHMARK(BM_LbYi)->Arg(64)->Arg(256)->Arg(1024);

void BM_FeatureExtraction(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Sequence a = MakeWalk(len, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExtractFeature(a));
  }
}
BENCHMARK(BM_FeatureExtraction)->Arg(64)->Arg(256)->Arg(1024);

void BM_DtwLowerBound(benchmark::State& state) {
  const FeatureVector a = ExtractFeature(MakeWalk(256, 1));
  const FeatureVector b = ExtractFeature(MakeWalk(256, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DtwLowerBoundDistance(a, b));
  }
}
BENCHMARK(BM_DtwLowerBound);

}  // namespace
}  // namespace warpindex
