// Ablation A2: index/storage page size (the paper fixes 1 KB in §5.1).
//
// Larger pages mean fewer, fatter R-tree nodes: fewer seeks per query but
// more transfer per page, plus a coarser index. This harness sweeps the
// page size and reports TW-Sim-Search query cost and index shape.

#include <cstdio>

#include "common/bench_util.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "sequence/stock_generator.h"

namespace warpindex {
namespace {

int Run(int argc, char** argv) {
  int64_t num_sequences = 545;
  int64_t num_queries = 100;
  double eps = 2.0;
  std::string pages_list = "512,1024,2048,4096,8192";

  FlagSet flags("abl2_page_size");
  flags.AddInt64("n", &num_sequences, "number of stock sequences");
  flags.AddInt64("queries", &num_queries, "queries");
  flags.AddDouble("eps", &eps, "tolerance (dollars)");
  flags.AddString("pages", &pages_list, "page sizes in bytes");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  StockDataOptions stock;
  stock.num_sequences = static_cast<size_t>(num_sequences);

  bench::PrintPreamble(
      "Ablation A2: page size sweep",
      "Kim/Park/Chu ICDE'01 §5.1 fixes 1 KB pages; this sweeps the choice",
      std::to_string(num_sequences) + " stock sequences, eps=" +
          bench::FormatDouble(eps, 1));

  TablePrinter table(stdout,
                     {"page_bytes", "rtree_fanout", "rtree_nodes",
                      "rtree_height", "tw_sim_ms", "tw_pages_per_query"});
  table.PrintHeader();
  for (const int64_t page_bytes : bench::ParseIntList(pages_list)) {
    EngineOptions options;
    options.page_size_bytes = static_cast<size_t>(page_bytes);
    const Engine engine(GenerateStockDataset(stock), options);
    const auto queries = GenerateQueryWorkload(
        engine.dataset(), QueryWorkloadOptions{
                              .num_queries = static_cast<size_t>(num_queries)});
    const auto tw =
        bench::RunWorkload(engine, MethodKind::kTwSimSearch, queries, eps);
    const RTree& tree = engine.feature_index().rtree();
    table.PrintRow({std::to_string(page_bytes),
                    std::to_string(tree.capacity()),
                    std::to_string(tree.node_count()),
                    std::to_string(tree.height()),
                    bench::FormatDouble(tw.avg_elapsed_ms, 2),
                    bench::FormatDouble(tw.avg_pages, 1)});
  }
  std::printf(
      "\nexpected shape: node count and height fall as pages grow; per-query "
      "elapsed time bottoms out near a few KB (seek-dominated regime).\n");
  return 0;
}

}  // namespace
}  // namespace warpindex

int main(int argc, char** argv) { return warpindex::Run(argc, argv); }
