// Microbenchmarks for the storage engine: serialization, random fetch,
// sequential scan, and buffer pool operations.

#include <benchmark/benchmark.h>

#include "sequence/random_walk_generator.h"
#include "storage/buffer_pool.h"
#include "storage/sequence_store.h"

namespace warpindex {
namespace {

Dataset MakeData(size_t n, size_t len) {
  RandomWalkOptions options;
  options.num_sequences = n;
  options.min_length = len;
  options.max_length = len;
  return GenerateRandomWalkDataset(options);
}

void BM_StoreBuild(benchmark::State& state) {
  const Dataset data =
      MakeData(static_cast<size_t>(state.range(0)), 200);
  for (auto _ : state) {
    SequenceStore store(data, 1024);
    benchmark::DoNotOptimize(store.num_pages());
  }
}
BENCHMARK(BM_StoreBuild)->Arg(1000)->Arg(10000);

void BM_StoreFetch(benchmark::State& state) {
  const Dataset data = MakeData(5000, 200);
  const SequenceStore store(data, 1024);
  SequenceId id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Fetch(id).size());
    id = (id + 37) % 5000;
  }
}
BENCHMARK(BM_StoreFetch);

void BM_StoreScan(benchmark::State& state) {
  const Dataset data =
      MakeData(static_cast<size_t>(state.range(0)), 200);
  const SequenceStore store(data, 1024);
  for (auto _ : state) {
    size_t total = 0;
    store.ScanAll([&](SequenceId, const Sequence& s) {
      total += s.size();
      return true;
    });
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_StoreScan)->Arg(1000)->Arg(10000);

void BM_BufferPoolAccess(benchmark::State& state) {
  BufferPool pool(static_cast<size_t>(state.range(0)));
  PageId page = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Access(page, nullptr));
    page = (page + 17) % 2048;
  }
}
BENCHMARK(BM_BufferPoolAccess)->Arg(64)->Arg(1024)->Arg(4096);

}  // namespace
}  // namespace warpindex
