// Serving-plane overhead: the wire router vs the in-process engine.
//
// Saves a sharded database, starts one shard-server per shard plus a
// router over loopback (the same classes `warpindex_cli shard-serve` /
// `route` run, minus the process boundary), and runs identical range and
// k-NN workloads through both paths at every shard count:
//
//   * inproc — ShardedEngine::SearchWith / SearchKnn, the bit-exactness
//     baseline the router is property-tested against;
//   * wire   — Router::RouteRange / RouteKnn: JSON serialization, a
//     framed round trip per shard group, and the router-side merge.
//
// The delta between the two rows is the serving plane's tax: framing +
// JSON + loopback TCP + scatter-gather bookkeeping. `hedge` repeats the
// wire sweep with hedging enabled (hedge legs add no load while replicas
// answer inside the hedge delay; the row shows the bookkeeping cost).
//
// With --metrics_json each row is also written as a JSON line:
//   {"bench":"micro_net","serving":"wire","mode":"range","shards":4,
//    "qps":...,"p50_ms":...,"p99_ms":...}

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "common/flags.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "net/router.h"
#include "net/shard_server.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"
#include "shard/sharded_engine.h"

namespace warpindex {
namespace {

struct ModeRow {
  double qps = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

ModeRow Measure(const std::vector<double>& latencies, double wall_ms) {
  ModeRow row;
  row.qps = wall_ms > 0.0
                ? 1e3 * static_cast<double>(latencies.size()) / wall_ms
                : 0.0;
  row.p50 = Percentile(latencies, 0.5);
  row.p99 = Percentile(latencies, 0.99);
  return row;
}

int Run(int argc, char** argv) {
  int64_t num_sequences = 1000;
  int64_t length = 96;
  int64_t num_queries = 64;
  double eps = 0.2;
  int64_t knn_k = 5;
  std::string shard_list = "1,2,4";
  bool hedge = false;
  std::string metrics_json;

  FlagSet flags("micro_net");
  flags.AddInt64("n", &num_sequences, "number of sequences");
  flags.AddInt64("len", &length, "sequence length");
  flags.AddInt64("queries", &num_queries, "queries per workload");
  flags.AddDouble("eps", &eps, "range-query tolerance");
  flags.AddInt64("k", &knn_k, "neighbors per k-NN query");
  flags.AddString("shards", &shard_list, "shard counts to sweep");
  flags.AddBool("hedge", &hedge, "also sweep with hedging enabled");
  flags.AddString("metrics_json", &metrics_json,
                  "also write one JSON line per row to this file");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  RandomWalkOptions rw;
  rw.num_sequences = static_cast<size_t>(num_sequences);
  rw.min_length = static_cast<size_t>(length);
  rw.max_length = static_cast<size_t>(length);
  rw.seed = 42;
  const Dataset dataset = GenerateRandomWalkDataset(rw);
  const auto queries = GenerateQueryWorkload(
      dataset,
      QueryWorkloadOptions{.num_queries = static_cast<size_t>(num_queries)});

  bench::PrintPreamble(
      "Micro: wire-routed serving vs in-process engine",
      "framing + JSON + loopback TCP + router merge, answers identical",
      std::to_string(num_sequences) + " walks of length " +
          std::to_string(length) + ", " + std::to_string(num_queries) +
          " queries, eps=" + bench::FormatDouble(eps, 2) +
          ", k=" + std::to_string(knn_k));

  std::FILE* json = nullptr;
  if (!metrics_json.empty()) {
    json = std::fopen(metrics_json.c_str(), "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", metrics_json.c_str());
      return 1;
    }
  }

  TablePrinter table(
      stdout, {"serving", "shards", "mode", "qps", "p50_ms", "p99_ms"});
  table.PrintHeader();
  const std::string dir =
      std::filesystem::temp_directory_path() / "micro_net_db";

  for (const int64_t num_shards : bench::ParseIntList(shard_list)) {
    std::filesystem::remove_all(dir);
    ShardedEngineOptions options;
    options.num_shards = static_cast<size_t>(num_shards);
    options.partitioner = PartitionerKind::kRange;
    {
      const ShardedEngine built(Dataset(dataset.sequences()), options);
      const Status status = built.Save(dir);
      if (!status.ok()) {
        std::fprintf(stderr, "save: %s\n", status.ToString().c_str());
        return 1;
      }
    }
    std::unique_ptr<ShardedEngine> inproc;
    if (const Status status = ShardedEngine::Open(dir, options, &inproc);
        !status.ok()) {
      std::fprintf(stderr, "open: %s\n", status.ToString().c_str());
      return 1;
    }

    std::vector<std::unique_ptr<ShardServer>> servers;
    RouterOptions router_options;
    router_options.enable_hedging = false;
    for (uint32_t shard = 0; shard < static_cast<uint32_t>(num_shards);
         ++shard) {
      ShardServerOptions server_options;
      server_options.db_dir = dir;
      server_options.serve_shards = {shard};
      server_options.group = static_cast<int>(shard);
      std::unique_ptr<ShardServer> server;
      Status status =
          ShardServer::Create(std::move(server_options), &server);
      if (status.ok()) {
        status = server->Start();
      }
      if (!status.ok()) {
        std::fprintf(stderr, "shard server: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      router_options.groups.push_back(
          {RouterEndpoint{"127.0.0.1", server->port()}});
      servers.push_back(std::move(server));
    }

    struct ServingRow {
      const char* serving;
      const char* mode;
      ModeRow row;
    };
    std::vector<ServingRow> rows;

    {  // In-process baseline.
      std::vector<double> latencies;
      WallTimer timer;
      for (const Sequence& q : queries) {
        WallTimer per_query;
        (void)inproc->SearchWith(MethodKind::kTwSimSearch, q, eps);
        latencies.push_back(per_query.ElapsedMillis());
      }
      rows.push_back(
          {"inproc", "range", Measure(latencies, timer.ElapsedMillis())});
      latencies.clear();
      timer.Reset();
      for (const Sequence& q : queries) {
        WallTimer per_query;
        (void)inproc->SearchKnn(q, static_cast<size_t>(knn_k));
        latencies.push_back(per_query.ElapsedMillis());
      }
      rows.push_back(
          {"inproc", "knn", Measure(latencies, timer.ElapsedMillis())});
    }

    const auto sweep_wire = [&](const char* label, bool enable_hedging) {
      RouterOptions wire_options = router_options;
      wire_options.enable_hedging = enable_hedging;
      std::unique_ptr<Router> router;
      if (const Status status =
              Router::Create(std::move(wire_options), &router);
          !status.ok()) {
        std::fprintf(stderr, "router: %s\n", status.ToString().c_str());
        return false;
      }
      std::vector<double> latencies;
      WallTimer timer;
      for (const Sequence& q : queries) {
        WallTimer per_query;
        SearchResult out;
        (void)router->RouteRange(MethodKind::kTwSimSearch, q, eps,
                                 nullptr, &out);
        latencies.push_back(per_query.ElapsedMillis());
      }
      rows.push_back(
          {label, "range", Measure(latencies, timer.ElapsedMillis())});
      latencies.clear();
      timer.Reset();
      for (const Sequence& q : queries) {
        WallTimer per_query;
        KnnResult out;
        (void)router->RouteKnn(q, static_cast<size_t>(knn_k), nullptr,
                               &out);
        latencies.push_back(per_query.ElapsedMillis());
      }
      rows.push_back(
          {label, "knn", Measure(latencies, timer.ElapsedMillis())});
      return true;
    };

    if (!sweep_wire("wire", false)) {
      return 1;
    }
    if (hedge && !sweep_wire("wire+hedge", true)) {
      return 1;
    }

    for (const ServingRow& entry : rows) {
      table.PrintRow({entry.serving, std::to_string(num_shards),
                      entry.mode, bench::FormatDouble(entry.row.qps, 1),
                      bench::FormatDouble(entry.row.p50, 3),
                      bench::FormatDouble(entry.row.p99, 3)});
      if (json != nullptr) {
        std::fprintf(json,
                     "{\"bench\":\"micro_net\",\"serving\":\"%s\","
                     "\"mode\":\"%s\",\"shards\":%lld,\"qps\":%.3f,"
                     "\"p50_ms\":%.5f,\"p99_ms\":%.5f}\n",
                     entry.serving, entry.mode,
                     static_cast<long long>(num_shards), entry.row.qps,
                     entry.row.p50, entry.row.p99);
      }
    }

    for (auto& server : servers) {
      server->Stop();
    }
  }
  std::filesystem::remove_all(dir);
  if (json != nullptr) {
    std::fclose(json);
  }
  return 0;
}

}  // namespace
}  // namespace warpindex

int main(int argc, char** argv) { return warpindex::Run(argc, argv); }
