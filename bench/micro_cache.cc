// Semantic result cache under a skewed repeat-heavy workload.
//
// Draws a Zipfian access stream over a small pool of distinct queries
// (bench/common/workload.h) and replays it through each serving shape
// with the cache off, then on:
//
//   * single  — QueryExecutor over one Engine (executor cache tier);
//   * sharded — QueryExecutor over a K-shard ShardedEngine (same tier,
//               a hit skips the whole scatter-gather);
//   * wire    — Router over loopback shard servers (router cache tier,
//               a hit skips the sub-request fan-out entirely).
//
// Answers are bit-identical cache on vs off (the property test owns
// that claim); this harness measures what the reuse buys: hit rate vs
// skew, qps, and p50/p99 service time. At skew >= 1 most of the stream
// is repeats, the p50 becomes a cache lookup, and the speedup is an
// order of magnitude or more.
//
// With --metrics_json each row is also written as a JSON line:
//   {"bench":"micro_cache","serving":"single","skew":1.0,"cache":"on",
//    "qps":...,"p50_ms":...,"p99_ms":...,"hit_rate":...,"speedup_p50":...}

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cache/semantic_cache.h"
#include "common/bench_util.h"
#include "common/flags.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "common/workload.h"
#include "exec/query_executor.h"
#include "net/router.h"
#include "net/shard_server.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"
#include "shard/sharded_engine.h"

namespace warpindex {
namespace {

struct RunRow {
  double qps = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double hit_rate = 0.0;
};

RunRow Measure(const std::vector<double>& latencies, double wall_ms,
               const SemanticCache* cache) {
  RunRow row;
  row.qps = wall_ms > 0.0
                ? 1e3 * static_cast<double>(latencies.size()) / wall_ms
                : 0.0;
  row.p50 = Percentile(latencies, 0.5);
  row.p99 = Percentile(latencies, 0.99);
  if (cache != nullptr) {
    row.hit_rate = cache->TakeStats().hit_ratio;
  }
  return row;
}

int Run(int argc, char** argv) {
  int64_t num_sequences = 2000;
  int64_t length = 128;
  int64_t num_queries = 1024;
  int64_t distinct = 64;
  double eps = 0.25;
  std::string skew_list = "0.5,1.0,1.5";
  int64_t num_shards = 4;
  int64_t cache_mb = 64;
  int64_t seed = 42;
  std::string serving_list = "single,sharded,wire";
  std::string metrics_json;

  FlagSet flags("micro_cache");
  flags.AddInt64("n", &num_sequences, "number of sequences");
  flags.AddInt64("len", &length, "sequence length");
  flags.AddInt64("queries", &num_queries, "accesses per replay stream");
  flags.AddInt64("distinct", &distinct, "distinct queries in the pool");
  flags.AddDouble("eps", &eps, "range-query tolerance");
  flags.AddString("skews", &skew_list, "Zipf exponents to sweep");
  flags.AddInt64("shards", &num_shards, "shards for sharded/wire serving");
  flags.AddInt64("cache_mb", &cache_mb, "cache byte budget (MiB)");
  flags.AddInt64("seed", &seed, "workload RNG seed");
  flags.AddString("serving", &serving_list,
                  "comma list of single,sharded,wire");
  flags.AddString("metrics_json", &metrics_json,
                  "also write one JSON line per row to this file");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  RandomWalkOptions rw;
  rw.num_sequences = static_cast<size_t>(num_sequences);
  rw.min_length = static_cast<size_t>(length);
  rw.max_length = static_cast<size_t>(length);
  rw.seed = 42;
  const Dataset dataset = GenerateRandomWalkDataset(rw);
  const auto pool = GenerateQueryWorkload(
      dataset,
      QueryWorkloadOptions{.num_queries = static_cast<size_t>(distinct)});

  bench::PrintPreamble(
      "Micro: semantic cache on a Zipfian repeat-heavy workload",
      "ε-subsumption reuse; answers identical cache on vs off",
      std::to_string(num_sequences) + " walks of length " +
          std::to_string(length) + ", " + std::to_string(num_queries) +
          " accesses over " + std::to_string(distinct) +
          " distinct queries, eps=" + bench::FormatDouble(eps, 2));

  std::FILE* json = nullptr;
  if (!metrics_json.empty()) {
    json = std::fopen(metrics_json.c_str(), "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", metrics_json.c_str());
      return 1;
    }
  }

  const bool run_single = serving_list.find("single") != std::string::npos;
  const bool run_sharded =
      serving_list.find("sharded") != std::string::npos;
  const bool run_wire = serving_list.find("wire") != std::string::npos;

  // Shared serving state, built once. The wire plane needs a saved
  // directory plus loopback servers.
  const Engine engine(Dataset(dataset.sequences()), EngineOptions{});
  std::unique_ptr<ShardedEngine> sharded;
  std::vector<std::unique_ptr<ShardServer>> servers;
  RouterOptions router_base;
  const std::string dir =
      std::filesystem::temp_directory_path() / "micro_cache_db";
  if (run_sharded || run_wire) {
    ShardedEngineOptions shard_options;
    shard_options.num_shards = static_cast<size_t>(num_shards);
    shard_options.partitioner = PartitionerKind::kRange;
    sharded = std::make_unique<ShardedEngine>(Dataset(dataset.sequences()),
                                              shard_options);
    if (run_wire) {
      std::filesystem::remove_all(dir);
      if (const Status status = sharded->Save(dir); !status.ok()) {
        std::fprintf(stderr, "save: %s\n", status.ToString().c_str());
        return 1;
      }
      router_base.enable_hedging = false;
      for (uint32_t shard = 0;
           shard < static_cast<uint32_t>(num_shards); ++shard) {
        ShardServerOptions server_options;
        server_options.db_dir = dir;
        server_options.serve_shards = {shard};
        server_options.group = static_cast<int>(shard);
        std::unique_ptr<ShardServer> server;
        Status status =
            ShardServer::Create(std::move(server_options), &server);
        if (status.ok()) {
          status = server->Start();
        }
        if (!status.ok()) {
          std::fprintf(stderr, "shard server: %s\n",
                       status.ToString().c_str());
          return 1;
        }
        router_base.groups.push_back(
            {RouterEndpoint{"127.0.0.1", server->port()}});
        servers.push_back(std::move(server));
      }
    }
  }

  TablePrinter table(stdout, {"serving", "skew", "cache", "qps", "p50_ms",
                              "p99_ms", "hit_rate", "speedup_p50"});
  table.PrintHeader();

  for (const double skew : bench::ParseDoubleList(skew_list)) {
    bench::ZipfianOptions zipf;
    zipf.num_items = pool.size();
    zipf.skew = skew;
    zipf.seed = static_cast<uint64_t>(seed);
    const std::vector<size_t> stream = bench::GenerateZipfianIndices(
        zipf, static_cast<size_t>(num_queries));

    struct ServingRows {
      const char* serving;
      RunRow off;
      RunRow on;
    };
    std::vector<ServingRows> rows;

    // Replays the stream through an executor-backed engine shape with
    // the given cache (null = off).
    const auto run_executor = [&](const EngineLike* engine_like,
                                  SemanticCache* cache) {
      QueryExecutorOptions options;
      options.num_threads = 1;
      options.cache = cache;
      QueryExecutor executor(engine_like, options);
      std::vector<double> latencies;
      latencies.reserve(stream.size());
      WallTimer timer;
      for (const size_t i : stream) {
        WallTimer per_query;
        (void)executor.Submit(MethodKind::kTwSimSearch, pool[i], eps)
            .get();
        latencies.push_back(per_query.ElapsedMillis());
      }
      return Measure(latencies, timer.ElapsedMillis(), cache);
    };

    SemanticCacheOptions cache_options;
    cache_options.max_bytes = static_cast<size_t>(cache_mb) << 20;

    if (run_single) {
      SemanticCache cache(cache_options);
      rows.push_back({"single", run_executor(&engine, nullptr),
                      run_executor(&engine, &cache)});
    }
    if (run_sharded && sharded != nullptr) {
      SemanticCache cache(cache_options);
      rows.push_back({"sharded", run_executor(sharded.get(), nullptr),
                      run_executor(sharded.get(), &cache)});
    }
    if (run_wire && !servers.empty()) {
      const auto run_wire_pass = [&](SemanticCache* cache) {
        RouterOptions options = router_base;
        options.cache = cache;
        std::unique_ptr<Router> router;
        if (const Status status =
                Router::Create(std::move(options), &router);
            !status.ok()) {
          std::fprintf(stderr, "router: %s\n", status.ToString().c_str());
          return RunRow{};
        }
        std::vector<double> latencies;
        latencies.reserve(stream.size());
        WallTimer timer;
        for (const size_t i : stream) {
          WallTimer per_query;
          SearchResult out;
          (void)router->RouteRange(MethodKind::kTwSimSearch, pool[i], eps,
                                   nullptr, &out);
          latencies.push_back(per_query.ElapsedMillis());
        }
        return Measure(latencies, timer.ElapsedMillis(), cache);
      };
      SemanticCacheOptions wire_cache_options = cache_options;
      wire_cache_options.tier = "router";
      SemanticCache cache(wire_cache_options);
      rows.push_back(
          {"wire", run_wire_pass(nullptr), run_wire_pass(&cache)});
    }

    for (const ServingRows& entry : rows) {
      const double speedup =
          entry.on.p50 > 0.0 ? entry.off.p50 / entry.on.p50 : 0.0;
      for (const bool on : {false, true}) {
        const RunRow& row = on ? entry.on : entry.off;
        table.PrintRow(
            {entry.serving, bench::FormatDouble(skew, 2),
             on ? "on" : "off", bench::FormatDouble(row.qps, 1),
             bench::FormatDouble(row.p50, 4),
             bench::FormatDouble(row.p99, 4),
             on ? bench::FormatDouble(row.hit_rate, 3) : "-",
             on ? bench::FormatDouble(speedup, 1) : "-"});
        if (json != nullptr) {
          std::fprintf(json,
                       "{\"bench\":\"micro_cache\",\"serving\":\"%s\","
                       "\"skew\":%.3f,\"cache\":\"%s\",\"queries\":%zu,"
                       "\"distinct\":%zu,\"qps\":%.3f,\"p50_ms\":%.5f,"
                       "\"p99_ms\":%.5f,\"hit_rate\":%.4f,"
                       "\"speedup_p50\":%.3f}\n",
                       entry.serving, skew, on ? "on" : "off",
                       stream.size(), pool.size(), row.qps, row.p50,
                       row.p99, on ? row.hit_rate : 0.0,
                       on ? speedup : 1.0);
        }
      }
    }
  }

  for (auto& server : servers) {
    server->Stop();
  }
  if (run_wire) {
    std::filesystem::remove_all(dir);
  }
  if (json != nullptr) {
    std::fclose(json);
    std::printf("\nwrote JSON lines to %s\n", metrics_json.c_str());
  }
  std::printf(
      "\nexpected shape: hit rate and speedup grow with skew; at skew >= "
      "1 the p50 is a cache lookup and the cache-on row is an order of "
      "magnitude faster, across every serving shape.\n");
  return 0;
}

}  // namespace
}  // namespace warpindex

int main(int argc, char** argv) { return warpindex::Run(argc, argv); }
