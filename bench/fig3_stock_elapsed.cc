// Figure 3 / Experiment 2: elapsed time vs tolerance on the stock corpus.
//
// Paper result shape: TW-Sim-Search is fastest (4x-43x over LB-Scan, the
// best scan), the gap growing as the tolerance shrinks; ST-Filter is worse
// than Naive-Scan at this scale (whole matching kills its shared-prefix
// advantage).

#include <algorithm>
#include <cstdio>

#include "common/bench_util.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "sequence/stock_generator.h"

namespace warpindex {
namespace {

int Run(int argc, char** argv) {
  int64_t num_sequences = 545;
  int64_t num_queries = 50;
  std::string eps_list = "0.5,1,2,4,8,16";
  int64_t categories = 100;
  int64_t seed = 2001;

  double cpu_scale = 100.0;
  std::string metrics_json;

  FlagSet flags("fig3_stock_elapsed");
  flags.AddInt64("n", &num_sequences, "number of stock sequences");
  flags.AddInt64("queries", &num_queries, "queries per tolerance");
  flags.AddString("eps", &eps_list, "comma-separated tolerances (dollars)");
  flags.AddInt64("categories", &categories, "ST-Filter category count");
  flags.AddInt64("seed", &seed, "dataset seed");
  flags.AddDouble("cpu_scale", &cpu_scale,
                  "CPU slowdown factor applied to measured wall time in the "
                  "elapsed metric (~100 matches the paper's 400 MHz "
                  "UltraSPARC-IIi; 1 = raw modern CPU)");
  flags.AddString("metrics_json", &metrics_json,
                  "also write per-method rows (with per-stage ms) to this "
                  "file as JSON lines");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  StockDataOptions stock;
  stock.num_sequences = static_cast<size_t>(num_sequences);
  stock.seed = static_cast<uint64_t>(seed);
  EngineOptions options;
  options.build_st_filter = true;
  options.st_filter_categories = static_cast<size_t>(categories);
  const Engine engine(GenerateStockDataset(stock), options);
  const auto queries = GenerateQueryWorkload(
      engine.dataset(),
      QueryWorkloadOptions{.num_queries = static_cast<size_t>(num_queries)});

  bench::PrintPreamble(
      "Figure 3: elapsed time vs tolerance (stock data)",
      "Kim/Park/Chu ICDE'01, Experiment 2, Figure 3",
      std::to_string(num_sequences) + " synthetic S&P-like sequences, " +
          std::to_string(num_queries) +
          " queries per eps; elapsed = measured CPU + simulated 9.5 ms-seek "
          "disk");

  bench::MetricsJsonWriter json("fig3_stock_elapsed", metrics_json);
  TablePrinter table(
      stdout, {"eps", "naive_ms", "lb_scan_ms", "st_filter_ms",
               "tw_sim_ms", "speedup_vs_best_scan"});
  table.PrintHeader();
  bench::WorkloadSummary last_tw;
  for (const double eps : bench::ParseDoubleList(eps_list)) {
    const auto naive =
        bench::RunWorkload(engine, MethodKind::kNaiveScan, queries, eps, cpu_scale);
    const auto lb =
        bench::RunWorkload(engine, MethodKind::kLbScan, queries, eps, cpu_scale);
    const auto st =
        bench::RunWorkload(engine, MethodKind::kStFilter, queries, eps, cpu_scale);
    const auto tw =
        bench::RunWorkload(engine, MethodKind::kTwSimSearch, queries, eps, cpu_scale);
    const double best_scan =
        std::min(naive.avg_elapsed_ms, lb.avg_elapsed_ms);
    table.PrintRow(
        {bench::FormatDouble(eps, 2),
         bench::FormatDouble(naive.avg_elapsed_ms, 1),
         bench::FormatDouble(lb.avg_elapsed_ms, 1),
         bench::FormatDouble(st.avg_elapsed_ms, 1),
         bench::FormatDouble(tw.avg_elapsed_ms, 1),
         bench::FormatDouble(best_scan / tw.avg_elapsed_ms, 1)});
    json.AddRow("naive_scan", "eps", eps, naive);
    json.AddRow("lb_scan", "eps", eps, lb);
    json.AddRow("st_filter", "eps", eps, st);
    json.AddRow("tw_sim_search", "eps", eps, tw);
    last_tw = tw;
  }
  std::printf("\nper-stage CPU breakdown at eps=%s (tw_sim_search):\n",
              eps_list.substr(eps_list.rfind(',') + 1).c_str());
  bench::PrintStageBreakdown(stdout, "tw_sim_search", last_tw);
  std::printf(
      "\nexpected shape: tw_sim fastest with the speedup growing as eps "
      "shrinks; st_filter worse than naive_scan at this scale.\n");
  json.Flush();
  return 0;
}

}  // namespace
}  // namespace warpindex

int main(int argc, char** argv) { return warpindex::Run(argc, argv); }
