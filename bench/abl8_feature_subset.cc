// Ablation A8: which of the four features does the filtering work?
//
// The paper's 4-tuple (First, Last, Greatest, Smallest) is the maximal
// "cheap" warping-invariant tuple, but each component alone is already a
// valid lower bound. This harness measures the candidate ratio under each
// feature subset (a dropped dimension becomes an infinite-range
// constraint) on both corpora, showing how much each feature contributes.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/bench_util.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "sequence/feature.h"
#include "sequence/random_walk_generator.h"
#include "sequence/stock_generator.h"

namespace warpindex {
namespace {

struct Subset {
  const char* name;
  bool first;
  bool last;
  bool greatest;
  bool smallest;
};

bool Passes(const FeatureVector& s, const FeatureVector& q, double eps,
            const Subset& subset) {
  if (subset.first && std::fabs(s.first - q.first) > eps) return false;
  if (subset.last && std::fabs(s.last - q.last) > eps) return false;
  if (subset.greatest && std::fabs(s.greatest - q.greatest) > eps) {
    return false;
  }
  if (subset.smallest && std::fabs(s.smallest - q.smallest) > eps) {
    return false;
  }
  return true;
}

void RunCorpus(const char* corpus, const Dataset& dataset, double eps,
               size_t num_queries, TablePrinter* table) {
  std::vector<FeatureVector> features;
  features.reserve(dataset.size());
  for (const Sequence& s : dataset.sequences()) {
    features.push_back(ExtractFeature(s));
  }
  const auto queries = GenerateQueryWorkload(
      dataset, QueryWorkloadOptions{.num_queries = num_queries});

  const Subset subsets[] = {
      {"first", true, false, false, false},
      {"first+last", true, true, false, false},
      {"greatest+smallest", false, false, true, true},
      {"all-but-last", true, false, true, true},
      {"all4(paper)", true, true, true, true},
  };
  for (const Subset& subset : subsets) {
    double candidates = 0.0;
    for (const Sequence& q : queries) {
      const FeatureVector qf = ExtractFeature(q);
      for (const FeatureVector& f : features) {
        if (Passes(f, qf, eps, subset)) {
          candidates += 1.0;
        }
      }
    }
    const double ratio = candidates /
                         static_cast<double>(queries.size()) /
                         static_cast<double>(dataset.size());
    table->PrintRow({corpus, subset.name,
                     bench::FormatDouble(ratio, 4)});
  }
}

int Run(int argc, char** argv) {
  int64_t num_queries = 100;
  double stock_eps = 2.0;
  double walk_eps = 0.1;

  FlagSet flags("abl8_feature_subset");
  flags.AddInt64("queries", &num_queries, "queries per corpus");
  flags.AddDouble("stock_eps", &stock_eps, "tolerance on the stock corpus");
  flags.AddDouble("walk_eps", &walk_eps, "tolerance on the walk corpus");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  bench::PrintPreamble(
      "Ablation A8: contribution of each feature to filtering",
      "Kim/Park/Chu ICDE'01 §4.2 (the 4-tuple feature vector)",
      "545 stock sequences (eps=" + bench::FormatDouble(stock_eps, 1) +
          ") and 2000 random walks of length 200 (eps=" +
          bench::FormatDouble(walk_eps, 2) + ")");

  TablePrinter table(stdout, {"corpus", "features", "candidate_ratio"});
  table.PrintHeader();

  RunCorpus("stock", GenerateStockDataset(StockDataOptions{}), stock_eps,
            static_cast<size_t>(num_queries), &table);

  RandomWalkOptions rw;
  rw.num_sequences = 2000;
  rw.min_length = 200;
  rw.max_length = 200;
  RunCorpus("walk", GenerateRandomWalkDataset(rw), walk_eps,
            static_cast<size_t>(num_queries), &table);

  std::printf(
      "\nexpected shape: each added feature tightens the filter; "
      "greatest/smallest matter most on trending data (random walks), "
      "first/last on range-bound data.\n");
  return 0;
}

}  // namespace
}  // namespace warpindex

int main(int argc, char** argv) { return warpindex::Run(argc, argv); }
