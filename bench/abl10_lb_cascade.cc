// Ablation A10: the lower-bound filter cascade (src/plan/).
//
// Sweeps fixed stage subsets of the cascade — none (the paper's
// Algorithm 1), each envelope bound alone, and the full pipeline — over a
// banded random-walk workload, reporting per-stage pruning counters and
// the headline metric: exact-DTW evaluations started per query. Every
// plan's answers are cross-validated against plain TW-Sim-Search at the
// same tolerance (the cascade's no-false-dismissal contract), so rows
// differ only in cost. With --metrics_json the per-(eps, plan) rows are
// also written as JSON lines including the prune breakdown.
//
// A Sakoe-Chiba band (--band >= 0) is the showcase configuration: with an
// unconstrained DTW the per-position envelope degenerates toward LB_Yi's
// global envelope and the later stages stop earning their keep — which
// the auto planner (see --plan in the CLI and docs/PLANNER.md) learns on
// its own.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "plan/cascade_planner.h"
#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

struct PlanCase {
  std::string label;
  CascadePlan plan;
};

std::vector<PlanCase> PlanCases() {
  using S = CascadeStage;
  return {
      {"paper", CascadePlan::Paper()},
      {"feature", CascadePlan{{S::kFeatureLb}}},
      {"yi", CascadePlan{{S::kLbYi}}},
      {"keogh", CascadePlan{{S::kLbKeogh}}},
      {"improved", CascadePlan{{S::kLbImproved}}},
      {"feature+keogh", CascadePlan{{S::kFeatureLb, S::kLbKeogh}}},
      {"full", CascadePlan::Full()},
  };
}

uint64_t PrunedAt(const bench::WorkloadSummary& summary,
                  std::string_view stage) {
  return summary.total_prunes.Get(stage).pruned;
}

int Run(int argc, char** argv) {
  int64_t num_sequences = 4000;
  int64_t length = 100;
  int64_t band = 8;
  int64_t num_queries = 100;
  std::string eps_list = "0.2,0.5,1.0";
  std::string metrics_json;

  FlagSet flags("abl10_lb_cascade");
  flags.AddInt64("n", &num_sequences, "number of sequences");
  flags.AddInt64("len", &length, "sequence length");
  flags.AddInt64("band", &band, "Sakoe-Chiba radius (<0 unconstrained)");
  flags.AddInt64("queries", &num_queries, "queries per configuration");
  flags.AddString("eps", &eps_list, "tolerance sweep");
  flags.AddString("metrics_json", &metrics_json,
                  "write per-row JSON lines to this file");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  RandomWalkOptions rw;
  rw.num_sequences = static_cast<size_t>(num_sequences);
  rw.min_length = static_cast<size_t>(length);
  rw.max_length = static_cast<size_t>(length);
  const Dataset dataset = GenerateRandomWalkDataset(rw);

  bench::PrintPreamble(
      "Ablation A10: lower-bound filter cascade",
      "extension of Kim/Park/Chu ICDE'01 Algorithm 1 (docs/PLANNER.md)",
      std::to_string(num_sequences) + " walks of length " +
          std::to_string(length) + ", band=" + std::to_string(band) +
          ", " + std::to_string(num_queries) + " queries per eps");

  // One engine per plan, all over the same dataset. The planner is fixed
  // to the row's stage subset; the "paper" row doubles as the plain
  // TW-Sim-Search baseline (its dtw_evals match by construction, which
  // the cross-validation below re-checks).
  std::vector<std::unique_ptr<Engine>> engines;
  for (const PlanCase& plan_case : PlanCases()) {
    EngineOptions options;
    options.dtw.band = static_cast<int>(band);
    options.cascade_planner.mode = PlanMode::kFixed;
    options.cascade_planner.fixed = plan_case.plan;
    engines.push_back(
        std::make_unique<Engine>(dataset, std::move(options)));
  }
  const auto queries = GenerateQueryWorkload(
      dataset, QueryWorkloadOptions{
                   .num_queries = static_cast<size_t>(num_queries)});

  bench::MetricsJsonWriter json("abl10_lb_cascade", metrics_json);
  TablePrinter table(stdout,
                     {"eps", "plan", "candidates", "dtw_evals", "dtw_cells",
                      "pr_feat", "pr_yi", "pr_keogh", "pr_impr",
                      "wall_ms"});
  table.PrintHeader();
  for (const double eps : bench::ParseDoubleList(eps_list)) {
    // Cross-validate: every plan must return the plain method's answers.
    size_t mismatches = 0;
    for (const Sequence& q : queries) {
      const SearchResult expected =
          engines[0]->SearchWith(MethodKind::kTwSimSearch, q, eps);
      for (std::unique_ptr<Engine>& engine : engines) {
        const SearchResult got =
            engine->SearchWith(MethodKind::kTwSimSearchCascade, q, eps);
        if (got.matches != expected.matches) {
          ++mismatches;
        }
      }
    }

    const bench::WorkloadSummary baseline = bench::RunWorkload(
        *engines[0], MethodKind::kTwSimSearch, queries, eps);
    for (size_t i = 0; i < engines.size(); ++i) {
      const PlanCase plan_case = PlanCases()[i];
      const bench::WorkloadSummary summary = bench::RunWorkload(
          *engines[i], MethodKind::kTwSimSearchCascade, queries, eps);
      table.PrintRow(
          {bench::FormatDouble(eps, 2), plan_case.label,
           bench::FormatDouble(summary.avg_candidates, 1),
           bench::FormatDouble(summary.avg_dtw_evals, 1),
           bench::FormatDouble(summary.avg_dtw_cells, 0),
           std::to_string(PrunedAt(summary, kStageFeatureLbCascade)),
           std::to_string(PrunedAt(summary, kStageLbYiCascade)),
           std::to_string(PrunedAt(summary, kStageLbKeoghCascade)),
           std::to_string(PrunedAt(summary, kStageLbImprovedCascade)),
           bench::FormatDouble(summary.avg_wall_ms, 3)});
      json.AddRow("cascade:" + plan_case.label, "eps", eps, summary);
    }
    json.AddRow("tw", "eps", eps, baseline);
    if (mismatches != 0) {
      std::printf("!! %zu plan rows disagreed with TW-Sim-Search at "
                  "eps=%.3f — cascade soundness bug\n",
                  mismatches, eps);
      return 1;
    }
    std::printf("  (baseline TW-Sim-Search: %s dtw_evals/query; all plans "
                "answer-identical)\n",
                bench::FormatDouble(baseline.avg_dtw_evals, 1).c_str());
  }
  json.Flush();
  std::printf(
      "\nexpected shape: dtw_evals falls monotonically as stages are "
      "added; with a narrow band lb_keogh/lb_improved prune far more "
      "than the global-envelope lb_yi, at a few O(n) bound evaluations "
      "per candidate.\n");
  return 0;
}

}  // namespace
}  // namespace warpindex

int main(int argc, char** argv) { return warpindex::Run(argc, argv); }
