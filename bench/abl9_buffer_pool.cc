// Ablation A9: LRU buffer pool over the index pages.
//
// The paper charges every index node touch as a disk read (§5.2 reasons
// about R-tree size vs database size). A small buffer pool keeps the hot
// upper levels resident, so repeated queries pay only for leaf-page
// misses. This harness sweeps the pool size over a query workload.

#include <cstdio>

#include "common/bench_util.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

int Run(int argc, char** argv) {
  int64_t num_sequences = 20000;
  int64_t length = 100;
  double eps = 0.1;
  int64_t num_queries = 200;
  std::string pool_list = "0,4,16,64,256,1024";

  FlagSet flags("abl9_buffer_pool");
  flags.AddInt64("n", &num_sequences, "number of sequences");
  flags.AddInt64("len", &length, "sequence length");
  flags.AddDouble("eps", &eps, "tolerance");
  flags.AddInt64("queries", &num_queries, "queries per pool size");
  flags.AddString("pools", &pool_list, "pool sizes in pages (0 = off)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  RandomWalkOptions rw;
  rw.num_sequences = static_cast<size_t>(num_sequences);
  rw.min_length = static_cast<size_t>(length);
  rw.max_length = static_cast<size_t>(length);

  bench::PrintPreamble(
      "Ablation A9: index buffer pool size",
      "extension of Kim/Park/Chu ICDE'01 §5.2's I/O accounting",
      std::to_string(num_sequences) + " walks of length " +
          std::to_string(length) + ", eps=" + bench::FormatDouble(eps, 2) +
          ", " + std::to_string(num_queries) + " queries");

  TablePrinter table(stdout,
                     {"pool_pages", "index_pages", "io_reads_per_query",
                      "io_ms_per_query", "hit_rate"});
  table.PrintHeader();
  for (const int64_t pool_pages : bench::ParseIntList(pool_list)) {
    EngineOptions options;
    options.index_buffer_pages = static_cast<size_t>(pool_pages);
    const Engine engine(GenerateRandomWalkDataset(rw), options);
    const auto queries = GenerateQueryWorkload(
        engine.dataset(), QueryWorkloadOptions{
                              .num_queries = static_cast<size_t>(num_queries)});
    double reads = 0.0;
    double io_ms = 0.0;
    for (const Sequence& q : queries) {
      const SearchResult r = engine.Search(q, eps);
      reads += static_cast<double>(r.cost.io.random_page_reads);
      io_ms += engine.disk_model().CostMillis(r.cost.io);
    }
    double hit_rate = 0.0;
    if (engine.index_pool() != nullptr) {
      const uint64_t hits = engine.index_pool()->hits();
      const uint64_t total = hits + engine.index_pool()->misses();
      hit_rate = total == 0 ? 0.0
                            : static_cast<double>(hits) /
                                  static_cast<double>(total);
    }
    const double n = static_cast<double>(queries.size());
    table.PrintRow({std::to_string(pool_pages),
                    std::to_string(engine.feature_index().rtree()
                                       .TotalPages()),
                    bench::FormatDouble(reads / n, 1),
                    bench::FormatDouble(io_ms / n, 2),
                    bench::FormatDouble(hit_rate, 3)});
  }
  std::printf(
      "\nexpected shape: I/O per query falls steeply once the pool holds "
      "the index's upper levels, flattening when the whole index fits.\n");
  return 0;
}

}  // namespace
}  // namespace warpindex

int main(int argc, char** argv) { return warpindex::Run(argc, argv); }
