// Serving-path throughput vs thread count.
//
// Runs the same query batch through the concurrent QueryExecutor at each
// worker count and reports queries/sec plus per-query service-time
// percentiles. The queries are embarrassingly parallel (the engine's read
// path is const and lock-free outside the buffer pool's shard mutexes),
// so throughput should scale close to linearly until the machine runs out
// of cores or memory bandwidth; `scaling_vs_1t` makes the factor explicit.
//
// With --metrics_json the per-thread-count rows are also written as JSON
// lines for machine consumption:
//   {"bench":"micro_throughput","threads":4,"qps":...,"scaling_vs_1t":...}

#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "common/flags.h"
#include "common/stats.h"
#include "common/workload.h"
#include "common/table_printer.h"
#include "common/status.h"
#include "exec/query_executor.h"
#include "obs/profiler.h"
#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

int Run(int argc, char** argv) {
  int64_t num_sequences = 2000;
  int64_t length = 128;
  int64_t num_queries = 256;
  double eps = 0.2;
  std::string method = "tw";
  std::string thread_list = "1,2,4,8";
  int64_t repeat = 3;  // best-of, to damp scheduler noise
  int64_t distinct = 0;
  double skew = 1.0;
  int64_t workload_seed = 42;
  std::string metrics_json;
  int64_t profile_hz = 0;

  FlagSet flags("micro_throughput");
  flags.AddInt64("n", &num_sequences, "number of sequences");
  flags.AddInt64("len", &length, "sequence length");
  flags.AddInt64("queries", &num_queries, "batch size");
  flags.AddDouble("eps", &eps, "tolerance");
  flags.AddString("method", &method, "tw | naive | lb");
  flags.AddString("threads", &thread_list, "worker counts to sweep");
  flags.AddInt64("repeat", &repeat, "batch repetitions (best qps kept)");
  flags.AddInt64("distinct", &distinct,
                 "repeat-heavy workload: draw the batch Zipfian(--skew) "
                 "from this many distinct queries (0 = every query "
                 "distinct, the default)");
  flags.AddDouble("skew", &skew,
                  "Zipf exponent for --distinct draws (0 = uniform)");
  flags.AddInt64("seed", &workload_seed, "workload RNG seed");
  flags.AddString("metrics_json", &metrics_json,
                  "also write one JSON line per thread count to this file");
  flags.AddInt64("profile_hz", &profile_hz,
                 "run the whole sweep under the SIGPROF sampling profiler "
                 "at this rate, to measure its overhead (0 = off)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (profile_hz > 0) {
    ProfileOptions profile_options;
    profile_options.hz = static_cast<int>(profile_hz);
    // Oversize the ring so a long sweep never hits the drop path; the
    // point here is steady-state handler overhead, not the profile.
    profile_options.max_samples = 1 << 20;
    const Status status = CpuProfiler::Global().Start(profile_options);
    if (!status.ok()) {
      std::fprintf(stderr, "--profile_hz: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  MethodKind kind = MethodKind::kTwSimSearch;
  if (method == "naive") {
    kind = MethodKind::kNaiveScan;
  } else if (method == "lb") {
    kind = MethodKind::kLbScan;
  } else if (method != "tw") {
    std::fprintf(stderr, "unknown --method '%s'\n", method.c_str());
    return 1;
  }

  RandomWalkOptions rw;
  rw.num_sequences = static_cast<size_t>(num_sequences);
  rw.min_length = static_cast<size_t>(length);
  rw.max_length = static_cast<size_t>(length);
  const Engine engine(GenerateRandomWalkDataset(rw), EngineOptions{});
  // With --distinct, the batch replays a small query pool under the
  // shared seeded Zipfian sampler (bench/common/workload.h) — the same
  // repeat-heavy stream micro_cache measures hit rates on.
  const size_t pool_size = distinct > 0 ? static_cast<size_t>(distinct)
                                        : static_cast<size_t>(num_queries);
  const auto queries = GenerateQueryWorkload(
      engine.dataset(), QueryWorkloadOptions{.num_queries = pool_size});
  std::vector<QueryRequest> requests;
  requests.reserve(static_cast<size_t>(num_queries));
  if (distinct > 0) {
    bench::ZipfianOptions zipf;
    zipf.num_items = queries.size();
    zipf.skew = skew;
    zipf.seed = static_cast<uint64_t>(workload_seed);
    for (const size_t i : bench::GenerateZipfianIndices(
             zipf, static_cast<size_t>(num_queries))) {
      requests.push_back(QueryRequest{kind, queries[i], eps});
    }
  } else {
    for (const Sequence& q : queries) {
      requests.push_back(QueryRequest{kind, q, eps});
    }
  }

  bench::PrintPreamble(
      "Micro: batch serving throughput vs thread count",
      "concurrent executor over the paper's range-query pipeline",
      std::to_string(num_sequences) + " walks of length " +
          std::to_string(length) + ", " + std::to_string(num_queries) +
          " queries/batch, eps=" + bench::FormatDouble(eps, 2) +
          ", method=" + method);

  std::FILE* json = nullptr;
  if (!metrics_json.empty()) {
    json = std::fopen(metrics_json.c_str(), "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", metrics_json.c_str());
      return 1;
    }
  }

  TablePrinter table(stdout, {"threads", "qps", "batch_ms", "p50_ms",
                              "p99_ms", "p999_ms", "scaling_vs_1t"});
  table.PrintHeader();
  double qps_1t = 0.0;
  for (const int64_t threads : bench::ParseIntList(thread_list)) {
    QueryExecutorOptions options;
    options.num_threads = static_cast<size_t>(threads);
    QueryExecutor executor(&engine, options);
    executor.SubmitBatch(requests);  // warm-up (pool cache, allocator)

    double best_qps = 0.0;
    double best_wall = 0.0;
    std::vector<double> latencies;
    for (int64_t r = 0; r < repeat; ++r) {
      const BatchResult batch = executor.SubmitBatch(requests);
      if (batch.queries_per_sec > best_qps) {
        best_qps = batch.queries_per_sec;
        best_wall = batch.wall_ms;
        latencies.clear();
        for (const SearchResult& result : batch.results) {
          latencies.push_back(result.cost.wall_ms);
        }
      }
    }
    if (threads == 1) {
      qps_1t = best_qps;
    }
    const double scaling = qps_1t > 0.0 ? best_qps / qps_1t : 0.0;
    const double p50 = Percentile(latencies, 0.5);
    const double p99 = Percentile(latencies, 0.99);
    const double p999 = Percentile(latencies, 0.999);
    table.PrintRow({std::to_string(threads), bench::FormatDouble(best_qps, 1),
                    bench::FormatDouble(best_wall, 2),
                    bench::FormatDouble(p50, 3), bench::FormatDouble(p99, 3),
                    bench::FormatDouble(p999, 3),
                    bench::FormatDouble(scaling, 2)});
    if (json != nullptr) {
      std::fprintf(json,
                   "{\"bench\":\"micro_throughput\",\"method\":\"%s\","
                   "\"threads\":%lld,\"queries\":%zu,\"qps\":%.3f,"
                   "\"batch_ms\":%.3f,\"p50_ms\":%.5f,\"p99_ms\":%.5f,"
                   "\"p999_ms\":%.5f,\"scaling_vs_1t\":%.3f}\n",
                   method.c_str(), static_cast<long long>(threads),
                   requests.size(), best_qps, best_wall, p50, p99, p999,
                   scaling);
    }
  }
  if (json != nullptr) {
    std::fclose(json);
    std::printf("\nwrote JSON lines to %s\n", metrics_json.c_str());
  }
  if (profile_hz > 0) {
    Profile profile;
    if (CpuProfiler::Global().Stop(&profile).ok()) {
      std::printf("\nprofiler: %llu samples at %d Hz (%llu dropped) over "
                  "the sweep\n",
                  static_cast<unsigned long long>(profile.samples),
                  profile.hz,
                  static_cast<unsigned long long>(profile.dropped));
    }
  }
  std::printf(
      "\nexpected shape: near-linear qps scaling while threads <= physical "
      "cores; service p50 stays flat (per-query work is unchanged, only "
      "concurrency grows).\n");
  return 0;
}

}  // namespace
}  // namespace warpindex

int main(int argc, char** argv) { return warpindex::Run(argc, argv); }
