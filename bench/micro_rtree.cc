// Microbenchmarks for the R-tree: insertion, STR bulk loading, range
// queries, and kNN on 4-d feature-like points at the paper's 1 KB page
// size.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/prng.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"

namespace warpindex {
namespace {

std::vector<RTreeEntry> FeatureLikeEntries(size_t n, uint64_t seed) {
  Prng prng(seed);
  std::vector<RTreeEntry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double base = prng.UniformDouble(1.0, 10.0);
    Point p;
    p.dims = 4;
    p[0] = base + prng.UniformDouble(-1.0, 1.0);
    p[1] = base + prng.UniformDouble(-1.0, 1.0);
    p[2] = base + prng.UniformDouble(0.5, 2.0);
    p[3] = base - prng.UniformDouble(0.5, 2.0);
    entries.push_back(
        RTreeEntry::Leaf(Rect::FromPoint(p), static_cast<int64_t>(i)));
  }
  return entries;
}

void BM_RTreeInsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto entries = FeatureLikeEntries(n, 3);
  for (auto _ : state) {
    RTree tree(4);
    for (const auto& e : entries) {
      tree.Insert(e.rect, e.record_id);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RTreeInsert)->Arg(1000)->Arg(10000);

void BM_RTreeBulkLoad(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto entries = FeatureLikeEntries(n, 3);
  for (auto _ : state) {
    auto copy = entries;
    benchmark::DoNotOptimize(
        BulkLoadStr(4, RTreeOptions{}, std::move(copy)).size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RTreeRangeQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const RTree tree = BulkLoadStr(4, RTreeOptions{}, FeatureLikeEntries(n, 5));
  Prng prng(6);
  for (auto _ : state) {
    Point c;
    c.dims = 4;
    const double base = prng.UniformDouble(1.0, 10.0);
    for (int d = 0; d < 4; ++d) {
      c[d] = base;
    }
    benchmark::DoNotOptimize(
        tree.RangeSearch(Rect::SquareAround(c, 0.1)).size());
  }
}
BENCHMARK(BM_RTreeRangeQuery)->Arg(10000)->Arg(100000);

void BM_RTreeKnn(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const RTree tree = BulkLoadStr(4, RTreeOptions{}, FeatureLikeEntries(n, 7));
  Prng prng(8);
  for (auto _ : state) {
    Point c;
    c.dims = 4;
    const double base = prng.UniformDouble(1.0, 10.0);
    for (int d = 0; d < 4; ++d) {
      c[d] = base;
    }
    benchmark::DoNotOptimize(tree.NearestNeighbors(c, 10).size());
  }
}
BENCHMARK(BM_RTreeKnn)->Arg(10000)->Arg(100000);

// HealthStats itself (one full traversal), reported with the structure
// quality it measures: leaf occupancy and the directory-level overlap /
// dead-space estimates. range(1) selects construction:
//   0  insert_quadratic        one-at-a-time, legacy quadratic splits
//   1  insert_rstar_reinsert   one-at-a-time with the R*-style knobs the
//                              ingest delta shards use (forced reinsert,
//                              0.3 reinsert fraction, 0.4 distribution
//                              factor)
//   2  bulk_packed             STR bulk load, leaves packed to 100%
//   3  bulk_fill70_stream      STR at 0.7 fill, then the last 10% of the
//                              entries inserted R*-style — the compacted
//                              base + streaming writes shape
// Bulk-loaded trees should show visibly higher occupancy than
// one-at-a-time insertion (the §4.3.1 argument for bulk loading, now
// measurable live via /statusz), and the R* knobs should cut overlap /
// dead space relative to the quadratic insert path.
void BM_RTreeHealthStats(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int64_t config = state.range(1);
  const auto entries = FeatureLikeEntries(n, 11);
  RTreeOptions rstar;
  rstar.split_policy = SplitPolicy::kRStar;
  rstar.forced_reinsert = true;
  rstar.reinsert_fraction = 0.3;
  rstar.split_distribution_factor = 0.4;
  RTree tree(4);
  const char* label = "insert_quadratic";
  switch (config) {
    case 0:
      for (const auto& e : entries) {
        tree.Insert(e.rect, e.record_id);
      }
      break;
    case 1:
      tree = RTree(4, rstar);
      for (const auto& e : entries) {
        tree.Insert(e.rect, e.record_id);
      }
      label = "insert_rstar_reinsert";
      break;
    case 2:
      tree = BulkLoadStr(4, RTreeOptions{}, entries);
      label = "bulk_packed";
      break;
    case 3: {
      RTreeOptions headroom = rstar;
      headroom.bulk_fill_fraction = 0.7;
      const size_t base = n - n / 10;
      tree = BulkLoadStr(4, headroom,
                         {entries.begin(), entries.begin() + base});
      for (size_t i = base; i < entries.size(); ++i) {
        tree.Insert(entries[i].rect, entries[i].record_id);
      }
      label = "bulk_fill70_stream";
      break;
    }
    default:
      state.SkipWithError("unknown config");
      return;
  }
  RTreeHealth health;
  for (auto _ : state) {
    health = tree.HealthStats();
    benchmark::DoNotOptimize(health.nodes);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(health.nodes));
  state.counters["leaf_occupancy_pct"] = 100.0 * health.leaf_occupancy;
  state.counters["overlap_ratio"] = health.overlap_ratio;
  state.counters["dead_space_ratio"] = health.dead_space_ratio;
  state.SetLabel(label);
}
BENCHMARK(BM_RTreeHealthStats)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({10000, 3})
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->Args({100000, 2})
    ->Args({100000, 3});

void BM_RTreeDelete(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto entries = FeatureLikeEntries(n, 9);
  for (auto _ : state) {
    state.PauseTiming();
    RTree tree = BulkLoadStr(4, RTreeOptions{}, entries);
    state.ResumeTiming();
    for (size_t i = 0; i < n / 2; ++i) {
      tree.Delete(entries[i].rect, entries[i].record_id);
    }
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_RTreeDelete)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace warpindex
