// Microbenchmarks for the R-tree: insertion, STR bulk loading, range
// queries, and kNN on 4-d feature-like points at the paper's 1 KB page
// size.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/prng.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"

namespace warpindex {
namespace {

std::vector<RTreeEntry> FeatureLikeEntries(size_t n, uint64_t seed) {
  Prng prng(seed);
  std::vector<RTreeEntry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double base = prng.UniformDouble(1.0, 10.0);
    Point p;
    p.dims = 4;
    p[0] = base + prng.UniformDouble(-1.0, 1.0);
    p[1] = base + prng.UniformDouble(-1.0, 1.0);
    p[2] = base + prng.UniformDouble(0.5, 2.0);
    p[3] = base - prng.UniformDouble(0.5, 2.0);
    entries.push_back(
        RTreeEntry::Leaf(Rect::FromPoint(p), static_cast<int64_t>(i)));
  }
  return entries;
}

void BM_RTreeInsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto entries = FeatureLikeEntries(n, 3);
  for (auto _ : state) {
    RTree tree(4);
    for (const auto& e : entries) {
      tree.Insert(e.rect, e.record_id);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RTreeInsert)->Arg(1000)->Arg(10000);

void BM_RTreeBulkLoad(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto entries = FeatureLikeEntries(n, 3);
  for (auto _ : state) {
    auto copy = entries;
    benchmark::DoNotOptimize(
        BulkLoadStr(4, RTreeOptions{}, std::move(copy)).size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RTreeRangeQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const RTree tree = BulkLoadStr(4, RTreeOptions{}, FeatureLikeEntries(n, 5));
  Prng prng(6);
  for (auto _ : state) {
    Point c;
    c.dims = 4;
    const double base = prng.UniformDouble(1.0, 10.0);
    for (int d = 0; d < 4; ++d) {
      c[d] = base;
    }
    benchmark::DoNotOptimize(
        tree.RangeSearch(Rect::SquareAround(c, 0.1)).size());
  }
}
BENCHMARK(BM_RTreeRangeQuery)->Arg(10000)->Arg(100000);

void BM_RTreeKnn(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const RTree tree = BulkLoadStr(4, RTreeOptions{}, FeatureLikeEntries(n, 7));
  Prng prng(8);
  for (auto _ : state) {
    Point c;
    c.dims = 4;
    const double base = prng.UniformDouble(1.0, 10.0);
    for (int d = 0; d < 4; ++d) {
      c[d] = base;
    }
    benchmark::DoNotOptimize(tree.NearestNeighbors(c, 10).size());
  }
}
BENCHMARK(BM_RTreeKnn)->Arg(10000)->Arg(100000);

void BM_RTreeDelete(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto entries = FeatureLikeEntries(n, 9);
  for (auto _ : state) {
    state.PauseTiming();
    RTree tree = BulkLoadStr(4, RTreeOptions{}, entries);
    state.ResumeTiming();
    for (size_t i = 0; i < n / 2; ++i) {
      tree.Delete(entries[i].rect, entries[i].record_id);
    }
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_RTreeDelete)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace warpindex
