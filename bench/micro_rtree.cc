// Microbenchmarks for the R-tree: insertion, STR bulk loading, range
// queries, and kNN on 4-d feature-like points at the paper's 1 KB page
// size.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/prng.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"

namespace warpindex {
namespace {

std::vector<RTreeEntry> FeatureLikeEntries(size_t n, uint64_t seed) {
  Prng prng(seed);
  std::vector<RTreeEntry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double base = prng.UniformDouble(1.0, 10.0);
    Point p;
    p.dims = 4;
    p[0] = base + prng.UniformDouble(-1.0, 1.0);
    p[1] = base + prng.UniformDouble(-1.0, 1.0);
    p[2] = base + prng.UniformDouble(0.5, 2.0);
    p[3] = base - prng.UniformDouble(0.5, 2.0);
    entries.push_back(
        RTreeEntry::Leaf(Rect::FromPoint(p), static_cast<int64_t>(i)));
  }
  return entries;
}

void BM_RTreeInsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto entries = FeatureLikeEntries(n, 3);
  for (auto _ : state) {
    RTree tree(4);
    for (const auto& e : entries) {
      tree.Insert(e.rect, e.record_id);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RTreeInsert)->Arg(1000)->Arg(10000);

void BM_RTreeBulkLoad(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto entries = FeatureLikeEntries(n, 3);
  for (auto _ : state) {
    auto copy = entries;
    benchmark::DoNotOptimize(
        BulkLoadStr(4, RTreeOptions{}, std::move(copy)).size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RTreeRangeQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const RTree tree = BulkLoadStr(4, RTreeOptions{}, FeatureLikeEntries(n, 5));
  Prng prng(6);
  for (auto _ : state) {
    Point c;
    c.dims = 4;
    const double base = prng.UniformDouble(1.0, 10.0);
    for (int d = 0; d < 4; ++d) {
      c[d] = base;
    }
    benchmark::DoNotOptimize(
        tree.RangeSearch(Rect::SquareAround(c, 0.1)).size());
  }
}
BENCHMARK(BM_RTreeRangeQuery)->Arg(10000)->Arg(100000);

void BM_RTreeKnn(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const RTree tree = BulkLoadStr(4, RTreeOptions{}, FeatureLikeEntries(n, 7));
  Prng prng(8);
  for (auto _ : state) {
    Point c;
    c.dims = 4;
    const double base = prng.UniformDouble(1.0, 10.0);
    for (int d = 0; d < 4; ++d) {
      c[d] = base;
    }
    benchmark::DoNotOptimize(tree.NearestNeighbors(c, 10).size());
  }
}
BENCHMARK(BM_RTreeKnn)->Arg(10000)->Arg(100000);

// HealthStats itself (one full traversal), reported with the structure
// quality it measures: leaf occupancy and the directory-level overlap /
// dead-space estimates. range(1) selects construction — bulk-loaded
// trees should show visibly higher occupancy than one-at-a-time
// insertion (the §4.3.1 argument for bulk loading, now measurable live
// via /statusz).
void BM_RTreeHealthStats(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool bulk = state.range(1) != 0;
  const auto entries = FeatureLikeEntries(n, 11);
  RTree tree(4);
  if (bulk) {
    tree = BulkLoadStr(4, RTreeOptions{}, entries);
  } else {
    for (const auto& e : entries) {
      tree.Insert(e.rect, e.record_id);
    }
  }
  RTreeHealth health;
  for (auto _ : state) {
    health = tree.HealthStats();
    benchmark::DoNotOptimize(health.nodes);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(health.nodes));
  state.counters["leaf_occupancy_pct"] = 100.0 * health.leaf_occupancy;
  state.counters["overlap_ratio"] = health.overlap_ratio;
  state.counters["dead_space_ratio"] = health.dead_space_ratio;
  state.SetLabel(bulk ? "bulk_load" : "insert_one_at_a_time");
}
BENCHMARK(BM_RTreeHealthStats)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({100000, 0})
    ->Args({100000, 1});

void BM_RTreeDelete(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto entries = FeatureLikeEntries(n, 9);
  for (auto _ : state) {
    state.PauseTiming();
    RTree tree = BulkLoadStr(4, RTreeOptions{}, entries);
    state.ResumeTiming();
    for (size_t i = 0; i < n / 2; ++i) {
      tree.Delete(entries[i].rect, entries[i].record_id);
    }
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_RTreeDelete)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace warpindex
