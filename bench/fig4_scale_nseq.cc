// Figure 4 / Experiment 3: elapsed time vs number of data sequences
// (log-log in the paper: 1,000 to 100,000 sequences of length 1,000 at
// tolerance 0.1).
//
// Paper result shape: scan methods and ST-Filter grow steeply with N while
// TW-Sim-Search stays near-flat (19x-720x speedup, growing with N).
//
// Default grid is scaled (length 200, N up to 20,000, ST-Filter capped at
// 5,000 sequences) to finish in minutes; pass --lens/--n_list/--st_max_n
// for the paper's full grid. EXPERIMENTS.md records the grid used for the
// committed output.

#include <cstdio>

#include "common/bench_util.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

int Run(int argc, char** argv) {
  std::string n_list = "1000,2000,5000,10000,20000";
  int64_t length = 200;  // paper: 1000
  double eps = 0.1;      // paper §5.2
  int64_t num_queries = 20;  // paper: 100
  int64_t st_max_n = 5000;
  int64_t categories = 100;

  double cpu_scale = 100.0;

  FlagSet flags("fig4_scale_nseq");
  flags.AddString("n_list", &n_list, "sequence counts to sweep");
  flags.AddInt64("len", &length, "sequence length (paper: 1000)");
  flags.AddDouble("eps", &eps, "tolerance");
  flags.AddInt64("queries", &num_queries, "queries per configuration");
  flags.AddInt64("st_max_n", &st_max_n,
                 "largest N at which ST-Filter is still run (suffix tree "
                 "memory/build time)");
  flags.AddInt64("categories", &categories, "ST-Filter category count");
  flags.AddDouble("cpu_scale", &cpu_scale,
                  "CPU slowdown factor applied to measured wall time in the "
                  "elapsed metric (~100 matches the paper's 400 MHz "
                  "UltraSPARC-IIi; 1 = raw modern CPU)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  bench::PrintPreamble(
      "Figure 4: elapsed time vs number of sequences",
      "Kim/Park/Chu ICDE'01, Experiment 3, Figure 4",
      "random-walk sequences of length " + std::to_string(length) +
          ", eps=" + bench::FormatDouble(eps, 2) + ", " +
          std::to_string(num_queries) + " queries per N");

  TablePrinter table(stdout,
                     {"n_sequences", "naive_ms", "lb_scan_ms",
                      "st_filter_ms", "tw_sim_ms", "speedup_vs_best_scan"});
  table.PrintHeader();
  for (const int64_t n : bench::ParseIntList(n_list)) {
    RandomWalkOptions rw;
    rw.num_sequences = static_cast<size_t>(n);
    rw.min_length = static_cast<size_t>(length);
    rw.max_length = static_cast<size_t>(length);
    const bool run_st = n <= st_max_n;
    EngineOptions options;
    options.build_st_filter = run_st;
    options.st_filter_categories = static_cast<size_t>(categories);
    const Engine engine(GenerateRandomWalkDataset(rw), options);
    const auto queries = GenerateQueryWorkload(
        engine.dataset(), QueryWorkloadOptions{
                              .num_queries = static_cast<size_t>(num_queries)});

    const auto naive =
        bench::RunWorkload(engine, MethodKind::kNaiveScan, queries, eps, cpu_scale);
    const auto lb =
        bench::RunWorkload(engine, MethodKind::kLbScan, queries, eps, cpu_scale);
    const auto tw =
        bench::RunWorkload(engine, MethodKind::kTwSimSearch, queries, eps, cpu_scale);
    std::string st_cell = "(skipped)";
    if (run_st) {
      const auto st =
          bench::RunWorkload(engine, MethodKind::kStFilter, queries, eps, cpu_scale);
      st_cell = bench::FormatDouble(st.avg_elapsed_ms, 1);
    }
    const double best_scan =
        std::min(naive.avg_elapsed_ms, lb.avg_elapsed_ms);
    table.PrintRow({std::to_string(n),
                    bench::FormatDouble(naive.avg_elapsed_ms, 1),
                    bench::FormatDouble(lb.avg_elapsed_ms, 1), st_cell,
                    bench::FormatDouble(tw.avg_elapsed_ms, 1),
                    bench::FormatDouble(best_scan / tw.avg_elapsed_ms, 1)});
  }
  std::printf(
      "\nexpected shape: scans grow ~linearly in N; tw_sim near-flat; "
      "speedup grows with N.\n");
  return 0;
}

}  // namespace
}  // namespace warpindex

int main(int argc, char** argv) { return warpindex::Run(argc, argv); }
