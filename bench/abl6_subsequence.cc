// Ablation A6: the subsequence-matching extension (paper §6).
//
// The paper's concluding remarks claim the method carries over to
// subsequence matching by indexing subsequence feature vectors. This
// harness builds the sliding-window index, compares it against a
// brute-force window scan, and sweeps the stride knob (index size vs
// completeness).

#include <cstdio>

#include "common/bench_util.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/subsequence_index.h"
#include "dtw/dtw.h"
#include "sequence/random_walk_generator.h"
#include "suffixtree/st_filter.h"

namespace warpindex {
namespace {

int Run(int argc, char** argv) {
  int64_t num_sequences = 50;
  int64_t length = 400;
  int64_t min_window = 24;
  int64_t max_window = 32;
  double eps = 0.1;
  int64_t num_queries = 10;
  std::string stride_list = "1,2,4,8";

  FlagSet flags("abl6_subsequence");
  flags.AddInt64("n", &num_sequences, "number of data sequences");
  flags.AddInt64("len", &length, "data sequence length");
  flags.AddInt64("min_window", &min_window, "smallest indexed window");
  flags.AddInt64("max_window", &max_window, "largest indexed window");
  flags.AddDouble("eps", &eps, "tolerance");
  flags.AddInt64("queries", &num_queries, "queries");
  flags.AddString("strides", &stride_list, "offset strides to sweep");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  RandomWalkOptions rw;
  rw.num_sequences = static_cast<size_t>(num_sequences);
  rw.min_length = static_cast<size_t>(length);
  rw.max_length = static_cast<size_t>(length);
  const Dataset dataset = GenerateRandomWalkDataset(rw);

  // Queries: perturbed real windows.
  std::vector<Sequence> queries;
  for (int64_t qi = 0; qi < num_queries; ++qi) {
    const Sequence& s = dataset[static_cast<size_t>(qi * 7) % dataset.size()];
    const size_t w = static_cast<size_t>(
        min_window + (qi % (max_window - min_window + 1)));
    const size_t off = static_cast<size_t>(qi * 13) % (s.size() - w);
    queries.push_back(
        PerturbSequence(s.Slice(off, w), static_cast<uint64_t>(qi)));
  }

  bench::PrintPreamble(
      "Ablation A6: subsequence matching via window feature index",
      "Kim/Park/Chu ICDE'01 §6 (extension to subsequence matching)",
      std::to_string(num_sequences) + " walks of length " +
          std::to_string(length) + ", windows [" +
          std::to_string(min_window) + ", " + std::to_string(max_window) +
          "], eps=" + bench::FormatDouble(eps, 2));

  // Brute-force reference (stride 1).
  const Dtw dtw(DtwOptions::Linf());
  WallTimer brute_timer;
  size_t brute_matches = 0;
  for (const Sequence& q : queries) {
    for (size_t i = 0; i < dataset.size(); ++i) {
      const Sequence& s = dataset[i];
      for (size_t w = static_cast<size_t>(min_window);
           w <= static_cast<size_t>(max_window); ++w) {
        for (size_t off = 0; off + w <= s.size(); ++off) {
          if (dtw.DistanceWithThreshold(s.Slice(off, w), q, eps).distance <=
              eps) {
            ++brute_matches;
          }
        }
      }
    }
  }
  const double brute_ms =
      brute_timer.ElapsedMillis() / static_cast<double>(queries.size());
  std::printf("brute-force window scan: %.1f ms/query, %zu total matches\n\n",
              brute_ms, brute_matches);

  TablePrinter table(stdout,
                     {"stride", "windows_indexed", "build_ms",
                      "query_ms", "matches", "coverage_vs_stride1"});
  table.PrintHeader();
  size_t stride1_matches = 0;
  for (const int64_t stride : bench::ParseIntList(stride_list)) {
    SubsequenceIndexOptions options;
    options.min_window = static_cast<size_t>(min_window);
    options.max_window = static_cast<size_t>(max_window);
    options.stride = static_cast<size_t>(stride);
    WallTimer build_timer;
    const SubsequenceIndex index(&dataset, options);
    const double build_ms = build_timer.ElapsedMillis();

    WallTimer query_timer;
    size_t matches = 0;
    for (const Sequence& q : queries) {
      matches += index.Search(q, eps).size();
    }
    const double query_ms =
        query_timer.ElapsedMillis() / static_cast<double>(queries.size());
    if (stride == 1) {
      stride1_matches = matches;
    }
    table.PrintRow(
        {std::to_string(stride), std::to_string(index.num_windows()),
         bench::FormatDouble(build_ms, 1), bench::FormatDouble(query_ms, 2),
         std::to_string(matches),
         bench::FormatDouble(stride1_matches == 0
                                 ? 1.0
                                 : static_cast<double>(matches) /
                                       static_cast<double>(stride1_matches),
                             3)});
  }
  std::printf(
      "\nexpected shape: stride 1 matches the brute-force count exactly at "
      "a fraction of its time; larger strides shrink the index and lose "
      "coverage.\n");

  // ST-Filter on the same task (paper §3.4: subsequence matching is what
  // the suffix tree was designed for — shared substrings let one tree
  // path stand in for many windows).
  StFilterOptions st_options;
  st_options.num_categories = 100;
  WallTimer st_build_timer;
  const StFilter st_filter(dataset, st_options);
  const double st_build_ms = st_build_timer.ElapsedMillis();

  WallTimer st_query_timer;
  size_t st_candidates = 0;
  size_t st_matches = 0;
  for (const Sequence& q : queries) {
    const auto candidates = st_filter.FindSubsequenceCandidates(
        q, eps, static_cast<size_t>(min_window),
        static_cast<size_t>(max_window));
    st_candidates += candidates.size();
    for (const auto& c : candidates) {
      const Sequence window =
          dataset[static_cast<size_t>(c.sequence_id)].Slice(c.offset,
                                                            c.length);
      if (dtw.DistanceWithThreshold(window, q, eps).distance <= eps) {
        ++st_matches;
      }
    }
  }
  const double st_query_ms =
      st_query_timer.ElapsedMillis() / static_cast<double>(queries.size());
  std::printf(
      "\nST-Filter subsequence matching on the same task:\n"
      "  suffix tree: %zu nodes, built in %.1f ms\n"
      "  %.2f ms/query, %zu candidates -> %zu matches "
      "(window index stride 1: %zu matches)\n"
      "expected: identical match count (both filters are exact); the "
      "suffix tree trades a bigger build for candidate sharing across "
      "window lengths.\n",
      st_filter.tree().num_nodes(), st_build_ms, st_query_ms, st_candidates,
      st_matches, stride1_matches);
  return 0;
}

}  // namespace
}  // namespace warpindex

int main(int argc, char** argv) { return warpindex::Run(argc, argv); }
