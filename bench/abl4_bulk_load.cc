// Ablation A4: STR bulk loading vs one-by-one insertion (paper §4.3.1:
// "If there are a large number of data sequences at the stage of initial
// index construction, we can achieve high performance gains ... by using
// bulk loading methods").

#include <cstdio>

#include "common/bench_util.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/feature_index.h"
#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

int Run(int argc, char** argv) {
  std::string n_list = "1000,5000,20000,50000";
  int64_t length = 64;

  FlagSet flags("abl4_bulk_load");
  flags.AddString("n_list", &n_list, "sequence counts to sweep");
  flags.AddInt64("len", &length, "sequence length");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  bench::PrintPreamble(
      "Ablation A4: index construction, STR bulk load vs insertion",
      "Kim/Park/Chu ICDE'01 §4.3.1 (bulk loading for initial construction)",
      "random-walk sequences of length " + std::to_string(length));

  TablePrinter table(stdout,
                     {"n", "insert_ms", "bulk_ms", "build_speedup",
                      "insert_nodes", "bulk_nodes", "query_nodes_insert",
                      "query_nodes_bulk"});
  table.PrintHeader();
  for (const int64_t n : bench::ParseIntList(n_list)) {
    RandomWalkOptions rw;
    rw.num_sequences = static_cast<size_t>(n);
    rw.min_length = static_cast<size_t>(length);
    rw.max_length = static_cast<size_t>(length);
    const Dataset dataset = GenerateRandomWalkDataset(rw);

    FeatureIndexOptions incremental;
    incremental.bulk_load = false;
    WallTimer t1;
    const FeatureIndex a(dataset, incremental);
    const double insert_ms = t1.ElapsedMillis();

    FeatureIndexOptions bulk;
    bulk.bulk_load = true;
    WallTimer t2;
    const FeatureIndex b(dataset, bulk);
    const double bulk_ms = t2.ElapsedMillis();

    // Query cost comparison: node accesses for the same range queries.
    uint64_t nodes_a = 0;
    uint64_t nodes_b = 0;
    for (size_t qi = 0; qi < 20; ++qi) {
      const FeatureVector qf =
          ExtractFeature(dataset[qi * 31 % dataset.size()]);
      RTreeQueryStats sa;
      RTreeQueryStats sb;
      a.RangeQuery(qf, 0.1, &sa);
      b.RangeQuery(qf, 0.1, &sb);
      nodes_a += sa.nodes_accessed;
      nodes_b += sb.nodes_accessed;
    }
    table.PrintRow(
        {std::to_string(n), bench::FormatDouble(insert_ms, 1),
         bench::FormatDouble(bulk_ms, 1),
         bench::FormatDouble(insert_ms / bulk_ms, 1),
         std::to_string(a.rtree().node_count()),
         std::to_string(b.rtree().node_count()), std::to_string(nodes_a),
         std::to_string(nodes_b)});
  }
  std::printf(
      "\nexpected shape: bulk loading builds several times faster (gap "
      "growing with N) with ~30%% fewer nodes and no worse query node "
      "counts.\n");
  return 0;
}

}  // namespace
}  // namespace warpindex

int main(int argc, char** argv) { return warpindex::Run(argc, argv); }
