// Sharded scatter-gather: throughput and latency vs shard count.
//
// Builds a CLUSTERED walk corpus (--clusters feature-space clusters, far
// apart), shards it with each partitioner, and runs the same workloads at
// every shard count:
//
//   * range mode — a QueryExecutor batch of epsilon range queries, the
//     shard fan-out sharing the executor's pool;
//   * knn mode — sequential k-NN queries (the per-query shard fan-out is
//     the parallelism), with the shared epsilon-shrinking bound active.
//
// `avg_skipped` reports how many shards per query the feature-MBR filter
// pruned without touching: queries are perturbed copies of database
// sequences, hence cluster-local, so the RANGE partitioner should skip
// most non-home shards (>= 1 once K > clusters' worth of spread) while
// HASH skips none — the measurable payoff of partitioning by feature
// locality. Answers are identical either way (see docs/SHARDING.md).
//
// With --metrics_json each row is also written as a JSON line:
//   {"bench":"micro_shard","mode":"range","partition":"range",
//    "shards":4,"qps":...,"p50_ms":...,"p99_ms":...,"avg_skipped":...}

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "common/flags.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "exec/query_executor.h"
#include "sequence/random_walk_generator.h"
#include "shard/sharded_engine.h"

namespace warpindex {
namespace {

// `num_clusters` groups of walks whose start levels sit ~50 apart: far
// enough that an epsilon of O(1) can never bridge clusters, so a
// cluster-local query feature point is far (L_inf) from every other
// cluster's shard MBR under the range partitioner.
Dataset ClusteredDataset(size_t num_sequences, size_t length,
                         size_t num_clusters) {
  Dataset dataset;
  for (size_t c = 0; c < num_clusters; ++c) {
    RandomWalkOptions rw;
    rw.num_sequences = num_sequences / num_clusters;
    rw.min_length = length;
    rw.max_length = length;
    rw.start_min = 50.0 * static_cast<double>(c);
    rw.start_max = 50.0 * static_cast<double>(c) + 5.0;
    rw.seed = 42 + c;
    const Dataset cluster = GenerateRandomWalkDataset(rw);
    for (size_t i = 0; i < cluster.size(); ++i) {
      dataset.Add(cluster[i]);
    }
  }
  return dataset;
}

struct ModeRow {
  double qps = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double avg_skipped = 0.0;
};

int Run(int argc, char** argv) {
  int64_t num_sequences = 2000;
  int64_t length = 128;
  int64_t num_clusters = 4;
  int64_t num_queries = 128;
  double eps = 0.2;
  int64_t knn_k = 10;
  int64_t threads = 4;
  std::string shard_list = "1,2,4,8";
  std::string metrics_json;

  FlagSet flags("micro_shard");
  flags.AddInt64("n", &num_sequences, "number of sequences");
  flags.AddInt64("len", &length, "sequence length");
  flags.AddInt64("clusters", &num_clusters,
                 "feature-space clusters in the corpus");
  flags.AddInt64("queries", &num_queries, "queries per workload");
  flags.AddDouble("eps", &eps, "range-query tolerance");
  flags.AddInt64("k", &knn_k, "neighbors per k-NN query");
  flags.AddInt64("threads", &threads, "executor worker threads");
  flags.AddString("shards", &shard_list, "shard counts to sweep");
  flags.AddString("metrics_json", &metrics_json,
                  "also write one JSON line per row to this file");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  const Dataset dataset = ClusteredDataset(
      static_cast<size_t>(num_sequences), static_cast<size_t>(length),
      static_cast<size_t>(num_clusters));
  const auto queries = GenerateQueryWorkload(
      dataset,
      QueryWorkloadOptions{.num_queries = static_cast<size_t>(num_queries)});
  std::vector<QueryRequest> requests;
  requests.reserve(queries.size());
  for (const Sequence& q : queries) {
    requests.push_back(QueryRequest{MethodKind::kTwSimSearch, q, eps});
  }

  bench::PrintPreamble(
      "Micro: sharded scatter-gather vs shard count",
      "partitioned feature indexes; answers identical at every K",
      std::to_string(num_sequences) + " walks of length " +
          std::to_string(length) + " in " + std::to_string(num_clusters) +
          " clusters, " + std::to_string(num_queries) +
          " queries, eps=" + bench::FormatDouble(eps, 2) +
          ", k=" + std::to_string(knn_k));

  std::FILE* json = nullptr;
  if (!metrics_json.empty()) {
    json = std::fopen(metrics_json.c_str(), "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", metrics_json.c_str());
      return 1;
    }
  }

  TablePrinter table(
      stdout, {"partition", "shards", "mode", "qps", "p50_ms", "p99_ms",
               "avg_skipped"});
  table.PrintHeader();
  for (const PartitionerKind partitioner :
       {PartitionerKind::kHash, PartitionerKind::kRange}) {
    for (const int64_t num_shards : bench::ParseIntList(shard_list)) {
      ShardedEngineOptions options;
      options.num_shards = static_cast<size_t>(num_shards);
      options.partitioner = partitioner;
      ShardedEngine sharded(Dataset(dataset.sequences()), options);
      QueryExecutorOptions executor_options;
      executor_options.num_threads = static_cast<size_t>(threads);
      QueryExecutor executor(&sharded, executor_options);
      sharded.AttachPool(&executor.pool());

      // Range mode: executor batch (inter-query + shard fan-out).
      executor.SubmitBatch(requests);  // warm-up
      const uint64_t skipped_before_range =
          sharded.TakeHealthSnapshot().shards_skipped_total;
      const BatchResult batch = executor.SubmitBatch(requests);
      ModeRow range_row;
      range_row.qps = batch.queries_per_sec;
      std::vector<double> latencies;
      for (const SearchResult& result : batch.results) {
        latencies.push_back(result.cost.wall_ms);
      }
      range_row.p50 = Percentile(latencies, 0.5);
      range_row.p99 = Percentile(latencies, 0.99);
      range_row.avg_skipped =
          static_cast<double>(sharded.TakeHealthSnapshot()
                                  .shards_skipped_total -
                              skipped_before_range) /
          static_cast<double>(requests.size());

      // kNN mode: sequential queries, per-query fan-out on the pool.
      ModeRow knn_row;
      {
        latencies.clear();
        WallTimer timer;
        for (const Sequence& q : queries) {
          WallTimer per_query;
          (void)sharded.SearchKnn(q, static_cast<size_t>(knn_k));
          latencies.push_back(per_query.ElapsedMillis());
        }
        const double wall_ms = timer.ElapsedMillis();
        knn_row.qps = wall_ms > 0.0
                          ? 1e3 * static_cast<double>(queries.size()) /
                                wall_ms
                          : 0.0;
        knn_row.p50 = Percentile(latencies, 0.5);
        knn_row.p99 = Percentile(latencies, 0.99);
        knn_row.avg_skipped = 0.0;  // kNN prunes via the shared bound
      }

      const struct {
        const char* mode;
        const ModeRow& row;
      } rows[] = {{"range", range_row}, {"knn", knn_row}};
      for (const auto& entry : rows) {
        table.PrintRow({PartitionerKindName(partitioner),
                        std::to_string(num_shards), entry.mode,
                        bench::FormatDouble(entry.row.qps, 1),
                        bench::FormatDouble(entry.row.p50, 3),
                        bench::FormatDouble(entry.row.p99, 3),
                        bench::FormatDouble(entry.row.avg_skipped, 2)});
        if (json != nullptr) {
          std::fprintf(
              json,
              "{\"bench\":\"micro_shard\",\"mode\":\"%s\","
              "\"partition\":\"%s\",\"shards\":%lld,\"threads\":%lld,"
              "\"qps\":%.3f,\"p50_ms\":%.5f,\"p99_ms\":%.5f,"
              "\"avg_skipped\":%.3f}\n",
              entry.mode, PartitionerKindName(partitioner),
              static_cast<long long>(num_shards),
              static_cast<long long>(threads), entry.row.qps, entry.row.p50,
              entry.row.p99, entry.row.avg_skipped);
        }
      }
    }
  }
  if (json != nullptr) {
    std::fclose(json);
    std::printf("\nwrote JSON lines to %s\n", metrics_json.c_str());
  }
  std::printf(
      "\nexpected shape: with partition=range and K >= the cluster count, "
      "avg_skipped approaches K minus K/clusters (cluster-local queries "
      "prune every foreign cluster's shards); hash skips ~0 and pays full "
      "fan-out. p50 falls with K while the fan-out/merge overhead is "
      "amortized, then flattens once shards outnumber workers.\n");
  return 0;
}

}  // namespace
}  // namespace warpindex

int main(int argc, char** argv) { return warpindex::Run(argc, argv); }
