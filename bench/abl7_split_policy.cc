// Ablation A7: R-tree split policy (linear / quadratic / R*), with and
// without R*-style forced reinsertion, on the 4-d feature workload.
//
// The paper picks the classic Guttman R-tree (§5.1) and notes any
// multi-dimensional index works (§4.3.1); this quantifies the choice.

#include <cstdio>

#include "common/bench_util.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/feature_index.h"
#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

int Run(int argc, char** argv) {
  int64_t num_sequences = 20000;
  int64_t length = 64;
  double eps = 0.1;

  FlagSet flags("abl7_split_policy");
  flags.AddInt64("n", &num_sequences, "number of sequences");
  flags.AddInt64("len", &length, "sequence length");
  flags.AddDouble("eps", &eps, "tolerance");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  RandomWalkOptions rw;
  rw.num_sequences = static_cast<size_t>(num_sequences);
  rw.min_length = static_cast<size_t>(length);
  rw.max_length = static_cast<size_t>(length);
  const Dataset dataset = GenerateRandomWalkDataset(rw);

  bench::PrintPreamble(
      "Ablation A7: R-tree split policy on the feature index",
      "Kim/Park/Chu ICDE'01 §4.3.1 ('any multi-dimensional index can be "
      "used')",
      std::to_string(num_sequences) + " feature points, eps=" +
          bench::FormatDouble(eps, 2));

  struct Config {
    const char* name;
    SplitPolicy policy;
    bool reinsert;
    bool supernodes;
  };
  const Config configs[] = {
      {"linear", SplitPolicy::kLinear, false, false},
      {"quadratic", SplitPolicy::kQuadratic, false, false},
      {"rstar", SplitPolicy::kRStar, false, false},
      {"rstar+reinsert", SplitPolicy::kRStar, true, false},
      {"xtree(supernode)", SplitPolicy::kRStar, false, true},
  };

  TablePrinter table(stdout, {"policy", "build_ms", "nodes",
                              "query_nodes_per_query"});
  table.PrintHeader();
  for (const Config& config : configs) {
    FeatureIndexOptions options;
    options.bulk_load = false;  // splits only matter for insertion builds
    options.rtree.split_policy = config.policy;
    options.rtree.forced_reinsert = config.reinsert;
    options.rtree.allow_supernodes = config.supernodes;
    WallTimer timer;
    const FeatureIndex index(dataset, options);
    const double build_ms = timer.ElapsedMillis();

    uint64_t query_nodes = 0;
    const size_t num_queries = 50;
    for (size_t qi = 0; qi < num_queries; ++qi) {
      RTreeQueryStats stats;
      index.RangeQuery(
          ExtractFeature(dataset[qi * 101 % dataset.size()]), eps, &stats);
      query_nodes += stats.nodes_accessed;
    }
    table.PrintRow({config.name, bench::FormatDouble(build_ms, 1),
                    std::to_string(index.rtree().node_count()),
                    bench::FormatDouble(static_cast<double>(query_nodes) /
                                            static_cast<double>(num_queries),
                                        1)});
  }
  std::printf(
      "\nexpected shape: R* (+reinsert) queries best at the highest build "
      "cost; linear queries worst; quadratic (the paper's choice) gets "
      "near-R* queries at near-linear build cost.\n");
  return 0;
}

}  // namespace
}  // namespace warpindex

int main(int argc, char** argv) { return warpindex::Run(argc, argv); }
