// IngestEngine mechanics: delta-shard log semantics, id assignment and
// delete edge cases, compaction triggers and the background compactor,
// range-cut rebalancing, persistence (including re-opening a compacted
// directory with the read-only ShardedEngine), health snapshots, and the
// warpindex_ingest_* metrics.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "exec/thread_pool.h"
#include "ingest/delta_shard.h"
#include "ingest/ingest_engine.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"
#include "shard/sharded_engine.h"

namespace warpindex {
namespace {

Dataset WalkDataset(uint64_t seed = 11, size_t n = 50) {
  RandomWalkOptions options;
  options.num_sequences = n;
  options.min_length = 20;
  options.max_length = 40;
  options.seed = seed;
  return GenerateRandomWalkDataset(options);
}

std::string TempDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

DeltaEntry MakeEntry(SequenceId id, double value) {
  Sequence s(std::vector<double>(8, value));
  s.set_id(id);
  DeltaEntry entry;
  entry.id = id;
  entry.feature = ExtractFeature(s);
  entry.sequence = std::make_shared<const Sequence>(std::move(s));
  entry.appended_ms = 0.0;
  return entry;
}

TEST(DeltaShardTest, SnapshotHidesTombstonedEntries) {
  DeltaShard delta;
  delta.Append(MakeEntry(10, 1.0));
  delta.Append(MakeEntry(11, 2.0));
  EXPECT_EQ(delta.MarkDead(10, false), DeltaShard::DeadMark::kMarked);
  EXPECT_EQ(delta.MarkDead(10, false), DeltaShard::DeadMark::kAlreadyDead);
  EXPECT_EQ(delta.MarkDead(99, false), DeltaShard::DeadMark::kUnknown);
  EXPECT_EQ(delta.MarkDead(7, true), DeltaShard::DeadMark::kMarked);

  const DeltaShard::Snapshot snap = delta.TakeSnapshot();
  ASSERT_EQ(snap.entries.size(), 1u);  // #10 hidden, #11 visible
  EXPECT_EQ(snap.entries[0].id, 11);
  EXPECT_EQ(snap.dead, (std::vector<SequenceId>{7, 10}));
}

TEST(DeltaShardTest, ApplyCompactionKeepsPostFreezeWrites) {
  DeltaShard delta;
  delta.Append(MakeEntry(0, 1.0));
  delta.Append(MakeEntry(1, 2.0));
  EXPECT_EQ(delta.MarkDead(0, false), DeltaShard::DeadMark::kMarked);

  const DeltaShard::Frozen frozen = delta.Freeze();
  EXPECT_EQ(frozen.entry_count, 2u);
  EXPECT_EQ(frozen.dead, (std::vector<SequenceId>{0}));

  // Writes racing the merge land after the frozen prefix: a brand-new
  // entry, and a tombstone for frozen entry #1 (which the merge is
  // about to move into the rebuilt base).
  delta.Append(MakeEntry(2, 3.0));
  EXPECT_EQ(delta.MarkDead(1, false), DeltaShard::DeadMark::kMarked);
  EXPECT_EQ(delta.MarkDead(2, false), DeltaShard::DeadMark::kMarked);

  // …and survive the compaction verbatim: only the frozen prefix and
  // the frozen tombstone {0} are consumed. #1's post-freeze tombstone
  // stays, filtering the new base where #1 now lives.
  delta.ApplyCompaction(frozen);
  const DeltaShard::Stats stats = delta.TakeStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.dead, 2u);
  const DeltaShard::Snapshot snap = delta.TakeSnapshot();
  EXPECT_TRUE(snap.entries.empty());  // #2 is buffered but tombstoned
  EXPECT_EQ(snap.dead, (std::vector<SequenceId>{1, 2}));
}

IngestOptions ManualCompaction(size_t shards,
                               PartitionerKind kind = PartitionerKind::kHash) {
  IngestOptions options;
  options.num_shards = shards;
  options.partitioner = kind;
  options.start_compactor = false;
  return options;
}

TEST(IngestEngineTest, InsertAssignsContiguousIdsAndRoutesStably) {
  IngestEngine ingest(WalkDataset(), ManualCompaction(3));
  EXPECT_EQ(ingest.id_space(), 50u);
  EXPECT_EQ(ingest.live_size(), 50u);
  const SequenceId a = ingest.Insert(Sequence({1.0, 2.0, 3.0}));
  const SequenceId b = ingest.Insert(Sequence({4.0, 5.0, 6.0}));
  EXPECT_EQ(a, 50);
  EXPECT_EQ(b, 51);
  EXPECT_EQ(ingest.id_space(), 52u);
  EXPECT_EQ(ingest.live_size(), 52u);

  // An exact-copy query finds the new row wherever it was routed.
  const SearchResult hit = ingest.Search(Sequence({1.0, 2.0, 3.0}), 0.0);
  ASSERT_EQ(hit.matches.size(), 1u);
  EXPECT_EQ(hit.matches[0], a);
}

TEST(IngestEngineTest, DeleteEdgeCases) {
  IngestEngine ingest(WalkDataset(), ManualCompaction(2));
  EXPECT_FALSE(ingest.Delete(-1));
  EXPECT_FALSE(ingest.Delete(999));   // beyond the id space
  EXPECT_TRUE(ingest.Delete(7));      // base row
  EXPECT_FALSE(ingest.Delete(7));     // double delete
  const SequenceId id = ingest.Insert(Sequence({9.0, 9.0, 9.0}));
  EXPECT_TRUE(ingest.Delete(id));     // buffered insert
  EXPECT_FALSE(ingest.Delete(id));
  EXPECT_EQ(ingest.live_size(), 49u);

  // Deleted rows stay deleted across compaction (tombstones consumed).
  EXPECT_GE(ingest.CompactAll(), 1u);
  EXPECT_FALSE(ingest.Delete(7));
  EXPECT_FALSE(ingest.Delete(id));
  EXPECT_TRUE(ingest.Search(Sequence({9.0, 9.0, 9.0}), 0.0).matches.empty());
}

TEST(IngestEngineTest, CompactShardSwapsEpochAndEmptiesDelta) {
  IngestEngine ingest(WalkDataset(), ManualCompaction(1));
  EXPECT_FALSE(ingest.CompactShard(0));  // nothing buffered
  EXPECT_EQ(ingest.CurrentView()->epoch, 0u);

  const SequenceId id = ingest.Insert(Sequence({5.0, 6.0, 7.0}));
  ASSERT_TRUE(ingest.ShouldCompact(0) ||
              ingest.DeltaStats(0).entries == 1u);
  EXPECT_TRUE(ingest.CompactShard(0));
  EXPECT_EQ(ingest.CurrentView()->epoch, 1u);
  EXPECT_EQ(ingest.DeltaStats(0).entries, 0u);

  // The row now serves from the rebuilt base.
  const IngestEngine::Health health = ingest.TakeHealthSnapshot();
  EXPECT_EQ(health.shards[0].base_sequences, 51u);
  EXPECT_EQ(health.compactions_total, 1u);
  const SearchResult hit = ingest.Search(Sequence({5.0, 6.0, 7.0}), 0.0);
  ASSERT_EQ(hit.matches.size(), 1u);
  EXPECT_EQ(hit.matches[0], id);
}

TEST(IngestEngineTest, ShouldCompactTriggers) {
  IngestOptions options = ManualCompaction(1);
  options.compact_max_delta_entries = 3;
  options.compact_max_tombstones = 2;
  IngestEngine ingest(WalkDataset(), options);
  EXPECT_FALSE(ingest.ShouldCompact(0));

  ingest.Insert(Sequence({1.0}));
  ingest.Insert(Sequence({2.0}));
  EXPECT_FALSE(ingest.ShouldCompact(0));
  ingest.Insert(Sequence({3.0}));
  EXPECT_TRUE(ingest.ShouldCompact(0)) << "entry threshold";
  ingest.CompactAll();
  EXPECT_FALSE(ingest.ShouldCompact(0));

  ASSERT_TRUE(ingest.Delete(0));
  EXPECT_FALSE(ingest.ShouldCompact(0));
  ASSERT_TRUE(ingest.Delete(1));
  EXPECT_TRUE(ingest.ShouldCompact(0)) << "tombstone threshold";
}

TEST(IngestEngineTest, AgeTriggerFiresOnOldEntries) {
  IngestOptions options = ManualCompaction(1);
  options.compact_max_delta_age_ms = 5.0;
  IngestEngine ingest(WalkDataset(), options);
  EXPECT_FALSE(ingest.ShouldCompact(0));  // age alone never fires empty
  ingest.Insert(Sequence({1.0}));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(ingest.ShouldCompact(0));
}

TEST(IngestEngineTest, BackgroundCompactorDrainsTheBacklog) {
  IngestOptions options;
  options.num_shards = 2;
  options.start_compactor = true;
  options.compact_max_delta_entries = 8;
  options.compact_poll_ms = 2.0;
  IngestEngine ingest(WalkDataset(), options);
  ThreadPool pool(2);
  ingest.AttachPool(&pool);

  const Dataset extra = WalkDataset(77, 40);
  for (const Sequence& s : extra.sequences()) {
    ingest.Insert(s);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  IngestEngine::Health health = ingest.TakeHealthSnapshot();
  while ((health.compactions_total == 0 || health.compaction_backlog > 0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    health = ingest.TakeHealthSnapshot();
  }
  EXPECT_GE(health.compactions_total, 1u);
  EXPECT_EQ(health.compaction_backlog, 0u);
  EXPECT_EQ(ingest.live_size(), 90u);
}

TEST(IngestEngineTest, RangeCutsRebalanceWhenAShardOutgrows) {
  IngestOptions options = ManualCompaction(2, PartitionerKind::kRange);
  options.rebalance_factor = 1.5;
  IngestEngine ingest(WalkDataset(11, 20), options);

  // Skew every insert toward one end of the key space so one range
  // shard absorbs the bulk of the stream.
  for (int i = 0; i < 100; ++i) {
    ingest.Insert(Sequence(std::vector<double>(10, 1000.0 + i)));
  }
  ingest.CompactAll();
  const IngestEngine::Health health = ingest.TakeHealthSnapshot();
  EXPECT_GE(health.cut_rebalances_total, 1u)
      << "the skewed stream must have moved a cut point";
  // Routing changes never change answers: the skewed rows remain
  // findable by exact-copy queries.
  const SearchResult hit =
      ingest.Search(Sequence(std::vector<double>(10, 1030.0)), 0.0);
  ASSERT_EQ(hit.matches.size(), 1u);
}

TEST(IngestEngineTest, SaveOpenRoundTripServesIdentically) {
  const std::string dir = TempDir("ingest_roundtrip");
  const Dataset base = WalkDataset(21, 40);
  IngestOptions options = ManualCompaction(3);
  IngestEngine original(WalkDataset(21, 40), options);
  const Dataset extra = WalkDataset(22, 15);
  for (const Sequence& s : extra.sequences()) {
    original.Insert(s);
  }
  ASSERT_TRUE(original.Delete(5));
  ASSERT_TRUE(original.Delete(44));
  ASSERT_TRUE(original.Save(dir).ok());  // compacts, then persists

  const auto queries = GenerateQueryWorkload(
      base, QueryWorkloadOptions{.num_queries = 6, .seed = 23});

  std::unique_ptr<IngestEngine> reopened;
  ASSERT_TRUE(IngestEngine::Open(dir, options, &reopened).ok());
  EXPECT_EQ(reopened->live_size(), original.live_size());
  EXPECT_EQ(reopened->id_space(), original.id_space());
  for (const Sequence& q : queries) {
    EXPECT_EQ(reopened->Search(q, 0.25).matches,
              original.Search(q, 0.25).matches);
    const KnnResult a = original.SearchKnn(q, 5);
    const KnnResult b = reopened->SearchKnn(q, 5);
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
    for (size_t i = 0; i < a.neighbors.size(); ++i) {
      EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id);
    }
  }

  // A reopened engine accepts new writes and keeps the id space: the
  // next id continues after the saved one (dropped ids never reused).
  const SequenceId next = reopened->Insert(Sequence({2.0, 4.0, 6.0}));
  EXPECT_EQ(static_cast<size_t>(next), original.id_space());

  // The compacted directory is a valid read-only ShardedEngine too
  // (manifest v2: dropped-id sentinels + range cuts).
  ShardedEngineOptions sharded_options;
  sharded_options.num_shards = 3;
  std::unique_ptr<ShardedEngine> sharded;
  ASSERT_TRUE(ShardedEngine::Open(dir, sharded_options, &sharded).ok());
  for (const Sequence& q : queries) {
    EXPECT_EQ(sharded->Search(q, 0.25).matches,
              original.Search(q, 0.25).matches);
  }
  std::filesystem::remove_all(dir);
}

TEST(IngestEngineTest, OpenRejectsTopologyMismatch) {
  const std::string dir = TempDir("ingest_mismatch");
  IngestEngine original(WalkDataset(31, 20), ManualCompaction(2));
  ASSERT_TRUE(original.Save(dir).ok());
  std::unique_ptr<IngestEngine> reopened;
  EXPECT_FALSE(IngestEngine::Open(dir, ManualCompaction(4), &reopened).ok());
  std::filesystem::remove_all(dir);
}

uint64_t CounterValue(const MetricsRegistry::Snapshot& snap,
                      const std::string& name) {
  for (const auto& entry : snap.counters) {
    if (entry.name == name) {
      return entry.value;
    }
  }
  ADD_FAILURE() << "no counter named " << name;
  return 0;
}

int64_t GaugeValue(const MetricsRegistry::Snapshot& snap,
                   const std::string& name) {
  for (const auto& entry : snap.gauges) {
    if (entry.name == name) {
      return entry.value;
    }
  }
  ADD_FAILURE() << "no gauge named " << name;
  return 0;
}

TEST(IngestEngineTest, MetricsAndHealthReflectWrites) {
  IngestOptions options = ManualCompaction(2);
  MetricsRegistry registry;
  options.engine.metrics = &registry;
  IngestEngine ingest(WalkDataset(41, 30), options);

  ingest.Insert(Sequence({1.0, 2.0}));
  ingest.Insert(Sequence({3.0, 4.0}));
  ASSERT_TRUE(ingest.Delete(0));
  const MetricsRegistry::Snapshot before = registry.TakeSnapshot();
  EXPECT_EQ(CounterValue(before, "warpindex_ingest_inserts_total"), 2u);
  EXPECT_EQ(CounterValue(before, "warpindex_ingest_deletes_total"), 1u);
  EXPECT_EQ(GaugeValue(before, "warpindex_ingest_delta_entries"), 2);

  ingest.CompactAll();
  const MetricsRegistry::Snapshot after = registry.TakeSnapshot();
  EXPECT_GE(CounterValue(after, "warpindex_ingest_compactions_total"), 1u);
  EXPECT_EQ(GaugeValue(after, "warpindex_ingest_delta_entries"), 0);
  EXPECT_EQ(GaugeValue(after, "warpindex_ingest_delta_entries_shard0"), 0);

  const IngestEngine::Health health = ingest.TakeHealthSnapshot();
  EXPECT_EQ(health.num_shards, 2u);
  EXPECT_EQ(health.inserts_total, 2u);
  EXPECT_EQ(health.deletes_total, 1u);
  EXPECT_EQ(health.live_sequences, 31u);
  EXPECT_EQ(health.id_space, 32u);
  ASSERT_EQ(health.shards.size(), 2u);
  size_t base_rows = 0;
  for (const IngestEngine::ShardStatus& shard : health.shards) {
    base_rows += shard.base_sequences;
    EXPECT_EQ(shard.delta_entries, 0u);
    EXPECT_EQ(shard.tombstones, 0u);
  }
  EXPECT_EQ(base_rows, 31u);
}

}  // namespace
}  // namespace warpindex
