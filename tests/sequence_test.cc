#include "sequence/sequence.h"

#include <gtest/gtest.h>

namespace warpindex {
namespace {

TEST(SequenceTest, EmptySequence) {
  Sequence s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.id(), kInvalidSequenceId);
}

TEST(SequenceTest, AccessorsMatchPaperNotation) {
  const Sequence s({20, 21, 21, 20, 20, 23, 23, 23});
  EXPECT_EQ(s.size(), 8u);
  EXPECT_EQ(s.First(), 20.0);
  EXPECT_EQ(s.Last(), 23.0);
  EXPECT_EQ(s.Greatest(), 23.0);
  EXPECT_EQ(s.Smallest(), 20.0);
  EXPECT_EQ(s[1], 21.0);
}

TEST(SequenceTest, MeanAndStdDev) {
  const Sequence s({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.StdDev(), 2.0, 1e-12);
}

TEST(SequenceTest, AppendAndReserve) {
  Sequence s;
  s.Reserve(3);
  s.Append(1.0);
  s.Append(2.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.Last(), 2.0);
}

TEST(SequenceTest, SliceExtractsWindow) {
  const Sequence s({0, 1, 2, 3, 4, 5});
  const Sequence w = s.Slice(2, 3);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0], 2.0);
  EXPECT_EQ(w[2], 4.0);
}

TEST(SequenceTest, SliceFullAndSingle) {
  const Sequence s({7, 8, 9});
  EXPECT_EQ(s.Slice(0, 3), s);
  const Sequence one = s.Slice(1, 1);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 8.0);
}

TEST(SequenceTest, EqualityComparesElementsNotIds) {
  Sequence a({1, 2, 3});
  Sequence b({1, 2, 3});
  b.set_id(99);
  EXPECT_EQ(a, b);
  const Sequence c({1, 2, 4});
  EXPECT_FALSE(a == c);
}

TEST(SequenceTest, IdRoundTrip) {
  Sequence s({1.0});
  s.set_id(17);
  EXPECT_EQ(s.id(), 17);
}

TEST(SequenceTest, ToStringTruncates) {
  const Sequence s({1, 2, 3, 4, 5});
  EXPECT_EQ(s.ToString(), "<1, 2, 3, 4, 5>");
  const std::string truncated = s.ToString(2);
  EXPECT_NE(truncated.find("<1, 2, ..."), std::string::npos);
  EXPECT_NE(truncated.find("5 elements"), std::string::npos);
}

}  // namespace
}  // namespace warpindex
