#include "exec/query_executor.h"

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

Dataset TestDataset() {
  RandomWalkOptions options;
  options.num_sequences = 60;
  options.min_length = 20;
  options.max_length = 48;
  options.seed = 11;
  return GenerateRandomWalkDataset(options);
}

EngineOptions TestEngineOptions() {
  EngineOptions options;
  options.build_st_filter = true;  // so kStFilter is exercised too
  return options;
}

std::vector<Sequence> TestQueries(const Engine& engine, size_t n) {
  QueryWorkloadOptions options;
  options.num_queries = n;
  options.seed = 23;
  return GenerateQueryWorkload(engine.dataset(), options);
}

// Everything about an answer that must not depend on scheduling. Pool
// hit/miss counts are excluded on purpose: with a shared LRU pool the
// cache state a query observes depends on which queries ran before it.
struct AnswerKey {
  std::vector<SequenceId> matches;
  size_t num_candidates;
  uint64_t dtw_cells;

  explicit AnswerKey(const SearchResult& r)
      : matches(r.matches),
        num_candidates(r.num_candidates),
        dtw_cells(r.cost.dtw_cells) {}

  bool operator==(const AnswerKey& other) const {
    return matches == other.matches &&
           num_candidates == other.num_candidates &&
           dtw_cells == other.dtw_cells;
  }
};

// The acceptance-criterion test: a batch executed over >= 4 threads is
// answer-identical to running the same queries sequentially, for all four
// methods. Run it under TSan in CI to also certify the read path is
// race-free.
TEST(QueryExecutorTest, BatchOverFourThreadsMatchesSequential) {
  const Engine engine(TestDataset(), TestEngineOptions());
  const std::vector<Sequence> queries = TestQueries(engine, 12);
  const double epsilon = 0.25;

  const MethodKind kinds[] = {MethodKind::kTwSimSearch,
                              MethodKind::kNaiveScan, MethodKind::kLbScan,
                              MethodKind::kStFilter};
  std::vector<QueryRequest> requests;
  std::vector<AnswerKey> expected;
  for (MethodKind kind : kinds) {
    for (const Sequence& q : queries) {
      requests.push_back(QueryRequest{kind, q, epsilon});
      expected.emplace_back(engine.SearchWith(kind, q, epsilon));
    }
  }

  QueryExecutorOptions options;
  options.num_threads = 4;
  QueryExecutor executor(&engine, options);
  const BatchResult batch = executor.SubmitBatch(requests);

  ASSERT_EQ(batch.results.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_TRUE(AnswerKey(batch.results[i]) == expected[i])
        << "request " << i << " ("
        << MethodKindName(requests[i].method) << ") diverged";
  }
  EXPECT_GT(batch.queries_per_sec, 0.0);
}

TEST(QueryExecutorTest, RepeatedBatchesAreIdenticalToEachOther) {
  const Engine engine(TestDataset(), TestEngineOptions());
  const std::vector<Sequence> queries = TestQueries(engine, 10);
  std::vector<QueryRequest> requests;
  for (const Sequence& q : queries) {
    requests.push_back(QueryRequest{MethodKind::kTwSimSearch, q, 0.3});
  }
  QueryExecutorOptions options;
  options.num_threads = 4;
  QueryExecutor executor(&engine, options);
  const BatchResult a = executor.SubmitBatch(requests);
  const BatchResult b = executor.SubmitBatch(requests);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_TRUE(AnswerKey(a.results[i]) == AnswerKey(b.results[i]));
  }
}

TEST(QueryExecutorTest, SubmitReturnsFutureWithResult) {
  const Engine engine(TestDataset(), TestEngineOptions());
  QueryExecutorOptions options;
  options.num_threads = 2;
  QueryExecutor executor(&engine, options);
  const Sequence q = engine.dataset()[3];
  std::future<SearchResult> f =
      executor.Submit(MethodKind::kTwSimSearch, q, 0.3);
  const SearchResult result = f.get();
  const SearchResult expected =
      engine.SearchWith(MethodKind::kTwSimSearch, q, 0.3);
  EXPECT_TRUE(AnswerKey(result) == AnswerKey(expected));
  // A perturbed copy of sequence 3 should still match sequence 3.
  EXPECT_NE(std::find(result.matches.begin(), result.matches.end(), 3),
            result.matches.end());
}

TEST(QueryExecutorTest, SearchParallelMatchesSequentialSearch) {
  const Engine engine(TestDataset(), EngineOptions{});
  // Small chunks force many chunks, so the fan-out path really runs.
  QueryExecutorOptions options;
  options.num_threads = 4;
  options.postfilter_chunk = 2;
  QueryExecutor executor(&engine, options);
  for (const Sequence& q : TestQueries(engine, 8)) {
    const SearchResult expected = engine.Search(q, 0.4);
    const SearchResult parallel = executor.SearchParallel(q, 0.4);
    EXPECT_TRUE(AnswerKey(parallel) == AnswerKey(expected));
  }
}

TEST(QueryExecutorTest, SearchParallelFromInsidePoolTaskDoesNotDeadlock) {
  const Engine engine(TestDataset(), EngineOptions{});
  QueryExecutorOptions options;
  options.num_threads = 1;  // no idle workers to lean on
  options.postfilter_chunk = 1;
  QueryExecutor executor(&engine, options);
  const Sequence q = engine.dataset()[5];
  std::future<SearchResult> f = executor.pool().Submit(
      [&executor, &q]() { return executor.SearchParallel(q, 0.4); });
  const SearchResult parallel = f.get();
  EXPECT_TRUE(AnswerKey(parallel) == AnswerKey(engine.Search(q, 0.4)));
}

TEST(QueryExecutorTest, BatchCollectsPerQueryTraces) {
  const Engine engine(TestDataset(), EngineOptions{});
  std::vector<QueryRequest> requests;
  for (const Sequence& q : TestQueries(engine, 6)) {
    requests.push_back(QueryRequest{MethodKind::kTwSimSearch, q, 0.3});
  }
  QueryExecutorOptions options;
  options.num_threads = 3;
  QueryExecutor executor(&engine, options);
  BatchOptions batch_options;
  batch_options.collect_traces = true;
  const BatchResult batch = executor.SubmitBatch(requests, batch_options);
  ASSERT_EQ(batch.traces.size(), requests.size());
  for (const Trace& trace : batch.traces) {
    EXPECT_EQ(trace.open_depth(), 0u);
    ASSERT_FALSE(trace.spans().empty());
    EXPECT_EQ(trace.spans()[0].name, "query");
    EXPECT_GT(trace.TotalMillis("dtw_postfilter"), 0.0);
  }
}

TEST(QueryExecutorTest, ExecutorMetricsAreRegistered) {
  // Own registry: the default is process-global and other tests in this
  // binary would pollute the counts.
  MetricsRegistry registry;
  EngineOptions engine_options;
  engine_options.metrics = &registry;
  const Engine engine(TestDataset(), engine_options);
  std::vector<QueryRequest> requests;
  for (const Sequence& q : TestQueries(engine, 5)) {
    requests.push_back(QueryRequest{MethodKind::kLbScan, q, 0.3});
  }
  QueryExecutorOptions options;
  options.num_threads = 2;
  QueryExecutor executor(&engine, options);
  executor.SubmitBatch(requests);

  const MetricsRegistry::Snapshot snapshot = engine.MetricsSnapshot();
  uint64_t queries = 0;
  bool saw_batches = false;
  for (const auto& counter : snapshot.counters) {
    if (counter.name == "warpindex_exec_queries_total") {
      queries = counter.value;
    }
    if (counter.name == "warpindex_exec_batches_total") {
      saw_batches = true;
      EXPECT_EQ(counter.value, 1u);
    }
  }
  EXPECT_EQ(queries, 5u);
  EXPECT_TRUE(saw_batches);

  bool saw_inflight = false;
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == "warpindex_exec_inflight_queries") {
      saw_inflight = true;
      EXPECT_EQ(gauge.value, 0);  // batch drained
    }
  }
  EXPECT_TRUE(saw_inflight);

  bool saw_queue_wait = false;
  for (const auto& histogram : snapshot.histograms) {
    if (histogram.name == "warpindex_exec_queue_wait_ms") {
      saw_queue_wait = true;
      EXPECT_EQ(histogram.snapshot.stats.count(), 5u);
    }
  }
  EXPECT_TRUE(saw_queue_wait);
}

// Satellite regression: per-worker scratch reuse must not change answers.
// Runs the same query repeatedly through one worker (whose scratch has
// been warmed by different-length sequences) and compares with a fresh
// engine search each time.
TEST(QueryExecutorTest, ScratchReuseAcrossQueriesKeepsAnswersStable) {
  const Engine engine(TestDataset(), EngineOptions{});
  QueryExecutorOptions options;
  options.num_threads = 1;  // everything funnels through one scratch
  QueryExecutor executor(&engine, options);
  const std::vector<Sequence> queries = TestQueries(engine, 10);
  for (int round = 0; round < 3; ++round) {
    for (const Sequence& q : queries) {
      const SearchResult pooled =
          executor.Submit(MethodKind::kNaiveScan, q, 0.35).get();
      const SearchResult fresh =
          engine.SearchWith(MethodKind::kNaiveScan, q, 0.35);
      EXPECT_TRUE(AnswerKey(pooled) == AnswerKey(fresh));
    }
  }
}

}  // namespace
}  // namespace warpindex
