// Differential test: the production DP engine against a direct memoized
// transcription of the paper's recursive Definition 1 / Definition 2.

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/prng.h"
#include "dtw/dtw.h"

namespace warpindex {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Literal transcription of Definition 2 (and Definition 1 for the sum
// combiner): D(i, j) = distance of prefixes s[0..i], q[0..j].
class ReferenceDtw {
 public:
  ReferenceDtw(const Sequence& s, const Sequence& q, DtwCombiner combiner)
      : s_(s), q_(q), combiner_(combiner),
        memo_(s.size() * q.size(), -1.0) {}

  double Distance() {
    if (s_.empty() && q_.empty()) return 0.0;
    if (s_.empty() || q_.empty()) return kInf;
    return Solve(s_.size() - 1, q_.size() - 1);
  }

 private:
  double Solve(size_t i, size_t j) {
    double& slot = memo_[i * q_.size() + j];
    if (slot >= 0.0) {
      return slot;
    }
    const double cost = std::fabs(s_[i] - q_[j]);
    double best;
    if (i == 0 && j == 0) {
      best = cost;
    } else {
      double upstream = kInf;
      if (i > 0) upstream = std::min(upstream, Solve(i - 1, j));
      if (j > 0) upstream = std::min(upstream, Solve(i, j - 1));
      if (i > 0 && j > 0) upstream = std::min(upstream, Solve(i - 1, j - 1));
      best = combiner_ == DtwCombiner::kSum ? cost + upstream
                                            : std::max(cost, upstream);
    }
    slot = best;
    return best;
  }

  const Sequence& s_;
  const Sequence& q_;
  DtwCombiner combiner_;
  std::vector<double> memo_;
};

Sequence RandomSequence(Prng* prng, int64_t max_len) {
  Sequence s;
  const int64_t len = prng->UniformInt(1, max_len);
  for (int64_t i = 0; i < len; ++i) {
    s.Append(prng->UniformDouble(-3.0, 3.0));
  }
  return s;
}

class DtwReferenceTest : public testing::TestWithParam<DtwCombiner> {};

TEST_P(DtwReferenceTest, EngineMatchesRecursiveDefinition) {
  const DtwCombiner combiner = GetParam();
  const Dtw dtw(combiner == DtwCombiner::kMax ? DtwOptions::Linf()
                                              : DtwOptions::L1());
  Prng prng(777);
  for (int trial = 0; trial < 200; ++trial) {
    const Sequence s = RandomSequence(&prng, 18);
    const Sequence q = RandomSequence(&prng, 18);
    ReferenceDtw reference(s, q, combiner);
    EXPECT_NEAR(dtw.Distance(s, q).distance, reference.Distance(), 1e-9)
        << "s=" << s.ToString(20) << " q=" << q.ToString(20);
  }
}

TEST_P(DtwReferenceTest, PathResultMatchesRecursiveDefinition) {
  const DtwCombiner combiner = GetParam();
  const Dtw dtw(combiner == DtwCombiner::kMax ? DtwOptions::Linf()
                                              : DtwOptions::L1());
  Prng prng(778);
  for (int trial = 0; trial < 50; ++trial) {
    const Sequence s = RandomSequence(&prng, 12);
    const Sequence q = RandomSequence(&prng, 12);
    ReferenceDtw reference(s, q, combiner);
    EXPECT_NEAR(dtw.DistanceWithPath(s, q).distance, reference.Distance(),
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(BothCombiners, DtwReferenceTest,
                         testing::Values(DtwCombiner::kMax,
                                         DtwCombiner::kSum),
                         [](const testing::TestParamInfo<DtwCombiner>& info) {
                           return info.param == DtwCombiner::kMax ? "Linf"
                                                                  : "L1";
                         });

TEST(DtwReferenceTest, PaperExampleAgainstReference) {
  const Sequence s({20, 21, 21, 20, 20, 23, 23, 23});
  const Sequence q({20, 20, 21, 20, 23});
  ReferenceDtw reference(s, q, DtwCombiner::kMax);
  EXPECT_EQ(reference.Distance(), 0.0);
}

}  // namespace
}  // namespace warpindex
