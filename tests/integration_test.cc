// End-to-end tests over the paper-shaped workloads: the synthetic stock
// corpus and the random-walk corpus, driven through the Engine facade.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"
#include "sequence/stock_generator.h"

namespace warpindex {
namespace {

TEST(IntegrationTest, StockCorpusNoFalseDismissalAcrossTolerances) {
  StockDataOptions stock;
  stock.num_sequences = 120;  // scaled-down corpus for test runtime
  EngineOptions options;
  options.build_st_filter = true;
  const Engine engine(GenerateStockDataset(stock), options);
  const auto queries = GenerateQueryWorkload(
      engine.dataset(), QueryWorkloadOptions{.num_queries = 10});

  // Stock prices are in dollars; use proportionally larger tolerances.
  for (const double epsilon : {0.5, 2.0, 8.0}) {
    for (const Sequence& q : queries) {
      auto truth =
          engine.SearchWith(MethodKind::kNaiveScan, q, epsilon).matches;
      std::sort(truth.begin(), truth.end());
      for (const MethodKind kind : {MethodKind::kTwSimSearch,
                                    MethodKind::kLbScan,
                                    MethodKind::kStFilter}) {
        auto got = engine.SearchWith(kind, q, epsilon).matches;
        std::sort(got.begin(), got.end());
        ASSERT_EQ(got, truth)
            << MethodKindName(kind) << " at eps=" << epsilon;
      }
    }
  }
}

TEST(IntegrationTest, IndexStaysSmallRelativeToStockDatabase) {
  // Paper §5.2: R-tree size < 4% of the database. That figure cannot
  // include page slack (545 entries * 72 B = 39 KB is already 3.9% of the
  // 1 MB corpus, and whole 1 KB pages round it up), so we check the raw
  // entry payload against 4% and the page-rounded footprint against a
  // slightly looser 8%.
  const Engine engine(GenerateStockDataset(StockDataOptions{}),
                      EngineOptions{});
  const size_t data_bytes = engine.store().TotalBytes();
  const size_t entry_bytes =
      engine.feature_index().size() * EntryBytes(kFeatureDims);
  EXPECT_LT(static_cast<double>(entry_bytes),
            0.04 * static_cast<double>(data_bytes));
  const size_t index_bytes = engine.feature_index().rtree().TotalBytes();
  EXPECT_LT(static_cast<double>(index_bytes),
            0.08 * static_cast<double>(data_bytes));
}

TEST(IntegrationTest, TwSimSearchTouchesFractionOfPages) {
  StockDataOptions stock;
  stock.num_sequences = 200;
  const Engine engine(GenerateStockDataset(stock), EngineOptions{});
  const auto queries = GenerateQueryWorkload(
      engine.dataset(), QueryWorkloadOptions{.num_queries = 10});
  uint64_t tw_pages = 0;
  uint64_t scan_pages = 0;
  for (const Sequence& q : queries) {
    tw_pages += engine.SearchWith(MethodKind::kTwSimSearch, q, 1.0)
                    .cost.io.TotalPageReads();
    scan_pages += engine.SearchWith(MethodKind::kNaiveScan, q, 1.0)
                      .cost.io.TotalPageReads();
  }
  EXPECT_LT(tw_pages, scan_pages / 4);
}

TEST(IntegrationTest, SimulatedElapsedFavorsIndexAtSmallTolerance) {
  // The headline result (Figure 3's shape): TW-Sim-Search beats the scans
  // under the period disk model when tolerances are small.
  RandomWalkOptions rw;
  rw.num_sequences = 400;
  rw.min_length = 100;
  rw.max_length = 100;
  const Engine engine(GenerateRandomWalkDataset(rw), EngineOptions{});
  const auto queries = GenerateQueryWorkload(
      engine.dataset(), QueryWorkloadOptions{.num_queries = 5});
  double tw_ms = 0.0;
  double lb_ms = 0.0;
  for (const Sequence& q : queries) {
    tw_ms += engine.ElapsedMillis(
        engine.SearchWith(MethodKind::kTwSimSearch, q, 0.1).cost);
    lb_ms += engine.ElapsedMillis(
        engine.SearchWith(MethodKind::kLbScan, q, 0.1).cost);
  }
  EXPECT_LT(tw_ms, lb_ms);
}

TEST(IntegrationTest, ResultsDeterministicAcrossEngineRebuilds) {
  RandomWalkOptions rw;
  rw.num_sequences = 80;
  rw.min_length = 40;
  rw.max_length = 60;
  const Engine a(GenerateRandomWalkDataset(rw), EngineOptions{});
  const Engine b(GenerateRandomWalkDataset(rw), EngineOptions{});
  const auto queries = GenerateQueryWorkload(
      a.dataset(), QueryWorkloadOptions{.num_queries = 8});
  for (const Sequence& q : queries) {
    auto ra = a.Search(q, 0.2).matches;
    auto rb = b.Search(q, 0.2).matches;
    std::sort(ra.begin(), ra.end());
    std::sort(rb.begin(), rb.end());
    EXPECT_EQ(ra, rb);
  }
}

TEST(IntegrationTest, VariableLengthCorpusHandledThroughout) {
  // The defining property of the paper's setting: queries and data of
  // different lengths, compared via warping.
  RandomWalkOptions rw;
  rw.num_sequences = 100;
  rw.min_length = 20;
  rw.max_length = 200;
  EngineOptions options;
  options.build_st_filter = true;
  const Engine engine(GenerateRandomWalkDataset(rw), options);
  // Query of a length present nowhere in the dataset.
  Sequence q;
  for (int i = 0; i < 317; ++i) {
    q.Append(5.0 + 0.01 * i);
  }
  for (const MethodKind kind :
       {MethodKind::kTwSimSearch, MethodKind::kNaiveScan,
        MethodKind::kLbScan, MethodKind::kStFilter}) {
    const auto result = engine.SearchWith(kind, q, 0.5);
    EXPECT_GE(result.num_candidates, result.matches.size());
  }
}

}  // namespace
}  // namespace warpindex
