// Integration test for the live introspection stack: an Engine plus its
// QueryExecutor, flight recorder, and slow log behind the HTTP server,
// scraped while queries are in flight. Runs under TSan in CI to certify
// that endpoint rendering races nothing on the query path.

#include "exec/introspection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "exec/query_executor.h"
#include "obs/exporters.h"
#include "obs/flight_recorder.h"
#include "obs/slow_log.h"
#include "obs/trace_store.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

Dataset TestDataset() {
  RandomWalkOptions options;
  options.num_sequences = 60;
  options.min_length = 20;
  options.max_length = 48;
  options.seed = 11;
  return GenerateRandomWalkDataset(options);
}

// Crude whole-document JSON validation (same approach as trace_test):
// balanced braces/brackets and quotes outside string literals.
void ExpectValidJson(const std::string& text) {
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.front(), '{');
  EXPECT_EQ(text.back(), '}');
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      ASSERT_GE(depth, 0) << text;
    }
  }
  EXPECT_EQ(depth, 0) << text;
  EXPECT_FALSE(in_string) << text;
}

class IntrospectionTest : public testing::Test {
 protected:
  IntrospectionTest()
      : trace_store_([] {
          TraceStoreOptions options;
          options.sample_probability = 1.0;  // retain every query's trace
          return options;
        }()),
        engine_(TestDataset(),
                [this] {
                  EngineOptions options;
                  options.metrics = &registry_;  // isolated per fixture
                  options.index_buffer_pages = 16;
                  return options;
                }()),
        executor_(&engine_, [this] {
          QueryExecutorOptions options;
          options.num_threads = 2;
          options.flight_recorder = &flight_recorder_;
          options.slow_log = &slow_log_;
          options.trace_store = &trace_store_;
          return options;
        }()) {}

  void RunQueries(size_t n) {
    QueryWorkloadOptions workload;
    workload.num_queries = n;
    workload.seed = 23;
    std::vector<Sequence> queries =
        GenerateQueryWorkload(engine_.dataset(), workload);
    std::vector<QueryRequest> requests;
    requests.reserve(queries.size());
    for (Sequence& q : queries) {
      requests.push_back(
          QueryRequest{MethodKind::kTwSimSearch, std::move(q), 0.25});
    }
    executor_.SubmitBatch(requests);
  }

  IntrospectionOptions Options() const {
    return IntrospectionOptions{.engine = &engine_,
                                .executor = &executor_,
                                .flight_recorder = &flight_recorder_,
                                .slow_log = &slow_log_,
                                .trace_store = &trace_store_};
  }

  MetricsRegistry registry_;
  FlightRecorder flight_recorder_;
  SlowQueryLog slow_log_;
  TraceStore trace_store_;
  Engine engine_;
  QueryExecutor executor_;
};

TEST_F(IntrospectionTest, StatuszJsonIsValidAndComplete) {
  RunQueries(8);
  const std::string json = StatuszJson(Options(), /*uptime_s=*/1.5);
  ExpectValidJson(json);
  // The acceptance-criterion fields: R-tree health, planner snapshot,
  // buffer-pool hit ratio, in-flight gauge.
  EXPECT_NE(json.find("\"rtree\":{"), std::string::npos);
  EXPECT_NE(json.find("\"height\":"), std::string::npos);
  EXPECT_NE(json.find("\"overlap_ratio\":"), std::string::npos);
  EXPECT_NE(json.find("\"planner\":{"), std::string::npos);
  EXPECT_NE(json.find("\"current_plan\":"), std::string::npos);
  EXPECT_NE(json.find("\"hit_ratio\":"), std::string::npos);
  EXPECT_NE(json.find("\"in_flight\":"), std::string::npos);
  EXPECT_NE(json.find("\"queries_total\":8"), std::string::npos);
  EXPECT_NE(json.find("\"uptime_s\":1.5"), std::string::npos);
  EXPECT_NE(json.find(std::string("\"version\":\"") + kWarpIndexVersion),
            std::string::npos);
  // Build identification and the trace-store health section.
  EXPECT_NE(json.find("\"compiler\":"), std::string::npos);
  EXPECT_NE(json.find("\"build_type\":"), std::string::npos);
  EXPECT_NE(json.find("\"trace_store\":{"), std::string::npos);
  EXPECT_NE(json.find("\"offered\":8"), std::string::npos);
}

TEST_F(IntrospectionTest, StatuszRendersNullForAbsentComponents) {
  IntrospectionOptions options;
  options.engine = &engine_;
  const std::string json = StatuszJson(options, 0.0);
  ExpectValidJson(json);
  EXPECT_NE(json.find("\"executor\":null"), std::string::npos);
  EXPECT_NE(json.find("\"flight_recorder\":null"), std::string::npos);
  EXPECT_NE(json.find("\"slow_log\":null"), std::string::npos);
  EXPECT_NE(json.find("\"trace_store\":null"), std::string::npos);
}

TEST_F(IntrospectionTest, EndpointsServeOverHttp) {
  IntrospectionServer server;
  RegisterIntrospectionRoutes(&server, Options());
  const Status start_status = server.Start();
  if (!start_status.ok()) {
    GTEST_SKIP() << "cannot bind loopback: " << start_status.ToString();
  }
  RunQueries(8);

  std::string body;
  int status_code = 0;
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/healthz", &body,
                      &status_code)
                  .ok());
  EXPECT_EQ(status_code, 200);
  EXPECT_EQ(body, "ok\n");

  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/metrics", &body,
                      &status_code)
                  .ok());
  EXPECT_EQ(status_code, 200);
  EXPECT_NE(body.find("# TYPE warpindex_queries_total counter"),
            std::string::npos);
  // The build-info series, Prometheus info-metric convention: constant 1
  // with the identifying facts as labels.
  EXPECT_NE(body.find("# TYPE warpindex_build_info gauge"),
            std::string::npos);
  EXPECT_NE(body.find(std::string("warpindex_build_info{version=\"") +
                      kWarpIndexVersion + "\""),
            std::string::npos);
  EXPECT_NE(body.find("build_type="), std::string::npos);

  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/statusz", &body,
                      &status_code)
                  .ok());
  EXPECT_EQ(status_code, 200);
  ExpectValidJson(body);

  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/slowlog", &body,
                      &status_code)
                  .ok());
  EXPECT_EQ(status_code, 200);
  ExpectValidJson(body);
  EXPECT_NE(body.find("\"count\":8"), std::string::npos);

  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/flightrecorder",
                      &body, &status_code)
                  .ok());
  EXPECT_EQ(status_code, 200);
  ExpectValidJson(body);
  EXPECT_NE(body.find("\"count\":8"), std::string::npos);
}

TEST_F(IntrospectionTest, TracezListsAndLooksUpRetainedTraces) {
  IntrospectionServer server;
  RegisterIntrospectionRoutes(&server, Options());
  const Status start_status = server.Start();
  if (!start_status.ok()) {
    GTEST_SKIP() << "cannot bind loopback: " << start_status.ToString();
  }
  RunQueries(8);

  std::string body;
  int status_code = 0;
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/tracez", &body,
                      &status_code)
                  .ok());
  EXPECT_EQ(status_code, 200);
  ExpectValidJson(body);
  // sample_probability = 1 retains all eight traces, spans included.
  EXPECT_NE(body.find("\"count\":8"), std::string::npos);
  EXPECT_NE(body.find("\"offered\":8"), std::string::npos);
  EXPECT_NE(body.find("\"spans\":["), std::string::npos);
  EXPECT_NE(body.find("\"shard_skew_ratio\":"), std::string::npos);

  // Lookup by id: take a retained trace's id straight from the store.
  const std::vector<CompletedTrace> kept = trace_store_.Snapshot();
  ASSERT_FALSE(kept.empty());
  const std::string id_hex = TraceIdHex(kept.back().trace.trace_id());
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/tracez?id=" + id_hex,
                      &body, &status_code)
                  .ok());
  EXPECT_EQ(status_code, 200);
  ExpectValidJson(body);
  EXPECT_NE(body.find("\"trace_id\":\"" + id_hex + "\""),
            std::string::npos);
  EXPECT_NE(body.find("\"keep\":"), std::string::npos);

  // Unknown and malformed ids both 404 with a JSON error body.
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(),
                      "/tracez?id=00000000deadbeef", &body, &status_code)
                  .ok());
  EXPECT_EQ(status_code, 404);
  ExpectValidJson(body);
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/tracez?id=not-hex",
                      &body, &status_code)
                  .ok());
  EXPECT_EQ(status_code, 404);
  ExpectValidJson(body);
}

// /profilez drives the whole sampling-profiler lifecycle over HTTP:
// parameter validation, a real (short) collection in both formats, and
// the 409 when a second scrape races an in-flight one.
TEST_F(IntrospectionTest, ProfilezCollectsAndValidates) {
  IntrospectionServer server;
  RegisterIntrospectionRoutes(&server, Options());
  const Status start_status = server.Start();
  if (!start_status.ok()) {
    GTEST_SKIP() << "cannot bind loopback: " << start_status.ToString();
  }

  std::string body;
  int status_code = 0;
  // Bad parameters are rejected before any timer is armed.
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/profilez?seconds=0",
                      &body, &status_code)
                  .ok());
  EXPECT_EQ(status_code, 400);
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/profilez?seconds=999",
                      &body, &status_code)
                  .ok());
  EXPECT_EQ(status_code, 400);
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/profilez?hz=0", &body,
                      &status_code)
                  .ok());
  EXPECT_EQ(status_code, 400);
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(),
                      "/profilez?seconds=0.1&format=xml", &body,
                      &status_code)
                  .ok());
  EXPECT_EQ(status_code, 400);

  // A real scrape: keep queries running so the process burns CPU during
  // the window, then expect a parseable speedscope document.
  std::atomic<bool> done{false};
  std::thread load([&] {
    while (!done.load(std::memory_order_acquire)) {
      RunQueries(2);
    }
  });
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(),
                      "/profilez?seconds=0.3&hz=499", &body, &status_code,
                      /*timeout_ms=*/10000)
                  .ok());
  if (status_code == 409) {
    // Unsupported platform: Collect reports FailedPrecondition.
    done.store(true, std::memory_order_release);
    load.join();
    GTEST_SKIP() << "profiler unsupported on this platform";
  }
  EXPECT_EQ(status_code, 200);
  ExpectValidJson(body);
  EXPECT_NE(body.find("\"$schema\""), std::string::npos);

  // The folded format is plain text "stack count" lines.
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(),
                      "/profilez?seconds=0.2&hz=499&format=folded", &body,
                      &status_code, /*timeout_ms=*/10000)
                  .ok());
  EXPECT_EQ(status_code, 200);
  done.store(true, std::memory_order_release);
  load.join();
}

// Without a FleetPoller configured, the fleet view is a clean 400, not
// a crash or an empty 200 that would look like a healthy empty fleet.
TEST_F(IntrospectionTest, FleetViewWithoutPollerIsBadRequest) {
  IntrospectionServer server;
  RegisterIntrospectionRoutes(&server, Options());
  const Status start_status = server.Start();
  if (!start_status.ok()) {
    GTEST_SKIP() << "cannot bind loopback: " << start_status.ToString();
  }
  std::string body;
  int status_code = 0;
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/metrics?fleet=1",
                      &body, &status_code)
                  .ok());
  EXPECT_EQ(status_code, 400);
  // /fleetz is only registered when a poller exists.
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/fleetz", &body,
                      &status_code)
                  .ok());
  EXPECT_EQ(status_code, 404);
}

// Every wall_ms in a flight record has a populated cpu_ms sibling once
// real queries ran — the tentpole's end-to-end attribution invariant.
TEST_F(IntrospectionTest, FlightRecordsCarryCpuSiblings) {
  RunQueries(4);
  const std::vector<FlightRecord> records = flight_recorder_.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (const FlightRecord& record : records) {
    EXPECT_GE(record.wall_ms, 0.0);
    EXPECT_GT(record.cpu_ms, 0.0) << record.method;
  }
  const std::string json = FlightRecordsToJson(records);
  EXPECT_NE(json.find("\"cpu_ms\""), std::string::npos);
}

TEST_F(IntrospectionTest, FlightRecordsCarryTraceIds) {
  RunQueries(4);
  // Every query was traced (head gate 1), so every flight record should
  // cross-link to a trace id — the /flightrecorder → /tracez join key.
  const std::vector<FlightRecord> records = flight_recorder_.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (const FlightRecord& record : records) {
    EXPECT_NE(record.trace_id, 0u);
  }
  const std::string json = FlightRecordsToJson(records);
  EXPECT_NE(json.find("\"trace_id\":\"" + TraceIdHex(records[0].trace_id) +
                      "\""),
            std::string::npos);
}

// The TSan target: queries and endpoint scrapes in flight together.
TEST_F(IntrospectionTest, ConcurrentQueriesAndScrapes) {
  IntrospectionServer server;
  RegisterIntrospectionRoutes(&server, Options());
  const Status start_status = server.Start();
  if (!start_status.ok()) {
    GTEST_SKIP() << "cannot bind loopback: " << start_status.ToString();
  }

  std::atomic<bool> done{false};
  std::atomic<int> scrape_failures{0};
  std::thread scraper([&] {
    const char* endpoints[] = {"/statusz", "/metrics", "/slowlog",
                               "/flightrecorder", "/tracez", "/healthz"};
    size_t i = 0;
    while (!done.load(std::memory_order_acquire)) {
      std::string body;
      int status_code = 0;
      if (!HttpGet("127.0.0.1", server.port(),
                   endpoints[i++ % std::size(endpoints)], &body,
                   &status_code)
               .ok() ||
          status_code != 200) {
        scrape_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  for (int round = 0; round < 4; ++round) {
    RunQueries(6);
  }
  done.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_EQ(scrape_failures.load(), 0);
  EXPECT_EQ(flight_recorder_.offered(), 24u);
  EXPECT_EQ(slow_log_.offered(), 24u);
  EXPECT_GT(server.requests_served(), 0u);
}

}  // namespace
}  // namespace warpindex
