// The semantic cache's acceptance property (docs/CACHING.md): answers
// served from the cache are bit-identical to uncached queries on the
// same engine. For random tolerance pairs ε <= ε', a query cached at ε'
// and re-filtered at ε must equal a fresh uncached query at ε — same
// ids, same order, same distances — for every range method, kNN, single
// and sharded engines, and an IngestEngine across its compaction points
// (where every write bumps DataVersion() and must invalidate). A final
// suite hammers one cached executor with concurrent query threads and a
// writer, so running this under TSan certifies the striped cache and
// the version protocol are race-free.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "cache/semantic_cache.h"
#include "core/engine.h"
#include "exec/query_executor.h"
#include "ingest/ingest_engine.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"
#include "shard/sharded_engine.h"

namespace warpindex {
namespace {

Dataset WalkDataset(uint64_t seed, size_t n = 70) {
  RandomWalkOptions options;
  options.num_sequences = n;
  options.min_length = 20;
  options.max_length = 40;
  options.seed = seed;
  return GenerateRandomWalkDataset(options);
}

// Bit-identical: ids, emission order, and exact distances.
void ExpectSameAnswer(const SearchResult& cached, const SearchResult& fresh,
                      const std::string& label) {
  EXPECT_EQ(cached.matches, fresh.matches) << label;
  EXPECT_EQ(cached.distances, fresh.distances) << label;
}

constexpr MethodKind kAllMethods[] = {
    MethodKind::kTwSimSearch, MethodKind::kTwSimSearchCascade,
    MethodKind::kNaiveScan, MethodKind::kLbScan, MethodKind::kStFilter};

TEST(CachePropertyTest, RefilteredAnswersMatchFreshQueriesEveryMethod) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> frac(0.0, 1.0);
  const Dataset dataset = WalkDataset(11);
  const auto queries = GenerateQueryWorkload(
      dataset, QueryWorkloadOptions{.num_queries = 4, .seed = 12});
  EngineOptions engine_options;
  engine_options.build_st_filter = true;

  for (const size_t num_shards : {1u, 4u}) {
    std::unique_ptr<Engine> single;
    std::unique_ptr<ShardedEngine> sharded;
    const EngineLike* engine = nullptr;
    if (num_shards == 1) {
      single = std::make_unique<Engine>(Dataset(dataset), engine_options);
      engine = single.get();
    } else {
      ShardedEngineOptions shard_options;
      shard_options.num_shards = num_shards;
      shard_options.partitioner = PartitionerKind::kRange;
      shard_options.engine = engine_options;
      sharded = std::make_unique<ShardedEngine>(Dataset(dataset),
                                                shard_options);
      engine = sharded.get();
    }

    SemanticCache cache;
    QueryExecutorOptions exec_options;
    exec_options.num_threads = 2;
    exec_options.cache = &cache;
    QueryExecutor executor(engine, exec_options);
    if (sharded != nullptr) {
      sharded->AttachPool(&executor.pool());
    }

    for (const MethodKind kind : kAllMethods) {
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        const Sequence& q = queries[qi];
        const double wide = 0.4;
        const std::string label = "K=" + std::to_string(num_shards) +
                                  " method=" + MethodKindName(kind) +
                                  " q=" + std::to_string(qi);
        // First touch populates (engine ran, a miss).
        const SearchResult populate =
            executor.Submit(kind, q, wide).get();
        EXPECT_EQ(populate.cost.cache_misses, 1u) << label;
        EXPECT_EQ(populate.cost.cache_hits, 0u) << label;
        // Random tighter tolerances are answered by re-filtering the
        // stored ε' entry, bit-identically to an uncached query.
        for (int trial = 0; trial < 3; ++trial) {
          const double eps = wide * frac(rng);
          const SearchResult cached = executor.Submit(kind, q, eps).get();
          EXPECT_EQ(cached.cost.cache_hits, 1u) << label << " eps=" << eps;
          const SearchResult fresh = engine->SearchWith(kind, q, eps);
          ExpectSameAnswer(cached, fresh,
                           label + " eps=" + std::to_string(eps));
        }
      }
    }
  }
}

TEST(CachePropertyTest, KnnReuseAndBoundSeedingMatchFresh) {
  const Dataset dataset = WalkDataset(23);
  const auto queries = GenerateQueryWorkload(
      dataset, QueryWorkloadOptions{.num_queries = 4, .seed = 24});

  for (const size_t num_shards : {1u, 4u}) {
    std::unique_ptr<Engine> single;
    std::unique_ptr<ShardedEngine> sharded;
    const EngineLike* engine = nullptr;
    if (num_shards == 1) {
      single = std::make_unique<Engine>(Dataset(dataset), EngineOptions{});
      engine = single.get();
    } else {
      ShardedEngineOptions shard_options;
      shard_options.num_shards = num_shards;
      sharded = std::make_unique<ShardedEngine>(Dataset(dataset),
                                                shard_options);
      engine = sharded.get();
    }

    const auto expect_same_knn = [&](const KnnResult& got, size_t k,
                                     const std::string& label) {
      const KnnResult want = engine->SearchKnn(queries[0], k);
      ASSERT_EQ(got.neighbors.size(), want.neighbors.size()) << label;
      for (size_t i = 0; i < want.neighbors.size(); ++i) {
        EXPECT_EQ(got.neighbors[i].id, want.neighbors[i].id)
            << label << " i=" << i;
        EXPECT_EQ(got.neighbors[i].distance, want.neighbors[i].distance)
            << label << " i=" << i;
      }
    };
    const std::string shard_label = "K=" + std::to_string(num_shards);

    {
      // Prefix reuse: one stored k'=8 answer serves every k <= 8.
      SemanticCache cache;
      QueryExecutorOptions exec_options;
      exec_options.num_threads = 1;
      exec_options.cache = &cache;
      QueryExecutor executor(engine, exec_options);
      if (sharded != nullptr) {
        sharded->AttachPool(&executor.pool());
      }
      const KnnResult populate = executor.SearchKnn(queries[0], 8);
      EXPECT_EQ(populate.cost.cache_misses, 1u);
      expect_same_knn(populate, 8, shard_label + " populate");
      for (const size_t k : {1u, 3u, 8u}) {
        const KnnResult cached = executor.SearchKnn(queries[0], k);
        EXPECT_EQ(cached.cost.cache_hits, 1u)
            << shard_label << " k=" << k;
        expect_same_knn(cached, k, shard_label + " k=" + std::to_string(k));
      }
    }
    {
      // Bound seeding: a cached RANGE entry's k-th smallest distance is
      // the exact global k-th, so the seeded search still returns the
      // identical answer (ties included — engines prune strictly above
      // the bound).
      SemanticCache cache;
      QueryExecutorOptions exec_options;
      exec_options.num_threads = 1;
      exec_options.cache = &cache;
      QueryExecutor executor(engine, exec_options);
      if (sharded != nullptr) {
        sharded->AttachPool(&executor.pool());
      }
      const SearchResult stored =
          executor.Submit(MethodKind::kTwSimSearch, queries[0], 0.6).get();
      for (const size_t k : {1u, 4u}) {
        if (stored.matches.size() < k) {
          continue;  // no seed available; nothing to exercise
        }
        const KnnResult seeded = executor.SearchKnn(queries[0], k);
        EXPECT_EQ(seeded.cost.cache_hits, 0u) << shard_label;  // not a hit
        expect_same_knn(seeded, k,
                        shard_label + " seeded k=" + std::to_string(k));
      }
    }
  }
}

TEST(CachePropertyTest, IngestWritesInvalidateAcrossCompactionPoints) {
  const MethodKind kIngestMethods[] = {
      MethodKind::kTwSimSearch, MethodKind::kTwSimSearchCascade,
      MethodKind::kNaiveScan, MethodKind::kLbScan};
  for (const size_t num_shards : {1u, 3u}) {
    const uint64_t seed = 31 + num_shards;
    const Dataset base = WalkDataset(seed);
    const auto queries = GenerateQueryWorkload(
        base, QueryWorkloadOptions{.num_queries = 3, .seed = seed + 1});
    const Dataset extra = WalkDataset(seed + 99, 30);

    IngestOptions options;
    options.num_shards = num_shards;
    options.start_compactor = false;  // compaction points are explicit
    IngestEngine ingest(WalkDataset(seed), options);

    SemanticCache cache;
    QueryExecutorOptions exec_options;
    exec_options.num_threads = 2;
    exec_options.cache = &cache;
    QueryExecutor executor(&ingest, exec_options);
    ingest.AttachPool(&executor.pool());
    executor.AttachIngest(&ingest);

    // At each quiescent point: the wide query populates (or replays a
    // still-valid entry — either way it must equal the engine's own
    // uncached answer), and the tighter repeat must HIT and match too.
    const auto check = [&](const std::string& point) {
      for (const MethodKind kind : kIngestMethods) {
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          const Sequence& q = queries[qi];
          const std::string label =
              point + " K=" + std::to_string(num_shards) +
              " method=" + MethodKindName(kind) + " q=" + std::to_string(qi);
          const SearchResult populate =
              executor.Submit(kind, q, 0.35).get();
          ExpectSameAnswer(populate, ingest.SearchWith(kind, q, 0.35),
                           label + " populate");
          const SearchResult cached = executor.Submit(kind, q, 0.15).get();
          EXPECT_EQ(cached.cost.cache_hits, 1u) << label;
          ExpectSameAnswer(cached, ingest.SearchWith(kind, q, 0.15),
                           label + " cached");
        }
        // kNN reuse across the same epochs.
        const KnnResult knn_populate = executor.SearchKnn(queries[0], 5);
        const KnnResult knn_fresh = ingest.SearchKnn(queries[0], 5);
        ASSERT_EQ(knn_populate.neighbors.size(),
                  knn_fresh.neighbors.size())
            << point;
        for (size_t i = 0; i < knn_fresh.neighbors.size(); ++i) {
          EXPECT_EQ(knn_populate.neighbors[i].id, knn_fresh.neighbors[i].id)
              << point << " i=" << i;
          EXPECT_EQ(knn_populate.neighbors[i].distance,
                    knn_fresh.neighbors[i].distance)
              << point << " i=" << i;
        }
      }
    };

    // Whenever the version moved since the cache was last populated,
    // the next lookup must MISS — stale reuse would be unsound.
    const auto expect_invalidated = [&](const std::string& point) {
      const SearchResult r =
          executor.Submit(MethodKind::kTwSimSearch, queries[0], 0.35).get();
      EXPECT_EQ(r.cost.cache_hits, 0u) << point;
      EXPECT_EQ(r.cost.cache_misses, 1u) << point;
    };

    const uint64_t v0 = ingest.DataVersion();
    check("fresh");
    EXPECT_EQ(ingest.DataVersion(), v0) << "queries must not bump version";

    // Point 1: buffered deltas. Every insert bumps the version.
    for (size_t i = 0; i < 15; ++i) {
      ingest.Insert(extra[i]);
    }
    EXPECT_TRUE(ingest.Delete(3));
    EXPECT_GT(ingest.DataVersion(), v0);
    expect_invalidated("buffered");
    check("buffered");

    // Point 2: one shard compacted. A swap bumps the version again; a
    // shard with nothing buffered may legitimately no-op.
    const uint64_t v1 = ingest.DataVersion();
    ingest.CompactShard(0);
    if (ingest.DataVersion() != v1) {
      expect_invalidated("partial-compaction");
    }
    check("partial-compaction");

    // Point 3: fully compacted.
    ingest.CompactAll();
    check("compacted");

    // Point 4: fresh writes on the compacted epoch.
    for (size_t i = 15; i < extra.size(); ++i) {
      ingest.Insert(extra[i]);
    }
    expect_invalidated("recharged");
    check("recharged");

    // Sanity: invalidations were actually exercised, not vacuously
    // skipped (stale entries dropped on the version-mismatch probes).
    EXPECT_GT(cache.TakeStats().invalidations, 0u);
  }
}

// No asserted answers mid-stream (no stable ground truth while writes
// race) — the value is running it under TSan: concurrent lookups,
// inserts, evictions, and version bumps on one shared cache.
TEST(CachePropertyTest, ConcurrentCachedQueriesAndWritesAreRaceFree) {
  const Dataset base = WalkDataset(5, 40);
  const auto queries = GenerateQueryWorkload(
      base, QueryWorkloadOptions{.num_queries = 4, .seed = 6});

  IngestOptions options;
  options.num_shards = 3;
  options.start_compactor = true;  // background compactor in the mix
  options.compact_max_delta_entries = 16;
  options.compact_max_tombstones = 12;
  options.compact_poll_ms = 2.0;
  IngestEngine ingest(WalkDataset(5, 40), options);

  SemanticCacheOptions cache_options;
  cache_options.max_bytes = 32 << 10;  // small: force concurrent evictions
  SemanticCache cache(cache_options);
  QueryExecutorOptions exec_options;
  exec_options.num_threads = 4;
  exec_options.cache = &cache;
  QueryExecutor executor(&ingest, exec_options);
  ingest.AttachPool(&executor.pool());
  executor.AttachIngest(&ingest);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    const Dataset mine = WalkDataset(100, 60);
    for (size_t i = 0; i < mine.size(); ++i) {
      const SequenceId id = executor.SubmitInsert(mine[i]).get();
      if ((i + 1) % 6 == 0) {
        executor.SubmitDelete(id).get();
      }
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      size_t i = 0;
      while (!stop.load()) {
        const Sequence& q = queries[(t + i) % queries.size()];
        const double eps = (i % 2 == 0) ? 0.3 : 0.12;
        (void)executor.Submit(MethodKind::kTwSimSearch, q, eps).get();
        (void)executor.SearchKnn(q, 3);
        ++i;
      }
    });
  }
  writer.join();
  for (std::thread& reader : readers) {
    reader.join();
  }
  // Let the background compactor drain so no version bump lands between
  // the populate and the repeat below.
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ingest.TakeHealthSnapshot().compaction_backlog > 0 &&
         std::chrono::steady_clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Quiesced: a cached repeat equals the engine's own answer again.
  for (const Sequence& q : queries) {
    const SearchResult populate =
        executor.Submit(MethodKind::kTwSimSearch, q, 0.3).get();
    ExpectSameAnswer(populate,
                     ingest.SearchWith(MethodKind::kTwSimSearch, q, 0.3),
                     "quiesced populate");
    const SearchResult cached =
        executor.Submit(MethodKind::kTwSimSearch, q, 0.2).get();
    EXPECT_EQ(cached.cost.cache_hits, 1u);
    ExpectSameAnswer(cached,
                     ingest.SearchWith(MethodKind::kTwSimSearch, q, 0.2),
                     "quiesced cached");
  }
}

}  // namespace
}  // namespace warpindex
