#include "sequence/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace warpindex {
namespace {

Dataset MakeSmallDataset() {
  Dataset d;
  d.Add(Sequence({1.0, 2.0, 3.0}));
  d.Add(Sequence({-5.0, 10.0}));
  d.Add(Sequence({0.0, 0.0, 0.0, 0.0, 0.0}));
  return d;
}

TEST(DatasetTest, AddAssignsSequentialIds) {
  const Dataset d = MakeSmallDataset();
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0].id(), 0);
  EXPECT_EQ(d[1].id(), 1);
  EXPECT_EQ(d[2].id(), 2);
}

TEST(DatasetTest, VectorConstructorAssignsIds) {
  Dataset d(std::vector<Sequence>{Sequence({1.0}), Sequence({2.0})});
  EXPECT_EQ(d[0].id(), 0);
  EXPECT_EQ(d[1].id(), 1);
}

TEST(DatasetTest, StatsComputedCorrectly) {
  const DatasetStats stats = MakeSmallDataset().ComputeStats();
  EXPECT_EQ(stats.num_sequences, 3u);
  EXPECT_EQ(stats.total_elements, 10u);
  EXPECT_EQ(stats.min_length, 2u);
  EXPECT_EQ(stats.max_length, 5u);
  EXPECT_NEAR(stats.avg_length, 10.0 / 3.0, 1e-12);
  EXPECT_EQ(stats.global_min, -5.0);
  EXPECT_EQ(stats.global_max, 10.0);
}

TEST(DatasetTest, EmptyStats) {
  const DatasetStats stats = Dataset().ComputeStats();
  EXPECT_EQ(stats.num_sequences, 0u);
  EXPECT_EQ(stats.total_elements, 0u);
}

TEST(DatasetTest, SaveLoadRoundTrip) {
  const std::string path = testing::TempDir() + "/dataset_roundtrip.wids";
  const Dataset original = MakeSmallDataset();
  ASSERT_TRUE(original.SaveToFile(path).ok());
  Dataset loaded;
  ASSERT_TRUE(Dataset::LoadFromFile(path, &loaded).ok());
  ASSERT_EQ(loaded.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i], original[i]);
    EXPECT_EQ(loaded[i].id(), original[i].id());
  }
  std::remove(path.c_str());
}

TEST(DatasetTest, RoundTripWithEmptyDataset) {
  const std::string path = testing::TempDir() + "/dataset_empty.wids";
  ASSERT_TRUE(Dataset().SaveToFile(path).ok());
  Dataset loaded = MakeSmallDataset();
  ASSERT_TRUE(Dataset::LoadFromFile(path, &loaded).ok());
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(DatasetTest, LoadRejectsMissingFile) {
  Dataset d;
  const Status s = Dataset::LoadFromFile("/nonexistent/nope.wids", &d);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(DatasetTest, LoadRejectsBadMagic) {
  const std::string path = testing::TempDir() + "/dataset_bad_magic.wids";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("JUNKJUNKJUNKJUNKJUNK", 1, 20, f);
  std::fclose(f);
  Dataset d;
  const Status s = Dataset::LoadFromFile(path, &d);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(DatasetTest, SaveRejectsUnwritablePath) {
  const Status s = MakeSmallDataset().SaveToFile("/nonexistent/dir/x.wids");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace warpindex
