// Property tests for the time-warping distance over randomized inputs,
// parameterized over the base-distance configurations.

#include <gtest/gtest.h>

#include <cmath>

#include "common/prng.h"
#include "dtw/dtw.h"

namespace warpindex {
namespace {

Sequence RandomSequence(Prng* prng, int64_t min_len, int64_t max_len) {
  Sequence s;
  const int64_t len = prng->UniformInt(min_len, max_len);
  for (int64_t i = 0; i < len; ++i) {
    s.Append(prng->UniformDouble(-5.0, 5.0));
  }
  return s;
}

Sequence RandomWarp(const Sequence& s, Prng* prng) {
  Sequence warped;
  for (double v : s.elements()) {
    const int64_t copies = prng->UniformInt(1, 3);
    for (int64_t c = 0; c < copies; ++c) {
      warped.Append(v);
    }
  }
  return warped;
}

class DtwPropertyTest : public testing::TestWithParam<DtwOptions> {};

TEST_P(DtwPropertyTest, NonNegativeAndSymmetric) {
  const Dtw dtw(GetParam());
  Prng prng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const Sequence a = RandomSequence(&prng, 1, 20);
    const Sequence b = RandomSequence(&prng, 1, 20);
    const double d_ab = dtw.Distance(a, b).distance;
    const double d_ba = dtw.Distance(b, a).distance;
    EXPECT_GE(d_ab, 0.0);
    EXPECT_NEAR(d_ab, d_ba, 1e-9);
  }
}

TEST_P(DtwPropertyTest, SelfDistanceIsZero) {
  const Dtw dtw(GetParam());
  Prng prng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const Sequence a = RandomSequence(&prng, 1, 30);
    EXPECT_EQ(dtw.Distance(a, a).distance, 0.0);
  }
}

TEST_P(DtwPropertyTest, InvariantUnderWarpingOfEitherSide) {
  // D_tw(S, warp(S)) == 0 and D_tw(warp(S), Q) needs no more than
  // D_tw(S, Q) ... for the max combiner warping either side cannot change
  // the optimum; for the sum combiner it cannot *decrease* to below zero.
  const Dtw dtw(GetParam());
  Prng prng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const Sequence a = RandomSequence(&prng, 1, 15);
    const Sequence warped = RandomWarp(a, &prng);
    EXPECT_EQ(dtw.Distance(a, warped).distance, 0.0);
  }
}

TEST_P(DtwPropertyTest, ThresholdedAgreesWithExact) {
  const Dtw dtw(GetParam());
  Prng prng(4);
  for (int trial = 0; trial < 100; ++trial) {
    const Sequence a = RandomSequence(&prng, 1, 20);
    const Sequence b = RandomSequence(&prng, 1, 20);
    const double exact = dtw.Distance(a, b).distance;
    const double epsilon = prng.UniformDouble(0.0, 10.0);
    const double thresholded =
        dtw.DistanceWithThreshold(a, b, epsilon).distance;
    if (exact <= epsilon) {
      EXPECT_NEAR(thresholded, exact, 1e-9)
          << "a=" << a.ToString() << " b=" << b.ToString()
          << " eps=" << epsilon;
    } else {
      EXPECT_TRUE(std::isinf(thresholded))
          << "exact=" << exact << " eps=" << epsilon
          << " got=" << thresholded;
    }
  }
}

TEST_P(DtwPropertyTest, PathCostAlwaysEqualsDistance) {
  const Dtw dtw(GetParam());
  Prng prng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const Sequence a = RandomSequence(&prng, 1, 15);
    const Sequence b = RandomSequence(&prng, 1, 15);
    const DtwPathResult r = dtw.DistanceWithPath(a, b);
    ASSERT_TRUE(r.path.IsValid(a.size(), b.size()));
    EXPECT_NEAR(r.path.Cost(a, b, dtw.options()), r.distance, 1e-9);
    EXPECT_NEAR(r.distance, dtw.Distance(a, b).distance, 1e-9);
  }
}

TEST_P(DtwPropertyTest, AnyValidPathUpperBoundsDistance) {
  // The DP optimum must be <= the cost of the trivial "staircase" path.
  const Dtw dtw(GetParam());
  Prng prng(6);
  for (int trial = 0; trial < 50; ++trial) {
    const Sequence a = RandomSequence(&prng, 2, 15);
    const Sequence b = RandomSequence(&prng, 2, 15);
    std::vector<WarpingStep> steps;
    size_t i = 0;
    size_t j = 0;
    steps.push_back({0, 0});
    while (i + 1 < a.size() || j + 1 < b.size()) {
      if (i + 1 < a.size()) ++i;
      if (j + 1 < b.size()) ++j;
      steps.push_back({i, j});
    }
    const WarpingPath path(std::move(steps));
    ASSERT_TRUE(path.IsValid(a.size(), b.size()));
    EXPECT_LE(dtw.Distance(a, b).distance,
              path.Cost(a, b, dtw.options()) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBaseDistances, DtwPropertyTest,
    testing::Values(DtwOptions::Linf(), DtwOptions::L1(), DtwOptions::L2()),
    [](const testing::TestParamInfo<DtwOptions>& info) {
      if (info.param.combiner == DtwCombiner::kMax) return "Linf";
      return info.param.step == StepCost::kSquared ? "L2" : "L1";
    });

// The motivating fact of the paper (§1, [25]): D_tw violates the
// triangular inequality, so metric indexes cannot host it directly.
TEST(DtwTriangleViolationTest, ExhibitsConcreteViolation) {
  // Classic counterexample for sum-combined DTW.
  const Sequence x({0.0});
  const Sequence y({1.0, 0.0});
  const Sequence z({1.0, 1.0, 0.0});
  const Dtw dtw(DtwOptions::L1());
  const double xz = dtw.Distance(x, z).distance;
  const double xy = dtw.Distance(x, y).distance;
  const double yz = dtw.Distance(y, z).distance;
  EXPECT_GT(xz, xy + yz);
}

TEST(DtwTriangleViolationTest, RandomSearchFindsViolationForL1) {
  Prng prng(7);
  bool found = false;
  const Dtw dtw(DtwOptions::L1());
  for (int trial = 0; trial < 2000 && !found; ++trial) {
    const Sequence x = RandomSequence(&prng, 1, 6);
    const Sequence y = RandomSequence(&prng, 1, 6);
    const Sequence z = RandomSequence(&prng, 1, 6);
    const double xz = dtw.Distance(x, z).distance;
    const double xy = dtw.Distance(x, y).distance;
    const double yz = dtw.Distance(y, z).distance;
    if (xz > xy + yz + 1e-9) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "sum-combined DTW should violate the triangle "
                        "inequality somewhere in 2000 random triples";
}

}  // namespace
}  // namespace warpindex
