// Unit tests for the semantic result cache (cache/semantic_cache.h):
// key derivation, ε-subsumption re-filtering, kNN prefix reuse and
// bound seeding, strict version invalidation, and the striped LRU byte
// budget. The end-to-end bit-identical-answers claim lives in
// cache_property_test.cc; this file pins the cache's own contract.

#include "cache/semantic_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/search_method.h"
#include "core/tw_knn_search.h"
#include "dtw/base_distance.h"
#include "sequence/sequence.h"

namespace warpindex {
namespace {

Sequence Query() { return Sequence({1.0, 2.0, 3.0, 2.0}); }

// A stored range answer in some traversal order (deliberately NOT
// sorted by distance or id — the cache must preserve it).
SearchResult StoredAnswer() {
  SearchResult result;
  result.matches = {7, 2, 9, 4};
  result.distances = {0.40, 0.10, 0.25, 0.05};
  result.num_candidates = 11;
  return result;
}

TEST(SemanticCacheKeyTest, MethodAndConfigurationTagTheKey) {
  const Sequence q = Query();
  const DtwOptions dtw;
  const uint64_t tw = SemanticCache::RangeKey(q, dtw, MethodKind::kTwSimSearch);
  EXPECT_EQ(tw, SemanticCache::RangeKey(q, dtw, MethodKind::kTwSimSearch));
  // A different traversal order must never replay this entry.
  EXPECT_NE(tw, SemanticCache::RangeKey(q, dtw, MethodKind::kNaiveScan));
  EXPECT_NE(tw, SemanticCache::RangeKey(q, dtw, MethodKind::kLbScan));
  // kNN answers live under their own tag.
  EXPECT_NE(tw, SemanticCache::KnnKey(q, dtw));
  // A different query or base-distance configuration changes the key.
  EXPECT_NE(tw, SemanticCache::RangeKey(Sequence({1.0, 2.0, 3.0}), dtw,
                                        MethodKind::kTwSimSearch));
  DtwOptions other = dtw;
  other.band = (dtw.band == 2) ? 3 : 2;
  EXPECT_NE(tw, SemanticCache::RangeKey(q, other, MethodKind::kTwSimSearch));
}

TEST(SemanticCacheRangeTest, SubsumedLookupRefiltersInStoredOrder) {
  SemanticCache cache;
  const uint64_t key =
      SemanticCache::RangeKey(Query(), DtwOptions{}, MethodKind::kTwSimSearch);
  cache.InsertRange(key, 0.5, 0, StoredAnswer());

  SearchResult out;
  ASSERT_TRUE(cache.LookupRange(key, 0.25, 0, &out));
  EXPECT_EQ(out.matches, (std::vector<SequenceId>{2, 9, 4}));
  EXPECT_EQ(out.distances, (std::vector<double>{0.10, 0.25, 0.05}));
  EXPECT_EQ(out.num_candidates, 11u);
  EXPECT_EQ(out.cost.cache_hits, 1u);

  // Equal tolerance is subsumed too (<=, not <).
  ASSERT_TRUE(cache.LookupRange(key, 0.5, 0, &out));
  EXPECT_EQ(out.matches.size(), 4u);

  // A wider tolerance is NOT subsumed: the stored entry may be missing
  // matches between 0.5 and 0.6.
  EXPECT_FALSE(cache.LookupRange(key, 0.6, 0, &out));

  const SemanticCacheStats stats = cache.TakeStats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_ratio, 2.0 / 3.0);
}

TEST(SemanticCacheRangeTest, InsertKeepsTheWiderSameVersionEntry) {
  SemanticCache cache;
  const uint64_t key = 42;
  cache.InsertRange(key, 0.5, 0, StoredAnswer());

  // A narrower answer at the same version must not clobber the wider
  // entry (it is subsumed by what is already stored).
  SearchResult narrow;
  narrow.matches = {4};
  narrow.distances = {0.05};
  cache.InsertRange(key, 0.1, 0, narrow);
  SearchResult out;
  ASSERT_TRUE(cache.LookupRange(key, 0.3, 0, &out));
  EXPECT_EQ(out.matches, (std::vector<SequenceId>{2, 9, 4}));
}

TEST(SemanticCacheRangeTest, ResultWithoutDistancesIsNotCached) {
  SemanticCache cache;
  SearchResult no_distances;
  no_distances.matches = {1, 2, 3};  // distances absent — cannot re-filter
  cache.InsertRange(7, 0.5, 0, no_distances);
  SearchResult out;
  EXPECT_FALSE(cache.LookupRange(7, 0.1, 0, &out));
  EXPECT_EQ(cache.TakeStats().insertions, 0u);
}

TEST(SemanticCacheRangeTest, VersionMismatchDropsTheEntry) {
  SemanticCache cache;
  cache.InsertRange(9, 0.5, 3, StoredAnswer());

  SearchResult out;
  // Lookup under any other version misses AND invalidates.
  EXPECT_FALSE(cache.LookupRange(9, 0.1, 4, &out));
  EXPECT_EQ(cache.TakeStats().invalidations, 1u);
  // Even the original version misses now: the stale entry is gone.
  EXPECT_FALSE(cache.LookupRange(9, 0.1, 3, &out));
  EXPECT_EQ(cache.TakeStats().entries, 0u);
}

TEST(SemanticCacheKnnTest, PrefixRuleAndVersioning) {
  SemanticCache cache;
  KnnResult stored;
  stored.neighbors = {{5, 0.1}, {2, 0.2}, {8, 0.2}, {1, 0.9}};
  stored.num_refined = 17;
  cache.InsertKnn(11, stored.neighbors.size(), 0, stored);

  KnnResult out;
  ASSERT_TRUE(cache.LookupKnn(11, 2, 0, &out));
  ASSERT_EQ(out.neighbors.size(), 2u);
  EXPECT_EQ(out.neighbors[0].id, 5);
  EXPECT_EQ(out.neighbors[1].id, 2);
  EXPECT_EQ(out.cost.cache_hits, 1u);

  // k beyond the stored k' misses — the tail is unknown.
  EXPECT_FALSE(cache.LookupKnn(11, 5, 0, &out));
  // Another version invalidates.
  EXPECT_FALSE(cache.LookupKnn(11, 2, 1, &out));
  EXPECT_FALSE(cache.LookupKnn(11, 2, 0, &out));
}

TEST(SemanticCacheKnnTest, SeedIsTheKthSmallestStoredRangeDistance) {
  SemanticCache cache;
  const Sequence q = Query();
  const DtwOptions dtw;
  // Seed probes every method-tagged range key; store under one of them.
  cache.InsertRange(SemanticCache::RangeKey(q, dtw, MethodKind::kLbScan),
                    0.5, 0, StoredAnswer());

  double bound = 0.0;
  ASSERT_TRUE(cache.LookupKnnSeed(q, dtw, 2, 0, &bound));
  EXPECT_DOUBLE_EQ(bound, 0.10);  // 2nd smallest of {.40,.10,.25,.05}
  ASSERT_TRUE(cache.LookupKnnSeed(q, dtw, 4, 0, &bound));
  EXPECT_DOUBLE_EQ(bound, 0.40);
  // Fewer stored matches than k: the k-th distance is not in the entry.
  EXPECT_FALSE(cache.LookupKnnSeed(q, dtw, 5, 0, &bound));
}

TEST(SemanticCacheLruTest, ByteBudgetEvictsColdEntries) {
  SemanticCacheOptions options;
  options.max_bytes = 8 << 10;
  options.stripes = 1;  // deterministic: one LRU list
  SemanticCache cache(options);

  SearchResult big;
  for (SequenceId id = 0; id < 40; ++id) {
    big.matches.push_back(id);
    big.distances.push_back(0.01 * static_cast<double>(id));
  }
  for (uint64_t key = 0; key < 64; ++key) {
    cache.InsertRange(key, 0.5, 0, big);
  }
  const SemanticCacheStats stats = cache.TakeStats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, stats.max_bytes);
  EXPECT_LT(stats.entries, 64u);

  // The most recent insertions survive; the coldest were evicted.
  SearchResult out;
  EXPECT_TRUE(cache.LookupRange(63, 0.5, 0, &out));
  EXPECT_FALSE(cache.LookupRange(0, 0.5, 0, &out));

  cache.Clear();
  EXPECT_EQ(cache.TakeStats().entries, 0u);
  EXPECT_EQ(cache.TakeStats().bytes, 0u);
}

TEST(SemanticCacheMetricsTest, RegistersTierTaggedSeries) {
  MetricsRegistry registry;
  SemanticCacheOptions options;
  options.tier = "router";
  options.metrics = &registry;
  SemanticCache cache(options);
  cache.InsertRange(1, 0.5, 0, StoredAnswer());
  SearchResult out;
  ASSERT_TRUE(cache.LookupRange(1, 0.1, 0, &out));
  EXPECT_FALSE(cache.LookupRange(2, 0.1, 0, &out));

  const MetricsRegistry::Snapshot snapshot = registry.TakeSnapshot();
  bool found_hits = false;
  for (const auto& counter : snapshot.counters) {
    if (counter.name == "warpindex_cache_router_hits_total") {
      found_hits = true;
      EXPECT_EQ(counter.value, 1u);
    }
  }
  EXPECT_TRUE(found_hits);
}

}  // namespace
}  // namespace warpindex
