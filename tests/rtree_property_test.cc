// Randomized workload tests parameterized over split policy x forced
// reinsertion: interleaved inserts/deletes/queries checked against a
// brute-force reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/prng.h"
#include "rtree/rtree.h"

namespace warpindex {
namespace {

struct Config {
  SplitPolicy policy;
  bool forced_reinsert;
};

class RTreeWorkloadTest : public testing::TestWithParam<Config> {};

TEST_P(RTreeWorkloadTest, MatchesBruteForceUnderMixedWorkload) {
  RTreeOptions options;
  options.page_size_bytes = 256;
  options.split_policy = GetParam().policy;
  options.forced_reinsert = GetParam().forced_reinsert;
  RTree tree(2, options);

  Prng prng(31);
  std::map<int64_t, Point> reference;
  int64_t next_id = 0;

  for (int step = 0; step < 1500; ++step) {
    const int64_t op = prng.UniformInt(0, 9);
    if (op < 6 || reference.empty()) {
      // Insert.
      Point p;
      p.dims = 2;
      p[0] = prng.UniformDouble(0.0, 100.0);
      p[1] = prng.UniformDouble(0.0, 100.0);
      tree.Insert(Rect::FromPoint(p), next_id);
      reference[next_id] = p;
      ++next_id;
    } else if (op < 8) {
      // Delete a random existing record.
      auto it = reference.begin();
      std::advance(it, prng.UniformInt(
                           0, static_cast<int64_t>(reference.size()) - 1));
      ASSERT_TRUE(tree.Delete(Rect::FromPoint(it->second), it->first));
      reference.erase(it);
    } else {
      // Range query vs brute force.
      Point c;
      c.dims = 2;
      c[0] = prng.UniformDouble(0.0, 100.0);
      c[1] = prng.UniformDouble(0.0, 100.0);
      const Rect query =
          Rect::SquareAround(c, prng.UniformDouble(0.5, 20.0));
      auto hits = tree.RangeSearch(query);
      std::sort(hits.begin(), hits.end());
      std::vector<int64_t> expected;
      for (const auto& [id, p] : reference) {
        if (query.ContainsPoint(p)) {
          expected.push_back(id);
        }
      }
      ASSERT_EQ(hits, expected) << "at step " << step;
    }
    if (step % 250 == 249) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "at step " << step;
      ASSERT_EQ(tree.size(), reference.size());
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_P(RTreeWorkloadTest, FourDimensionalFeatureWorkload) {
  // The paper's actual shape: 4-d points, 1 KB pages, square queries.
  RTreeOptions options;
  options.page_size_bytes = 1024;
  options.split_policy = GetParam().policy;
  options.forced_reinsert = GetParam().forced_reinsert;
  RTree tree(4, options);

  Prng prng(32);
  std::vector<Point> points;
  for (int i = 0; i < 800; ++i) {
    Point p;
    p.dims = 4;
    // Correlated coordinates, like real feature tuples (first ~ last ~
    // within [smallest, greatest]).
    const double base = prng.UniformDouble(0.0, 50.0);
    p[0] = base + prng.UniformDouble(-2.0, 2.0);
    p[1] = base + prng.UniformDouble(-2.0, 2.0);
    p[2] = base + prng.UniformDouble(2.0, 4.0);
    p[3] = base - prng.UniformDouble(2.0, 4.0);
    points.push_back(p);
    tree.Insert(Rect::FromPoint(p), i);
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (int trial = 0; trial < 25; ++trial) {
    const Point& q = points[static_cast<size_t>(
        prng.UniformInt(0, static_cast<int64_t>(points.size()) - 1))];
    const Rect query = Rect::SquareAround(q, prng.UniformDouble(0.1, 3.0));
    auto hits = tree.RangeSearch(query);
    std::sort(hits.begin(), hits.end());
    std::vector<int64_t> expected;
    for (size_t i = 0; i < points.size(); ++i) {
      if (query.ContainsPoint(points[i])) {
        expected.push_back(static_cast<int64_t>(i));
      }
    }
    ASSERT_EQ(hits, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndReinsertion, RTreeWorkloadTest,
    testing::Values(Config{SplitPolicy::kLinear, false},
                    Config{SplitPolicy::kQuadratic, false},
                    Config{SplitPolicy::kRStar, false},
                    Config{SplitPolicy::kQuadratic, true},
                    Config{SplitPolicy::kRStar, true}),
    [](const testing::TestParamInfo<Config>& info) {
      std::string name = SplitPolicyName(info.param.policy);
      if (info.param.forced_reinsert) {
        name += "_reinsert";
      }
      return name;
    });

}  // namespace
}  // namespace warpindex
