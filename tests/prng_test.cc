#include "common/prng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace warpindex {
namespace {

TEST(PrngTest, DeterministicForEqualSeeds) {
  Prng a(123);
  Prng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(PrngTest, DifferentSeedsDiverge) {
  Prng a(1);
  Prng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(PrngTest, NextDoubleInUnitInterval) {
  Prng prng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = prng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(PrngTest, UniformDoubleRespectsBounds) {
  Prng prng(7);
  double min_seen = 1e300;
  double max_seen = -1e300;
  for (int i = 0; i < 10000; ++i) {
    const double v = prng.UniformDouble(-0.1, 0.1);
    EXPECT_GE(v, -0.1);
    EXPECT_LT(v, 0.1);
    min_seen = std::min(min_seen, v);
    max_seen = std::max(max_seen, v);
  }
  // The full range should actually be explored.
  EXPECT_LT(min_seen, -0.09);
  EXPECT_GT(max_seen, 0.09);
}

TEST(PrngTest, UniformIntInclusiveBoundsAndCoverage) {
  Prng prng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = prng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(PrngTest, UniformIntSingletonRange) {
  Prng prng(13);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(prng.UniformInt(42, 42), 42);
  }
}

TEST(PrngTest, GaussianMomentsApproximatelyStandard) {
  Prng prng(17);
  const int n = 100000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = prng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(PrngTest, ForkProducesIndependentStream) {
  Prng parent(23);
  Prng child = parent.Fork(1);
  Prng parent2(23);
  Prng child2 = parent2.Fork(1);
  // Forks are deterministic...
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(child.NextUint64(), child2.NextUint64());
  }
  // ...and differ by label.
  Prng parent3(23);
  Prng other = parent3.Fork(2);
  EXPECT_NE(child.NextUint64(), other.NextUint64());
}

}  // namespace
}  // namespace warpindex
