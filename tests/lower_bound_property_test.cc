// Property tests for the paper's central claims:
//
//   Theorem 1    D_tw(S, Q) >= D_tw-lb(S, Q)  (L_inf similarity model)
//   Theorem 2    D_tw-lb satisfies the triangular inequality
//   Corollary 1  D_tw <= eps  =>  D_tw-lb <= eps (no false dismissal)
//   §4.2         Feature(S) is invariant under time warping
//
// plus the envelope-bound chain underpinning the filter cascade
// (docs/PLANNER.md): LB_Keogh <= LB_Improved <= banded D_tw for every
// base-distance model and band width, including 0 and wider than the
// sequences.

#include <gtest/gtest.h>

#include <vector>

#include "common/prng.h"
#include "dtw/dtw.h"
#include "dtw/lb_improved.h"
#include "dtw/lb_keogh.h"
#include "sequence/feature.h"

namespace warpindex {
namespace {

Sequence RandomSequence(Prng* prng, int64_t min_len, int64_t max_len) {
  Sequence s;
  const int64_t len = prng->UniformInt(min_len, max_len);
  for (int64_t i = 0; i < len; ++i) {
    s.Append(prng->UniformDouble(-10.0, 10.0));
  }
  return s;
}

// Random-walk sequences, closer to the paper's workloads (smooth, highly
// autocorrelated) than white noise.
Sequence RandomWalkSequence(Prng* prng, int64_t min_len, int64_t max_len) {
  Sequence s;
  const int64_t len = prng->UniformInt(min_len, max_len);
  double v = prng->UniformDouble(1.0, 10.0);
  for (int64_t i = 0; i < len; ++i) {
    s.Append(v);
    v += prng->UniformDouble(-0.1, 0.1);
  }
  return s;
}

TEST(Theorem1Test, LowerBoundHoldsOnRandomNoise) {
  const Dtw dtw(DtwOptions::Linf());
  Prng prng(101);
  for (int trial = 0; trial < 500; ++trial) {
    const Sequence s = RandomSequence(&prng, 1, 25);
    const Sequence q = RandomSequence(&prng, 1, 25);
    const double lb =
        DtwLowerBoundDistance(ExtractFeature(s), ExtractFeature(q));
    const double exact = dtw.Distance(s, q).distance;
    ASSERT_LE(lb, exact + 1e-9)
        << "s=" << s.ToString(25) << " q=" << q.ToString(25);
  }
}

TEST(Theorem1Test, LowerBoundHoldsOnRandomWalks) {
  const Dtw dtw(DtwOptions::Linf());
  Prng prng(102);
  for (int trial = 0; trial < 300; ++trial) {
    const Sequence s = RandomWalkSequence(&prng, 5, 60);
    const Sequence q = RandomWalkSequence(&prng, 5, 60);
    const double lb =
        DtwLowerBoundDistance(ExtractFeature(s), ExtractFeature(q));
    const double exact = dtw.Distance(s, q).distance;
    ASSERT_LE(lb, exact + 1e-9);
  }
}

TEST(Theorem1Test, LowerBoundIsTightForMonotoneAlignedPairs) {
  // For pairs differing by a constant shift the bound is exact: every
  // feature differs by the shift and so does the optimal warping cost.
  const Sequence s({1.0, 2.0, 3.0, 4.0});
  Sequence shifted;
  for (double v : s.elements()) {
    shifted.Append(v + 0.7);
  }
  const double lb =
      DtwLowerBoundDistance(ExtractFeature(s), ExtractFeature(shifted));
  const double exact = Dtw(DtwOptions::Linf()).Distance(s, shifted).distance;
  EXPECT_NEAR(lb, 0.7, 1e-12);
  EXPECT_NEAR(exact, 0.7, 1e-12);
}

TEST(Theorem2Test, TriangularInequalityOnRandomTriples) {
  Prng prng(103);
  for (int trial = 0; trial < 1000; ++trial) {
    const FeatureVector x = ExtractFeature(RandomSequence(&prng, 1, 20));
    const FeatureVector y = ExtractFeature(RandomSequence(&prng, 1, 20));
    const FeatureVector z = ExtractFeature(RandomSequence(&prng, 1, 20));
    const double xz = DtwLowerBoundDistance(x, z);
    const double xy = DtwLowerBoundDistance(x, y);
    const double yz = DtwLowerBoundDistance(y, z);
    ASSERT_LE(xz, xy + yz + 1e-12);
  }
}

TEST(Theorem2Test, MetricAxioms) {
  Prng prng(104);
  for (int trial = 0; trial < 200; ++trial) {
    const FeatureVector x = ExtractFeature(RandomSequence(&prng, 1, 20));
    const FeatureVector y = ExtractFeature(RandomSequence(&prng, 1, 20));
    EXPECT_GE(DtwLowerBoundDistance(x, y), 0.0);
    EXPECT_DOUBLE_EQ(DtwLowerBoundDistance(x, y),
                     DtwLowerBoundDistance(y, x));
    EXPECT_DOUBLE_EQ(DtwLowerBoundDistance(x, x), 0.0);
  }
}

TEST(Corollary1Test, NoFalseDismissalUnderAnyTolerance) {
  const Dtw dtw(DtwOptions::Linf());
  Prng prng(105);
  for (int trial = 0; trial < 300; ++trial) {
    const Sequence s = RandomWalkSequence(&prng, 3, 40);
    const Sequence q = RandomWalkSequence(&prng, 3, 40);
    const double epsilon = prng.UniformDouble(0.0, 3.0);
    const bool exact_match = dtw.Distance(s, q).distance <= epsilon;
    const bool lb_match = WithinLowerBoundTolerance(
        ExtractFeature(s), ExtractFeature(q), epsilon);
    if (exact_match) {
      ASSERT_TRUE(lb_match) << "false dismissal at eps=" << epsilon;
    }
  }
}

// LB_Keogh <= LB_Improved <= banded D_tw, for every base-distance model
// and band width — including band 0 (diagonal-only paths) and bands wider
// than the sequences (equivalent to unconstrained).
TEST(EnvelopeBoundChainTest, KeoghLeImprovedLeBandedDtwOnRandomNoise) {
  Prng prng(107);
  const std::vector<int> bands = {-1, 0, 1, 3, 8, 100};
  for (const int band : bands) {
    std::vector<DtwOptions> modes = {DtwOptions::Linf(), DtwOptions::L1(),
                                     DtwOptions::L2()};
    for (DtwOptions& options : modes) {
      options.band = band;
      const Dtw dtw(options);
      for (int trial = 0; trial < 100; ++trial) {
        const Sequence s = RandomSequence(&prng, 1, 30);
        const Sequence q = RandomSequence(&prng, 1, 30);
        const BandEnvelope q_env =
            ComputeBandEnvelope(q, EnvelopeRadiusFor(options));
        const double keogh = LbKeogh(s, q, q_env, options);
        const double improved = LbImproved(s, q, q_env, options);
        const double exact = dtw.Distance(s, q).distance;
        ASSERT_LE(keogh, improved + 1e-9)
            << "band=" << band << " s=" << s.ToString(30)
            << " q=" << q.ToString(30);
        ASSERT_LE(improved, exact + 1e-9)
            << "band=" << band << " s=" << s.ToString(30)
            << " q=" << q.ToString(30);
      }
    }
  }
}

TEST(EnvelopeBoundChainTest, KeoghLeImprovedLeBandedDtwOnRandomWalks) {
  Prng prng(108);
  const std::vector<int> bands = {-1, 0, 2, 5, 64};
  for (const int band : bands) {
    std::vector<DtwOptions> modes = {DtwOptions::Linf(), DtwOptions::L1(),
                                     DtwOptions::L2()};
    for (DtwOptions& options : modes) {
      options.band = band;
      const Dtw dtw(options);
      for (int trial = 0; trial < 100; ++trial) {
        const Sequence s = RandomWalkSequence(&prng, 5, 50);
        const Sequence q = RandomWalkSequence(&prng, 5, 50);
        const BandEnvelope q_env =
            ComputeBandEnvelope(q, EnvelopeRadiusFor(options));
        const double keogh = LbKeogh(s, q, q_env, options);
        const double improved = LbImproved(s, q, q_env, options);
        const double exact = dtw.Distance(s, q).distance;
        ASSERT_LE(keogh, improved + 1e-9) << "band=" << band;
        ASSERT_LE(improved, exact + 1e-9) << "band=" << band;
      }
    }
  }
}

// The cascade's no-false-dismissal contract at the property level: any
// pair within eps under banded D_tw is within eps under both envelope
// bounds (they prune only on strict excess).
TEST(EnvelopeBoundChainTest, NoFalseDismissalUnderAnyTolerance) {
  Prng prng(109);
  DtwOptions options = DtwOptions::Linf();
  options.band = 4;
  const Dtw dtw(options);
  for (int trial = 0; trial < 300; ++trial) {
    const Sequence s = RandomWalkSequence(&prng, 3, 40);
    const Sequence q = RandomWalkSequence(&prng, 3, 40);
    const double epsilon = prng.UniformDouble(0.0, 3.0);
    if (dtw.Distance(s, q).distance <= epsilon) {
      const BandEnvelope q_env =
          ComputeBandEnvelope(q, EnvelopeRadiusFor(options));
      ASSERT_LE(LbKeogh(s, q, q_env, options), epsilon + 1e-12)
          << "LB_Keogh false dismissal at eps=" << epsilon;
      ASSERT_LE(LbImproved(s, q, q_env, options), epsilon + 1e-12)
          << "LB_Improved false dismissal at eps=" << epsilon;
    }
  }
}

TEST(FeatureInvarianceTest, WarpedSequencesShareFeatures) {
  Prng prng(106);
  for (int trial = 0; trial < 100; ++trial) {
    const Sequence s = RandomSequence(&prng, 1, 25);
    Sequence warped;
    for (double v : s.elements()) {
      const int64_t copies = prng.UniformInt(1, 4);
      for (int64_t c = 0; c < copies; ++c) {
        warped.Append(v);
      }
    }
    EXPECT_EQ(ExtractFeature(s), ExtractFeature(warped));
    EXPECT_DOUBLE_EQ(
        DtwLowerBoundDistance(ExtractFeature(s), ExtractFeature(warped)),
        0.0);
  }
}

}  // namespace
}  // namespace warpindex
