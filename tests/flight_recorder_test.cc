#include "obs/flight_recorder.h"

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace warpindex {
namespace {

FlightRecord MakeRecord(double wall_ms) {
  FlightRecord record;
  record.method = "TW-Sim-Search";
  record.epsilon = 0.5;
  record.query_length = 128;
  record.wall_ms = wall_ms;
  return record;
}

TEST(FlightRecorderTest, EmptySnapshot) {
  FlightRecorder recorder;
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.offered(), 0u);
  EXPECT_EQ(recorder.recorded(), 0u);
}

TEST(FlightRecorderTest, RecordsStampSeqAndAppearOldestFirst) {
  FlightRecorderOptions options;
  options.capacity = 8;
  FlightRecorder recorder(options);
  for (int i = 0; i < 5; ++i) {
    recorder.Record(MakeRecord(static_cast<double>(i)));
  }
  const std::vector<FlightRecord> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 5u);
  for (size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(snapshot[i].seq, i + 1);
    EXPECT_DOUBLE_EQ(snapshot[i].wall_ms, static_cast<double>(i));
  }
}

TEST(FlightRecorderTest, RingKeepsOnlyLastCapacityRecords) {
  FlightRecorderOptions options;
  options.capacity = 4;
  FlightRecorder recorder(options);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(MakeRecord(static_cast<double>(i)));
  }
  const std::vector<FlightRecord> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);
  // The last 4 of 10, oldest first: seq 7, 8, 9, 10.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(snapshot[i].seq, 7 + i);
  }
  EXPECT_EQ(recorder.offered(), 10u);
  EXPECT_EQ(recorder.recorded(), 10u);
}

TEST(FlightRecorderTest, SamplingSkipsRecords) {
  FlightRecorderOptions options;
  options.capacity = 64;
  options.sample_every = 4;
  FlightRecorder recorder(options);
  for (int i = 0; i < 16; ++i) {
    recorder.Record(MakeRecord(1.0));
  }
  EXPECT_EQ(recorder.offered(), 16u);
  EXPECT_EQ(recorder.recorded(), 4u);
  EXPECT_EQ(recorder.Snapshot().size(), 4u);
}

TEST(FlightRecorderTest, TimestampsAreMonotone) {
  FlightRecorder recorder;
  recorder.Record(MakeRecord(1.0));
  recorder.Record(MakeRecord(2.0));
  const std::vector<FlightRecord> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_LE(snapshot[0].timestamp_ms, snapshot[1].timestamp_ms);
}

// Writers race a snapshot reader: every snapshot must be internally
// coherent (strictly increasing seq, no torn records) regardless of
// interleaving. Run under TSan in CI (tests/CMakeLists.txt comment,
// .github/workflows/ci.yml tsan job).
TEST(FlightRecorderConcurrentTest, WritersRacingSnapshotReader) {
  FlightRecorderOptions options;
  options.capacity = 32;
  options.num_stripes = 4;
  FlightRecorder recorder(options);

  constexpr int kWriters = 4;
  constexpr int kRecordsPerWriter = 2000;
  std::atomic<bool> done{false};
  std::atomic<int> torn{0};

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::vector<FlightRecord> snapshot = recorder.Snapshot();
      uint64_t prev_seq = 0;
      for (const FlightRecord& record : snapshot) {
        if (record.seq <= prev_seq) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
        prev_seq = record.seq;
        // A torn record would show a method string from a different
        // write than its wall_ms; all writers use the same contents, so
        // just verify the invariant fields.
        if (record.method != "TW-Sim-Search" || record.query_length != 128) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      for (int i = 0; i < kRecordsPerWriter; ++i) {
        recorder.Record(MakeRecord(static_cast<double>(w * 1000 + i)));
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(recorder.offered(),
            static_cast<uint64_t>(kWriters * kRecordsPerWriter));
  EXPECT_EQ(recorder.recorded(), recorder.offered());

  // After the dust settles: exactly `capacity` records, the newest ones,
  // with distinct consecutive seqs.
  const std::vector<FlightRecord> final_snapshot = recorder.Snapshot();
  ASSERT_EQ(final_snapshot.size(), options.capacity);
  std::set<uint64_t> seqs;
  for (const FlightRecord& record : final_snapshot) {
    seqs.insert(record.seq);
    EXPECT_GT(record.seq,
              static_cast<uint64_t>(kWriters * kRecordsPerWriter) -
                  options.capacity);
  }
  EXPECT_EQ(seqs.size(), options.capacity);
}

}  // namespace
}  // namespace warpindex
