#include "sequence/dataset_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sequence/stock_generator.h"

namespace warpindex {
namespace {

std::string WriteTempFile(const std::string& name,
                          const std::string& contents) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << contents;
  return path;
}

TEST(ParseSequenceLineTest, CommaSeparated) {
  Sequence s;
  ASSERT_TRUE(ParseSequenceLine("1.5,2,-3.25", &s).ok());
  EXPECT_EQ(s, Sequence({1.5, 2.0, -3.25}));
}

TEST(ParseSequenceLineTest, WhitespaceAndMixedSeparators) {
  Sequence s;
  ASSERT_TRUE(ParseSequenceLine("  1 2,\t3 ,4  ", &s).ok());
  EXPECT_EQ(s, Sequence({1.0, 2.0, 3.0, 4.0}));
}

TEST(ParseSequenceLineTest, ScientificNotation) {
  Sequence s;
  ASSERT_TRUE(ParseSequenceLine("1e3,-2.5E-2", &s).ok());
  EXPECT_EQ(s, Sequence({1000.0, -0.025}));
}

TEST(ParseSequenceLineTest, RejectsGarbage) {
  Sequence s;
  EXPECT_EQ(ParseSequenceLine("1,banana,3", &s).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseSequenceLine("", &s).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseSequenceLine("  , ,", &s).code(),
            StatusCode::kInvalidArgument);
}

TEST(DatasetCsvTest, LoadsSequencesSkippingCommentsAndBlanks) {
  const std::string path = WriteTempFile("load.csv",
                                         "# header comment\n"
                                         "1,2,3\n"
                                         "\n"
                                         "   \n"
                                         "4.5 6.5\n"
                                         "# trailing comment\n"
                                         "7\n");
  Dataset d;
  ASSERT_TRUE(LoadDatasetFromCsv(path, &d).ok());
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0], Sequence({1.0, 2.0, 3.0}));
  EXPECT_EQ(d[1], Sequence({4.5, 6.5}));
  EXPECT_EQ(d[2], Sequence({7.0}));
  EXPECT_EQ(d[2].id(), 2);
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, ErrorsIncludeLineNumber) {
  const std::string path =
      WriteTempFile("bad.csv", "1,2\nnot a number\n");
  Dataset d;
  const Status status = LoadDatasetFromCsv(path, &d);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find(":2:"), std::string::npos)
      << status.message();
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, MissingFileIsIoError) {
  Dataset d;
  EXPECT_EQ(LoadDatasetFromCsv("/nonexistent/x.csv", &d).code(),
            StatusCode::kIoError);
}

TEST(DatasetCsvTest, RoundTripPreservesValuesExactly) {
  StockDataOptions options;
  options.num_sequences = 20;
  const Dataset original = GenerateStockDataset(options);
  const std::string path = testing::TempDir() + "/roundtrip.csv";
  ASSERT_TRUE(SaveDatasetToCsv(path, original).ok());
  Dataset loaded;
  ASSERT_TRUE(LoadDatasetFromCsv(path, &loaded).ok());
  ASSERT_EQ(loaded.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(loaded[i], original[i]) << "sequence " << i;
  }
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, SaveToUnwritablePathFails) {
  EXPECT_EQ(SaveDatasetToCsv("/nonexistent/dir/x.csv", Dataset()).code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace warpindex
