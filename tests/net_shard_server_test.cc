// ShardServer: a process serving a subset of a saved sharded database
// over the wire. Verifies the exactness contract the router builds on —
// HELLO_OK reports the same per-shard feature MBRs the in-process
// ShardedEngine computes, RANGE answers are remapped/merged/sorted
// exactly, KNN honors the seed bound without losing ties — plus the
// failure paths: unserved shards, malformed requests, and drain
// answering UNAVAILABLE.

#include "net/shard_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "net/serialize.h"
#include "net/wire_client.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"
#include "shard/sharded_engine.h"

namespace warpindex {
namespace {

constexpr size_t kNumShards = 3;

Dataset WalkDataset(uint64_t seed = 21) {
  RandomWalkOptions options;
  options.num_sequences = 60;
  options.min_length = 20;
  options.max_length = 44;
  options.seed = seed;
  return GenerateRandomWalkDataset(options);
}

class ShardServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/shard_server_test_db";
    std::filesystem::remove_all(dir_);
    ShardedEngineOptions options;
    options.num_shards = kNumShards;
    options.partitioner = PartitionerKind::kRange;
    const ShardedEngine built(WalkDataset(), options);
    ASSERT_TRUE(built.Save(dir_).ok());
    ASSERT_TRUE(ShardedEngine::Open(dir_, options, &sharded_).ok());
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<ShardServer> StartServer(
      std::vector<uint32_t> serve_shards) {
    ShardServerOptions options;
    options.db_dir = dir_;
    options.serve_shards = std::move(serve_shards);
    options.group = 1;
    options.replica = 2;
    options.server.io_timeout_ms = 50;
    std::unique_ptr<ShardServer> server;
    const Status status = ShardServer::Create(std::move(options), &server);
    EXPECT_TRUE(status.ok()) << status.ToString();
    if (server != nullptr) {
      EXPECT_TRUE(server->Start().ok());
    }
    return server;
  }

  WireClient MakeClient(const ShardServer& server) {
    WireClientOptions options;
    options.port = server.port();
    options.timeout_ms = 5000;
    options.client_id = "shard-server-test";
    return WireClient(options);
  }

  static JsonValue ShardsArray(std::initializer_list<int64_t> shards) {
    JsonValue array = JsonValue::Array();
    for (const int64_t shard : shards) array.Add(JsonValue::Int(shard));
    return array;
  }

  std::string dir_;
  std::unique_ptr<ShardedEngine> sharded_;
};

TEST_F(ShardServerTest, RejectsUnknownShardAtCreate) {
  ShardServerOptions options;
  options.db_dir = dir_;
  options.serve_shards = {0, 99};
  std::unique_ptr<ShardServer> server;
  EXPECT_FALSE(ShardServer::Create(std::move(options), &server).ok());
}

TEST_F(ShardServerTest, HelloReportsIdentityShardsAndExactBounds) {
  auto server = StartServer({0, 2});
  WireClient client = MakeClient(*server);
  JsonValue info;
  ASSERT_TRUE(client.Connect(&info).ok());

  EXPECT_EQ(info.GetString("role", ""), "shard-server");
  EXPECT_EQ(info.GetInt("group", -1), 1);
  EXPECT_EQ(info.GetInt("replica", -1), 2);
  EXPECT_EQ(info.GetInt("num_shards", -1),
            static_cast<int64_t>(kNumShards));
  EXPECT_EQ(info.GetString("partitioner", ""), "range");

  const JsonValue* shards = info.Find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->size(), 2u);
  for (size_t i = 0; i < shards->size(); ++i) {
    const JsonValue& item = shards->at(i);
    const auto shard = static_cast<size_t>(item.GetInt("shard", -1));
    ASSERT_LT(shard, kNumShards);
    EXPECT_EQ(item.GetInt("sequences", -1),
              static_cast<int64_t>(sharded_->shard(shard).dataset().size()));
    // The MBR the router will prune against must be bit-identical to
    // the in-process engine's live-only bounds.
    const ShardFeatureBounds& expected = sharded_->shard_bounds(shard);
    const JsonValue* mbr = item.Find("mbr");
    ASSERT_NE(mbr, nullptr);
    ASSERT_TRUE(expected.valid);
    EXPECT_EQ(mbr->Render(), RectToJson(expected.mbr).Render());
  }
}

TEST_F(ShardServerTest, RangeMergesRemapsAndSortsExactly) {
  auto server = StartServer({0, 1, 2});
  WireClient client = MakeClient(*server);

  const Engine single(WalkDataset(), EngineOptions{});
  const auto queries = GenerateQueryWorkload(
      single.dataset(), QueryWorkloadOptions{.num_queries = 4, .seed = 7});

  for (const Sequence& query : queries) {
    for (const double epsilon : {0.1, 0.3}) {
      JsonValue request = JsonValue::Object();
      request.Set("shards", ShardsArray({0, 1, 2}));
      request.Set("method", JsonValue::Str("TW-Sim-Search"));
      request.Set("epsilon", JsonValue::Double(epsilon));
      request.Set("query", SequenceToJson(query));
      JsonValue response;
      ASSERT_TRUE(
          client.Call(WireType::kRange, request, &response).ok());

      // Matches: global ids, ascending — the single-engine answer.
      std::vector<SequenceId> expected =
          single.Search(query, epsilon).matches;
      std::sort(expected.begin(), expected.end());
      const JsonValue* matches = response.Find("matches");
      ASSERT_NE(matches, nullptr);
      std::vector<SequenceId> got;
      for (const JsonValue& id : matches->items()) {
        got.push_back(id.AsInt());
      }
      EXPECT_EQ(got, expected);

      // num_candidates: summed over the REQUESTED shards, exactly the
      // per-shard engines' counts.
      size_t expected_candidates = 0;
      for (size_t shard = 0; shard < kNumShards; ++shard) {
        expected_candidates +=
            sharded_->shard(shard).Search(query, epsilon).num_candidates;
      }
      EXPECT_EQ(response.GetInt("num_candidates", -1),
                static_cast<int64_t>(expected_candidates));

      // Cost crossed the wire.
      const JsonValue* cost = response.Find("cost");
      ASSERT_NE(cost, nullptr);
      SearchCost decoded;
      ASSERT_TRUE(JsonToCost(*cost, &decoded).ok());
      EXPECT_GT(decoded.dtw_evals + decoded.lb_evals, 0u);
    }
  }
}

TEST_F(ShardServerTest, RangeOverSubsetOnlyTouchesRequestedShards) {
  auto server = StartServer({0, 2});
  WireClient client = MakeClient(*server);
  const auto queries = GenerateQueryWorkload(
      sharded_->shard(0).dataset(),
      QueryWorkloadOptions{.num_queries = 2, .seed = 9});

  JsonValue request = JsonValue::Object();
  request.Set("shards", ShardsArray({0}));
  request.Set("method", JsonValue::Str("TW-Sim-Search"));
  request.Set("epsilon", JsonValue::Double(0.25));
  request.Set("query", SequenceToJson(queries.front()));
  JsonValue response;
  ASSERT_TRUE(client.Call(WireType::kRange, request, &response).ok());
  EXPECT_EQ(
      response.GetInt("num_candidates", -1),
      static_cast<int64_t>(
          sharded_->shard(0).Search(queries.front(), 0.25).num_candidates));
}

TEST_F(ShardServerTest, KnnMatchesInProcessAndHonorsSeedBound) {
  auto server = StartServer({0, 1, 2});
  WireClient client = MakeClient(*server);
  const auto queries = GenerateQueryWorkload(
      sharded_->shard(0).dataset(),
      QueryWorkloadOptions{.num_queries = 3, .seed = 11});

  for (const Sequence& query : queries) {
    for (const size_t k : {1u, 3u}) {
      JsonValue request = JsonValue::Object();
      request.Set("shards", ShardsArray({0, 1, 2}));
      request.Set("k", JsonValue::Int(static_cast<int64_t>(k)));
      request.Set("query", SequenceToJson(query));
      JsonValue response;
      ASSERT_TRUE(client.Call(WireType::kKnn, request, &response).ok());

      const KnnResult expected = sharded_->SearchKnn(query, k);
      const JsonValue* neighbors = response.Find("neighbors");
      ASSERT_NE(neighbors, nullptr);
      std::vector<KnnMatch> got;
      ASSERT_TRUE(JsonToKnnMatches(*neighbors, &got).ok());
      ASSERT_EQ(got.size(), expected.neighbors.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected.neighbors[i].id);
        EXPECT_EQ(got[i].distance, expected.neighbors[i].distance)
            << "distance must cross the wire bit-identically";
      }

      // Seeding the k-th distance as the wave bound must not lose any
      // of the top-k (strictly-greater pruning keeps ties at the
      // bound).
      if (!expected.neighbors.empty()) {
        JsonValue bounded = JsonValue::Object();
        bounded.Set("shards", ShardsArray({0, 1, 2}));
        bounded.Set("k", JsonValue::Int(static_cast<int64_t>(k)));
        bounded.Set("query", SequenceToJson(query));
        bounded.Set("bound",
                    JsonValue::Double(expected.neighbors.back().distance));
        JsonValue bounded_response;
        ASSERT_TRUE(
            client.Call(WireType::kKnn, bounded, &bounded_response).ok());
        std::vector<KnnMatch> bounded_got;
        ASSERT_TRUE(JsonToKnnMatches(*bounded_response.Find("neighbors"),
                                     &bounded_got)
                        .ok());
        ASSERT_EQ(bounded_got.size(), expected.neighbors.size());
        for (size_t i = 0; i < bounded_got.size(); ++i) {
          EXPECT_EQ(bounded_got[i].id, expected.neighbors[i].id);
          EXPECT_EQ(bounded_got[i].distance, expected.neighbors[i].distance);
        }
      }
    }
  }
}

TEST_F(ShardServerTest, MalformedRequestsAreTypedErrors) {
  auto server = StartServer({0, 2});
  WireClient client = MakeClient(*server);
  JsonValue response;

  {  // unserved shard
    JsonValue request = JsonValue::Object();
    request.Set("shards", ShardsArray({1}));
    request.Set("method", JsonValue::Str("TW-Sim-Search"));
    request.Set("epsilon", JsonValue::Double(0.1));
    request.Set("query", SequenceToJson(sharded_->shard(0).dataset()[0]));
    EXPECT_EQ(client.Call(WireType::kRange, request, &response).code(),
              StatusCode::kInvalidArgument);
  }
  {  // unknown method
    JsonValue request = JsonValue::Object();
    request.Set("shards", ShardsArray({0}));
    request.Set("method", JsonValue::Str("bogus"));
    request.Set("epsilon", JsonValue::Double(0.1));
    request.Set("query", SequenceToJson(sharded_->shard(0).dataset()[0]));
    EXPECT_EQ(client.Call(WireType::kRange, request, &response).code(),
              StatusCode::kInvalidArgument);
  }
  {  // ST-Filter on a server started without the suffix tree: a typed
     // error, never a crash.
    JsonValue request = JsonValue::Object();
    request.Set("shards", ShardsArray({0}));
    request.Set("method", JsonValue::Str("ST-Filter"));
    request.Set("epsilon", JsonValue::Double(0.1));
    request.Set("query", SequenceToJson(sharded_->shard(0).dataset()[0]));
    EXPECT_EQ(client.Call(WireType::kRange, request, &response).code(),
              StatusCode::kInvalidArgument);
  }
  {  // negative epsilon
    JsonValue request = JsonValue::Object();
    request.Set("shards", ShardsArray({0}));
    request.Set("method", JsonValue::Str("TW-Sim-Search"));
    request.Set("epsilon", JsonValue::Double(-1.0));
    request.Set("query", SequenceToJson(sharded_->shard(0).dataset()[0]));
    EXPECT_EQ(client.Call(WireType::kRange, request, &response).code(),
              StatusCode::kInvalidArgument);
  }
  {  // missing query
    JsonValue request = JsonValue::Object();
    request.Set("shards", ShardsArray({0}));
    request.Set("k", JsonValue::Int(1));
    EXPECT_EQ(client.Call(WireType::kKnn, request, &response).code(),
              StatusCode::kInvalidArgument);
  }
  {  // k = 0
    JsonValue request = JsonValue::Object();
    request.Set("shards", ShardsArray({0}));
    request.Set("k", JsonValue::Int(0));
    request.Set("query", SequenceToJson(sharded_->shard(0).dataset()[0]));
    EXPECT_EQ(client.Call(WireType::kKnn, request, &response).code(),
              StatusCode::kInvalidArgument);
  }
}

TEST_F(ShardServerTest, TracedRangeShipsSpans) {
  auto server = StartServer({0, 1, 2});
  WireClient client = MakeClient(*server);
  JsonValue request = JsonValue::Object();
  request.Set("shards", ShardsArray({0, 1, 2}));
  request.Set("method", JsonValue::Str("TW-Sim-Search"));
  request.Set("epsilon", JsonValue::Double(0.2));
  request.Set("query", SequenceToJson(sharded_->shard(0).dataset()[0]));
  request.Set("trace", JsonValue::Bool(true));
  JsonValue response;
  ASSERT_TRUE(client.Call(WireType::kRange, request, &response).ok());
  const JsonValue* spans_json = response.Find("spans");
  ASSERT_NE(spans_json, nullptr);
  std::vector<TraceSpan> spans;
  ASSERT_TRUE(JsonToSpans(*spans_json, &spans).ok());
  // One "shard" span per requested shard, each carrying its index.
  size_t shard_spans = 0;
  for (const TraceSpan& span : spans) {
    if (span.name == "shard") ++shard_spans;
  }
  EXPECT_EQ(shard_spans, kNumShards);
}

TEST_F(ShardServerTest, ServedAccessorAndDrain) {
  auto server = StartServer({0, 2});
  EXPECT_EQ(server->group(), 1);
  EXPECT_EQ(server->replica(), 2);
  EXPECT_EQ(server->manifest_num_shards(), kNumShards);
  EXPECT_EQ(server->partitioner(), PartitionerKind::kRange);
  const auto served = server->served();
  ASSERT_EQ(served.size(), 2u);
  EXPECT_EQ(served[0].shard, 0u);
  EXPECT_EQ(served[1].shard, 2u);
  EXPECT_EQ(served[0].sequences, sharded_->shard(0).dataset().size());
  EXPECT_EQ(served[0].live, sharded_->shard(0).live_size());

  WireClient client = MakeClient(*server);
  JsonValue response;
  ASSERT_TRUE(
      client.Call(WireType::kHealth, JsonValue::Object(), &response).ok());

  server->RequestDrain();
  EXPECT_TRUE(server->draining());
  JsonValue request = JsonValue::Object();
  request.Set("shards", ShardsArray({0}));
  request.Set("method", JsonValue::Str("TW-Sim-Search"));
  request.Set("epsilon", JsonValue::Double(0.1));
  request.Set("query", SequenceToJson(sharded_->shard(0).dataset()[0]));
  EXPECT_EQ(client.Call(WireType::kRange, request, &response).code(),
            StatusCode::kUnavailable);
  server->WaitIdle();
  server->Stop();
}

}  // namespace
}  // namespace warpindex
