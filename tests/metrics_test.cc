// Metrics registry: counters, histogram bucketing, boundary recipes, the
// Prometheus/JSON exporters, and the engine's per-query recording.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/engine.h"
#include "obs/exporters.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

TEST(CounterTest, IncrementsByDelta) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(HistogramTest, BucketsByInclusiveUpperEdge) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);   // bucket 0 (<= 1)
  h.Observe(1.0);   // bucket 0 (edges are inclusive)
  h.Observe(1.5);   // bucket 1
  h.Observe(4.0);   // bucket 2
  h.Observe(100.0); // overflow
  const Histogram::Snapshot snap = h.TakeSnapshot();
  ASSERT_EQ(snap.bucket_counts.size(), 4u);
  EXPECT_EQ(snap.bucket_counts[0], 2u);
  EXPECT_EQ(snap.bucket_counts[1], 1u);
  EXPECT_EQ(snap.bucket_counts[2], 1u);
  EXPECT_EQ(snap.bucket_counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
  EXPECT_DOUBLE_EQ(snap.stats.min(), 0.5);
  EXPECT_DOUBLE_EQ(snap.stats.max(), 100.0);
}

TEST(HistogramTest, BoundaryRecipes) {
  const std::vector<double> exp = ExponentialBoundaries(1.0, 2.0, 4);
  ASSERT_EQ(exp.size(), 4u);
  EXPECT_DOUBLE_EQ(exp[0], 1.0);
  EXPECT_DOUBLE_EQ(exp[3], 8.0);
  const std::vector<double> lin = LinearBoundaries(0.5, 0.25, 3);
  ASSERT_EQ(lin.size(), 3u);
  EXPECT_DOUBLE_EQ(lin[0], 0.5);
  EXPECT_DOUBLE_EQ(lin[2], 1.0);
}

TEST(MetricsRegistryTest, GetOrCreateReturnsStableHandles) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x_total", "first help");
  Counter* b = registry.GetCounter("x_total", "ignored help");
  EXPECT_EQ(a, b);
  a->Increment(3);

  Histogram* h1 = registry.GetHistogram("y_ms", {1.0, 2.0}, "lat");
  Histogram* h2 = registry.GetHistogram("y_ms", {99.0});  // reused, ignored
  EXPECT_EQ(h1, h2);
  ASSERT_EQ(h1->boundaries().size(), 2u);
  h1->Observe(1.5);

  const MetricsRegistry::Snapshot snap = registry.TakeSnapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "x_total");
  EXPECT_EQ(snap.counters[0].help, "first help");
  EXPECT_EQ(snap.counters[0].value, 3u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "y_ms");
  EXPECT_EQ(snap.histograms[0].snapshot.stats.count(), 1u);
}

TEST(MetricsRegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(GaugeTest, MovesBothWays) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.Increment();
  g.Increment();
  g.Decrement();
  EXPECT_EQ(g.value(), 1);
  g.Set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(MetricsRegistryTest, GaugeHandlesAreStable) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("warp_inflight", "in-flight queries");
  EXPECT_EQ(registry.GetGauge("warp_inflight"), g);
  g->Increment();
  const MetricsRegistry::Snapshot snapshot = registry.TakeSnapshot();
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].name, "warp_inflight");
  EXPECT_EQ(snapshot.gauges[0].help, "in-flight queries");
  EXPECT_EQ(snapshot.gauges[0].value, 1);
}

TEST(MetricsExportTest, GaugeInBothExporters) {
  MetricsRegistry registry;
  registry.GetGauge("warp_inflight", "in-flight queries")->Set(3);
  const MetricsRegistry::Snapshot snapshot = registry.TakeSnapshot();
  const std::string text = MetricsToPrometheusText(snapshot);
  EXPECT_NE(text.find("# TYPE warp_inflight gauge"), std::string::npos);
  EXPECT_NE(text.find("warp_inflight 3"), std::string::npos);
  const std::string json = MetricsToJson(snapshot);
  EXPECT_NE(json.find("\"warp_inflight\":3"), std::string::npos);
}

TEST(MetricsExportTest, PrometheusTextFormat) {
  MetricsRegistry registry;
  registry.GetCounter("warp_queries_total", "queries served")
      ->Increment(7);
  Histogram* h = registry.GetHistogram("warp_latency_ms", {1.0, 10.0},
                                       "per-query latency");
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(50.0);

  const std::string text =
      MetricsToPrometheusText(registry.TakeSnapshot());
  EXPECT_NE(text.find("# HELP warp_queries_total queries served"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE warp_queries_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("warp_queries_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE warp_latency_ms histogram"),
            std::string::npos);
  // Buckets are cumulative in the exposition format.
  EXPECT_NE(text.find("warp_latency_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("warp_latency_ms_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("warp_latency_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("warp_latency_ms_count 3"), std::string::npos);
  EXPECT_NE(text.find("warp_latency_ms_sum 55.5"), std::string::npos);
  // Estimated-quantile gauges ride along with every native histogram
  // (p50 lands in the (1,10] bucket whose midpoint is 5.5; p99/p999
  // land in the overflow bucket, which clamps to the observed max).
  EXPECT_NE(text.find("# TYPE warp_latency_ms_p50 gauge"),
            std::string::npos);
  EXPECT_NE(text.find("warp_latency_ms_p50 5.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE warp_latency_ms_p99 gauge"),
            std::string::npos);
  EXPECT_NE(text.find("warp_latency_ms_p99 50"), std::string::npos);
  EXPECT_NE(text.find("# TYPE warp_latency_ms_p999 gauge"),
            std::string::npos);
  EXPECT_NE(text.find("warp_latency_ms_p999 50"), std::string::npos);
}

TEST(MetricsExportTest, ProcessSelfMetricsInBothExporters) {
  MetricsRegistry registry;
  registry.GetCounter("warp_queries_total")->Increment(1);
  ProcessSelfMetrics process;
  process.valid = true;
  process.cpu_seconds_total = 12.5;
  process.resident_memory_bytes = 4096.0;
  process.open_fds = 17;
  process.start_time_seconds = 1234.5;

  const std::string text = MetricsToPrometheusText(
      registry.TakeSnapshot(), nullptr, &process);
  EXPECT_NE(text.find("# TYPE process_cpu_seconds_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("process_cpu_seconds_total 12.5"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE process_resident_memory_bytes gauge"),
            std::string::npos);
  EXPECT_NE(text.find("process_resident_memory_bytes 4096"),
            std::string::npos);
  EXPECT_NE(text.find("process_open_fds 17"), std::string::npos);
  EXPECT_NE(text.find("process_start_time_seconds 1234.5"),
            std::string::npos);

  const std::string json =
      MetricsToJson(registry.TakeSnapshot(), nullptr, &process);
  EXPECT_NE(json.find("\"process\""), std::string::npos);
  EXPECT_NE(json.find("\"cpu_seconds_total\":12.5"), std::string::npos);
  EXPECT_NE(json.find("\"open_fds\":17"), std::string::npos);

  // An invalid reading (no /proc) omits the block instead of zeros.
  process.valid = false;
  const std::string without = MetricsToPrometheusText(
      registry.TakeSnapshot(), nullptr, &process);
  EXPECT_EQ(without.find("process_cpu_seconds_total"), std::string::npos);
}

TEST(MetricsExportTest, JsonSnapshotFormat) {
  MetricsRegistry registry;
  registry.GetCounter("a_total")->Increment(2);
  registry.GetHistogram("b_ms", {1.0})->Observe(3.0);
  const std::string json = MetricsToJson(registry.TakeSnapshot());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"a_total\""), std::string::npos);
  EXPECT_NE(json.find("\"b_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":3"), std::string::npos);
}

TEST(EngineMetricsTest, QueriesLandInTheConfiguredRegistry) {
  RandomWalkOptions rw;
  rw.num_sequences = 60;
  rw.min_length = 40;
  rw.max_length = 80;
  auto registry = std::make_unique<MetricsRegistry>();
  EngineOptions options;
  options.metrics = registry.get();
  options.index_buffer_pages = 32;
  const Engine engine(GenerateRandomWalkDataset(rw), options);

  const Sequence query = PerturbSequence(engine.dataset()[4], 5);
  const SearchResult result = engine.Search(query, 3.0);
  engine.Search(query, 3.0);
  engine.SearchKnn(query, 3);

  // Two range queries plus one kNN query.
  EXPECT_EQ(
      engine.metrics().GetCounter("warpindex_queries_total")->value(),
      3u);
  const uint64_t matches =
      engine.metrics().GetCounter("warpindex_query_matches_total")->value();
  EXPECT_EQ(matches, 2 * result.matches.size());
  EXPECT_EQ(engine.metrics()
                .GetHistogram("warpindex_query_latency_ms", {})
                ->count(),
            2u);
  EXPECT_EQ(engine.metrics()
                .GetHistogram("warpindex_knn_latency_ms", {})
                ->count(),
            1u);
  // The warmed index pool records activity into the registry too.
  const uint64_t hits =
      engine.metrics()
          .GetCounter("warpindex_index_pool_hits_total")
          ->value();
  const uint64_t misses =
      engine.metrics()
          .GetCounter("warpindex_index_pool_misses_total")
          ->value();
  EXPECT_GT(hits + misses, 0u);

  // None of this leaked into the global registry.
  const MetricsRegistry::Snapshot global =
      MetricsRegistry::Global().TakeSnapshot();
  for (const auto& counter : global.counters) {
    if (counter.name == "warpindex_queries_total") {
      EXPECT_EQ(counter.value, 0u);
    }
  }
}

TEST(MetricNameTest, GrammarMatchesPrometheus) {
  EXPECT_TRUE(IsValidMetricName("warpindex_queries_total"));
  EXPECT_TRUE(IsValidMetricName("a"));
  EXPECT_TRUE(IsValidMetricName("_leading_underscore"));
  EXPECT_TRUE(IsValidMetricName("ns:subsystem:name"));
  EXPECT_TRUE(IsValidMetricName("Name9"));
  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("9starts_with_digit"));
  EXPECT_FALSE(IsValidMetricName("has-dash"));
  EXPECT_FALSE(IsValidMetricName("has space"));
  EXPECT_FALSE(IsValidMetricName("newline\nname"));
  EXPECT_FALSE(IsValidMetricName("quote\"name"));
}

TEST(MetricNameTest, InvalidNamesGetSinksAndNeverExport) {
  MetricsRegistry registry;
  Counter* bad_counter = registry.GetCounter("bad name");
  ASSERT_NE(bad_counter, nullptr);  // instrumented code keeps working
  bad_counter->Increment(7);
  Gauge* bad_gauge = registry.GetGauge("also-bad");
  ASSERT_NE(bad_gauge, nullptr);
  Histogram* bad_histogram = registry.GetHistogram("3rd\nbad", {1.0});
  ASSERT_NE(bad_histogram, nullptr);
  bad_histogram->Observe(0.5);
  EXPECT_EQ(registry.rejected_names(), 3u);

  // A good metric registered alongside still exports; the sinks don't.
  registry.GetCounter("good_total")->Increment();
  const MetricsRegistry::Snapshot snapshot = registry.TakeSnapshot();
  EXPECT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].name, "good_total");
  EXPECT_TRUE(snapshot.gauges.empty());
  EXPECT_TRUE(snapshot.histograms.empty());
  const std::string text = MetricsToPrometheusText(snapshot);
  EXPECT_EQ(text.find("bad"), std::string::npos);
}

TEST(PrometheusEscapingTest, HelpAndLabelValues) {
  EXPECT_EQ(PrometheusEscapeHelp("plain"), "plain");
  EXPECT_EQ(PrometheusEscapeHelp("a\\b\nc"), "a\\\\b\\nc");
  // HELP text keeps quotes verbatim; label values escape them.
  EXPECT_EQ(PrometheusEscapeHelp("say \"hi\""), "say \"hi\"");
  EXPECT_EQ(PrometheusEscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(PrometheusEscapeLabelValue("a\\b\nc"), "a\\\\b\\nc");
}

TEST(PrometheusEscapingTest, HelpWithNewlineStaysOneLine) {
  MetricsRegistry registry;
  registry.GetCounter("evil_total", "line one\nline two")->Increment();
  const std::string text =
      MetricsToPrometheusText(registry.TakeSnapshot());
  // Every line is either a comment or a sample — an unescaped newline in
  // HELP would produce a "line two" line that parses as garbage.
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string line = text.substr(pos, end - pos);
    if (!line.empty()) {
      EXPECT_TRUE(line[0] == '#' || line.rfind("evil_total", 0) == 0)
          << line;
    }
    pos = end + 1;
  }
  EXPECT_NE(text.find("line one\\nline two"), std::string::npos);
}

TEST(HistogramPercentileTest, EstimatesFromCumulativeBuckets) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 100; ++i) {
    h.Observe(0.5 + static_cast<double>(i % 4));  // 0.5, 1.5, 2.5, 3.5
  }
  const Histogram::Snapshot snapshot = h.TakeSnapshot();
  // Quarter of the mass in each of the first three buckets' ranges.
  EXPECT_GT(snapshot.EstimatePercentile(0.99), 3.0);
  EXPECT_LE(snapshot.EstimatePercentile(0.99), 4.0);
  EXPECT_LE(snapshot.EstimatePercentile(0.10), 1.0);
  // Estimates never leave the observed range.
  EXPECT_GE(snapshot.EstimatePercentile(0.0), 0.5);
  EXPECT_LE(snapshot.EstimatePercentile(1.0), 3.5);
  // Monotone in p.
  EXPECT_LE(snapshot.EstimatePercentile(0.5),
            snapshot.EstimatePercentile(0.9));
  EXPECT_LE(snapshot.EstimatePercentile(0.9),
            snapshot.EstimatePercentile(0.999));
}

TEST(HistogramPercentileTest, OverflowBucketClampsToMax) {
  Histogram h({1.0});
  h.Observe(100.0);
  h.Observe(200.0);
  const Histogram::Snapshot snapshot = h.TakeSnapshot();
  EXPECT_DOUBLE_EQ(snapshot.EstimatePercentile(0.999), 200.0);
}

TEST(HistogramPercentileTest, EmptyHistogramIsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.TakeSnapshot().EstimatePercentile(0.99), 0.0);
}

TEST(HistogramPercentileTest, DefaultSnapshotIsZeroForAnyP) {
  // A default-constructed snapshot has no buckets at all; the count guard
  // must fire before any bucket indexing.
  const Histogram::Snapshot snapshot;
  EXPECT_DOUBLE_EQ(snapshot.EstimatePercentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(snapshot.EstimatePercentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snapshot.EstimatePercentile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(snapshot.EstimatePercentile(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(snapshot.EstimatePercentile(2.0), 0.0);
}

TEST(HistogramPercentileTest, SingleSampleReportsThatSample) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(1.5);
  const Histogram::Snapshot snapshot = h.TakeSnapshot();
  // Every percentile of a one-sample distribution is that sample; the
  // interpolation must not stray outside [min, max] = [1.5, 1.5].
  for (const double p : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(snapshot.EstimatePercentile(p), 1.5) << "p=" << p;
  }
}

TEST(HistogramPercentileTest, JsonExportCarriesQuantiles) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("latency_ms", {1.0, 10.0});
  for (int i = 0; i < 50; ++i) {
    h->Observe(0.5);
  }
  const std::string json = MetricsToJson(registry.TakeSnapshot());
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"p999\":"), std::string::npos);
}

}  // namespace
}  // namespace warpindex
