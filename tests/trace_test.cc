// Tracing layer: span-tree mechanics, the traced engine search path
// (acceptance: stage spans must account for the query's wall time), and
// the JSON-lines exporter.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "obs/exporters.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

TEST(TraceTest, SpanTreeStructure) {
  Trace trace;
  const size_t root = trace.BeginSpan("query");
  const size_t child_a = trace.BeginSpan("rtree_search");
  trace.EndSpan(child_a);
  const size_t child_b = trace.BeginSpan("dtw_postfilter");
  const size_t grandchild = trace.BeginSpan("inner");
  trace.EndSpan(grandchild);
  trace.EndSpan(child_b);
  trace.EndSpan(root);

  ASSERT_EQ(trace.spans().size(), 4u);
  EXPECT_EQ(trace.open_depth(), 0u);
  EXPECT_EQ(trace.spans()[root].parent, -1);
  EXPECT_EQ(trace.spans()[child_a].parent, static_cast<int>(root));
  EXPECT_EQ(trace.spans()[child_b].parent, static_cast<int>(root));
  EXPECT_EQ(trace.spans()[grandchild].parent, static_cast<int>(child_b));
  // Children are contained in the root's duration.
  EXPECT_GE(trace.spans()[root].duration_ms,
            trace.spans()[child_a].duration_ms +
                trace.spans()[child_b].duration_ms);
  EXPECT_GE(trace.spans()[child_b].duration_ms,
            trace.spans()[grandchild].duration_ms);
}

TEST(TraceTest, CountersAttachToInnermostOpenSpan) {
  Trace trace;
  const size_t root = trace.BeginSpan("query");
  trace.AddCounter("pages_read", 3);
  const size_t child = trace.BeginSpan("candidate_fetch");
  trace.AddCounter("pages_read", 2);
  trace.AddCounter("pages_read", 2);
  trace.EndSpan(child);
  trace.AddCounter("dtw_cells", 100);
  trace.EndSpan(root);

  ASSERT_EQ(trace.spans()[child].counters.size(), 1u);
  EXPECT_EQ(trace.spans()[child].counters[0].first, "pages_read");
  EXPECT_EQ(trace.spans()[child].counters[0].second, 4.0);
  ASSERT_EQ(trace.spans()[root].counters.size(), 2u);
  EXPECT_EQ(trace.spans()[root].counters[0].second, 3.0);
  EXPECT_EQ(trace.spans()[root].counters[1].first, "dtw_cells");
}

TEST(TraceTest, ScopedSpanNullTraceIsNoop) {
  ScopedSpan span(nullptr, "anything");
  TraceCounter(nullptr, "anything", 1.0);  // must not crash
}

TEST(TraceTest, TotalMillisSumsSameNamedSpans) {
  Trace trace;
  for (int i = 0; i < 3; ++i) {
    trace.EndSpan(trace.BeginSpan("stage"));
  }
  EXPECT_GE(trace.TotalMillis("stage"), 0.0);
  EXPECT_EQ(trace.TotalMillis("absent"), 0.0);
}

class TracedEngineTest : public testing::Test {
 protected:
  Engine* MakeEngine(bool lb_cascade, size_t pool_pages = 0) {
    RandomWalkOptions rw;
    rw.num_sequences = 200;
    rw.min_length = 100;
    rw.max_length = 200;
    EngineOptions options;
    options.lb_cascade = lb_cascade;
    options.index_buffer_pages = pool_pages;
    options.metrics = &registry_;  // keep tests out of the global registry
    return new Engine(GenerateRandomWalkDataset(rw), options);
  }

 private:
  MetricsRegistry registry_;
};

// Acceptance criterion: a traced Engine::Search produces a span tree
// whose stage spans sum to within 10% of SearchCost::wall_ms. A large
// epsilon makes the query heavy (every candidate is refined with a full
// DTW), so the untimed residue (feature extraction, vector setup) is
// negligible against the staged work.
TEST_F(TracedEngineTest, StageSpansAccountForWallTime) {
  std::unique_ptr<Engine> engine(MakeEngine(/*lb_cascade=*/false));
  const Sequence query =
      PerturbSequence(engine->dataset()[7], /*seed=*/42);

  Trace trace;
  const SearchResult result = engine->Search(query, /*epsilon=*/10.0,
                                             &trace);
  ASSERT_GT(result.num_candidates, 0u);
  ASSERT_GT(result.cost.wall_ms, 0.0);
  EXPECT_EQ(trace.open_depth(), 0u);

  // The span tree has a `query` root with the stage spans below it.
  ASSERT_FALSE(trace.spans().empty());
  EXPECT_EQ(trace.spans()[0].name, "query");
  EXPECT_GT(trace.TotalMillis(kStageRtreeSearch), 0.0);
  EXPECT_GT(trace.TotalMillis(kStageDtwPostfilter), 0.0);

  const double staged = trace.TotalMillis(kStageRtreeSearch) +
                        trace.TotalMillis(kStageCandidateFetch) +
                        trace.TotalMillis(kStageLbYiCascade) +
                        trace.TotalMillis(kStageDtwPostfilter);
  EXPECT_GT(staged, 0.9 * result.cost.wall_ms);
  EXPECT_LE(staged, 1.1 * result.cost.wall_ms);

  // The always-on StageTimings breakdown matches the spans' story.
  EXPECT_GT(result.cost.stages.TotalMillis(), 0.9 * result.cost.wall_ms);
  EXPECT_LE(result.cost.stages.TotalMillis(), 1.1 * result.cost.wall_ms);
  EXPECT_GT(result.cost.stages.Get(kStageDtwPostfilter), 0.0);
}

TEST_F(TracedEngineTest, LbCascadeStageAppearsWhenEnabled) {
  std::unique_ptr<Engine> engine(MakeEngine(/*lb_cascade=*/true));
  const Sequence query =
      PerturbSequence(engine->dataset()[3], /*seed=*/7);
  Trace trace;
  const SearchResult result = engine->Search(query, 10.0, &trace);
  ASSERT_GT(result.cost.lb_evals, 0u);
  EXPECT_GT(trace.TotalMillis(kStageLbYiCascade), 0.0);
  EXPECT_GT(result.cost.stages.Get(kStageLbYiCascade), 0.0);
}

TEST_F(TracedEngineTest, CountersRecordPagesAndCells) {
  std::unique_ptr<Engine> engine(MakeEngine(/*lb_cascade=*/false));
  const Sequence query = PerturbSequence(engine->dataset()[0], 1);
  Trace trace;
  const SearchResult result = engine->Search(query, 5.0, &trace);

  double traced_pages = 0.0;
  double traced_cells = 0.0;
  for (const TraceSpan& span : trace.spans()) {
    for (const auto& [name, value] : span.counters) {
      if (name == "pages_read") {
        traced_pages += value;
      } else if (name == "dtw_cells") {
        traced_cells += value;
      }
    }
  }
  // Data-page reads of the fetch stage (index pages are charged as
  // random reads, not store pages).
  EXPECT_EQ(traced_pages,
            static_cast<double>(result.cost.io.random_page_reads -
                                result.cost.index_nodes));
  EXPECT_EQ(traced_cells, static_cast<double>(result.cost.dtw_cells));
}

TEST_F(TracedEngineTest, BufferPoolCountersReachTrace) {
  std::unique_ptr<Engine> engine(
      MakeEngine(/*lb_cascade=*/false, /*pool_pages=*/64));
  const Sequence query = PerturbSequence(engine->dataset()[0], 1);
  // Warm the pool, then trace: the second query should see hits.
  engine->Search(query, 1.0);
  Trace trace;
  engine->Search(query, 1.0, &trace);
  double hits = 0.0;
  for (const TraceSpan& span : trace.spans()) {
    for (const auto& [name, value] : span.counters) {
      if (name == "pool_hits") {
        hits += value;
      }
    }
  }
  EXPECT_GT(hits, 0.0);
}

TEST_F(TracedEngineTest, KnnSearchProducesRefineSpan) {
  std::unique_ptr<Engine> engine(MakeEngine(/*lb_cascade=*/false));
  const Sequence query = PerturbSequence(engine->dataset()[11], 3);
  Trace trace;
  const KnnResult result = engine->SearchKnn(query, 5, &trace);
  EXPECT_EQ(result.neighbors.size(), 5u);
  EXPECT_EQ(trace.spans()[0].name, "knn_query");
  EXPECT_GT(trace.TotalMillis(kStageKnnRefine), 0.0);
  EXPECT_GT(result.cost.stages.Get(kStageKnnRefine), 0.0);
}

TEST_F(TracedEngineTest, UntracedSearchRecordsStagesButNoSpans) {
  std::unique_ptr<Engine> engine(MakeEngine(/*lb_cascade=*/false));
  const Sequence query = PerturbSequence(engine->dataset()[2], 9);
  const SearchResult result = engine->Search(query, 2.0);
  EXPECT_FALSE(result.cost.stages.empty());
}

// Crude JSON-lines validation: every line is one object with balanced
// braces and quotes outside of string literals.
void ExpectValidJsonLine(const std::string& line) {
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : line) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      ASSERT_GE(depth, 0) << line;
    }
  }
  EXPECT_EQ(depth, 0) << line;
  EXPECT_FALSE(in_string) << line;
}

TEST_F(TracedEngineTest, JsonLinesExportRoundTrip) {
  std::unique_ptr<Engine> engine(MakeEngine(/*lb_cascade=*/true));
  const Sequence query = PerturbSequence(engine->dataset()[5], 77);
  Trace trace;
  engine->Search(query, 5.0, &trace);

  const std::string text = TraceToJsonLines(trace, /*query_id=*/5);
  std::istringstream lines(text);
  std::string line;
  size_t count = 0;
  while (std::getline(lines, line)) {
    ExpectValidJsonLine(line);
    EXPECT_NE(line.find("\"query\":5"), std::string::npos);
    EXPECT_NE(line.find("\"duration_ms\":"), std::string::npos);
    ++count;
  }
  EXPECT_EQ(count, trace.spans().size());
  EXPECT_NE(text.find("\"name\":\"rtree_search\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"dtw_postfilter\""), std::string::npos);

  // ExportTrace appends to a file.
  const std::string path = testing::TempDir() + "/trace_test.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(engine->ExportTrace(trace, path, 5).ok());
  ASSERT_TRUE(engine->ExportTrace(trace, path, 6).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  size_t file_lines = 0;
  while (std::getline(in, line)) {
    ExpectValidJsonLine(line);
    ++file_lines;
  }
  EXPECT_EQ(file_lines, 2 * trace.spans().size());
  std::remove(path.c_str());
}

TEST(TraceExportTest, EscapesSpecialCharacters) {
  Trace trace;
  const size_t span = trace.BeginSpan("weird \"name\"\n\\path");
  trace.EndSpan(span);
  const std::string text = TraceToJsonLines(trace);
  EXPECT_NE(text.find("weird \\\"name\\\"\\n\\\\path"),
            std::string::npos);
  ExpectValidJsonLine(text.substr(0, text.size() - 1));
}

// ---- Cross-thread stitching primitives (TraceContext / Adopt).

TEST(TraceIdTest, NewTraceIdsAreNonZeroAndDistinct) {
  const uint64_t a = NewTraceId();
  const uint64_t b = NewTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(TraceIdTest, HexRoundTrip) {
  EXPECT_EQ(TraceIdHex(0x1234abcd5678ef00ull), "1234abcd5678ef00");
  EXPECT_EQ(TraceIdHex(1), "0000000000000001");
  EXPECT_EQ(ParseTraceIdHex("1234abcd5678ef00"), 0x1234abcd5678ef00ull);
  EXPECT_EQ(ParseTraceIdHex("1234ABCD5678EF00"), 0x1234abcd5678ef00ull);
  EXPECT_EQ(ParseTraceIdHex("1"), 1u);
  for (uint64_t id : {NewTraceId(), NewTraceId(), uint64_t{42}}) {
    EXPECT_EQ(ParseTraceIdHex(TraceIdHex(id)), id);
  }
  // Malformed inputs map to the invalid id 0.
  EXPECT_EQ(ParseTraceIdHex(""), 0u);
  EXPECT_EQ(ParseTraceIdHex("xyz"), 0u);
  EXPECT_EQ(ParseTraceIdHex("12345678901234567"), 0u);  // 17 chars
  EXPECT_EQ(ParseTraceIdHex("12 4"), 0u);
}

TEST(TraceContextTest, DefaultContextIsInvalid) {
  TraceContext context;
  EXPECT_FALSE(context.valid());
  EXPECT_TRUE(context.sampled);
}

TEST(TraceContextTest, ChildTraceSharesIdAndClockOrigin) {
  Trace parent;
  const size_t root = parent.BeginSpan("scatter_gather");
  const TraceContext context = parent.ContextForSpan(root);
  EXPECT_TRUE(context.valid());
  EXPECT_EQ(context.trace_id, parent.trace_id());
  EXPECT_EQ(context.span_id, root);

  Trace child(context);
  EXPECT_EQ(child.trace_id(), parent.trace_id());
  const size_t sub = child.BeginSpan("shard");
  child.EndSpan(sub);
  parent.EndSpan(root);
  // Shared clock zero: the child's offset lies inside the parent span.
  EXPECT_GE(child.spans()[sub].start_ms, parent.spans()[root].start_ms);
  EXPECT_LE(child.spans()[sub].start_ms,
            parent.spans()[root].start_ms +
                parent.spans()[root].duration_ms);
}

TEST(TraceTest, ThreadTagStampsNewSpans) {
  Trace trace;
  const size_t before = trace.BeginSpan("untagged");
  trace.EndSpan(before);
  trace.SetThreadTag(/*shard=*/3, /*tid=*/2);
  const size_t tagged = trace.BeginSpan("shard");
  trace.EndSpan(tagged);
  EXPECT_EQ(trace.spans()[before].shard, -1);
  EXPECT_EQ(trace.spans()[before].tid, 0u);
  EXPECT_EQ(trace.spans()[tagged].shard, 3);
  EXPECT_EQ(trace.spans()[tagged].tid, 2u);
}

TEST(TraceTest, AppendSpanIngestsCompletedSpans) {
  Trace trace;
  TraceSpan root;
  root.name = "shard";
  root.start_ms = 1.0;
  root.duration_ms = 5.0;
  const size_t r = trace.AppendSpan(root);
  TraceSpan child;
  child.name = "inner";
  child.parent = static_cast<int>(r);
  trace.AppendSpan(child);
  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.spans()[1].parent, 0);
  EXPECT_EQ(trace.open_depth(), 0u);
}

TEST(TraceTest, AdoptReparentsRootsAndRebasesInternalLinks) {
  Trace parent;
  const size_t top = parent.BeginSpan("query");
  const size_t sg = parent.BeginSpan("scatter_gather");

  Trace child(parent.ContextForSpan(sg));
  child.SetThreadTag(1, 4);
  const size_t shard_span = child.BeginSpan("shard");
  child.AddCounter("shard_index", 1);
  const size_t inner = child.BeginSpan("rtree_search");
  child.EndSpan(inner);
  child.EndSpan(shard_span);

  parent.Adopt(sg, child);
  parent.EndSpan(sg);
  parent.EndSpan(top);

  ASSERT_EQ(parent.spans().size(), 4u);
  const TraceSpan& adopted_root = parent.spans()[2];
  const TraceSpan& adopted_inner = parent.spans()[3];
  // The child's root is re-parented under the scatter_gather span;
  // internal links are rebased past the parent's existing spans.
  EXPECT_EQ(adopted_root.name, "shard");
  EXPECT_EQ(adopted_root.parent, static_cast<int>(sg));
  EXPECT_EQ(adopted_inner.name, "rtree_search");
  EXPECT_EQ(adopted_inner.parent, 2);
  // Tags and counters travel verbatim.
  EXPECT_EQ(adopted_root.shard, 1);
  EXPECT_EQ(adopted_root.tid, 4u);
  ASSERT_EQ(adopted_root.counters.size(), 1u);
  EXPECT_EQ(adopted_root.counters[0].first, "shard_index");
}

TEST(TraceTest, AdoptingMultipleChildrenKeepsEverySubtree) {
  Trace parent;
  const size_t sg = parent.BeginSpan("scatter_gather");
  const TraceContext context = parent.ContextForSpan(sg);
  for (int s = 0; s < 3; ++s) {
    Trace child(context);
    child.SetThreadTag(s, static_cast<uint32_t>(s + 1));
    const size_t span = child.BeginSpan("shard");
    child.EndSpan(span);
    parent.Adopt(sg, child);
  }
  parent.EndSpan(sg);
  ASSERT_EQ(parent.spans().size(), 4u);
  for (int s = 0; s < 3; ++s) {
    const TraceSpan& span = parent.spans()[static_cast<size_t>(1 + s)];
    EXPECT_EQ(span.name, "shard");
    EXPECT_EQ(span.parent, static_cast<int>(sg));
    EXPECT_EQ(span.shard, s);
  }
}

// ---- Trace-event (Chrome/Perfetto) exporter.

// Builds a deterministic two-shard stitched trace without running
// queries or clocks (AppendSpan is the ingestion-side API).
Trace MakeStitchedTrace() {
  Trace trace;
  TraceSpan root;
  root.name = "query";
  root.start_ms = 0.0;
  root.duration_ms = 10.0;
  trace.AppendSpan(root);
  for (int s = 0; s < 2; ++s) {
    TraceSpan shard;
    shard.name = "shard";
    shard.parent = 0;
    shard.start_ms = 1.0;
    shard.duration_ms = 4.0 + s;
    shard.shard = s;
    shard.tid = static_cast<uint32_t>(s + 1);
    shard.counters.emplace_back("shard_index", s);
    trace.AppendSpan(shard);
  }
  return trace;
}

TEST(TraceEventsTest, DocumentStructureAndLaneMapping) {
  const Trace trace = MakeStitchedTrace();
  const std::string json = TraceEventsJson({&trace});

  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  // Complete events with microsecond timestamps: the shard spans start
  // at 1.0 ms = 1000 us and last 4000/5000 us.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000,"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":4000,"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5000,"), std::string::npos);
  // pid = shard + 1 (unsharded spans share pid 0); tid straight through.
  EXPECT_NE(json.find("\"pid\":0,\"tid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1,\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2,\"tid\":2"), std::string::npos);
  // Metadata events name the lanes.
  EXPECT_NE(json.find("{\"name\":\"query\"}"), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"shard 0\"}"), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"shard 1\"}"), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"worker 0\"}"), std::string::npos);
  // Span counters ride in args next to the trace id.
  EXPECT_NE(json.find("\"trace_id\":\"" + TraceIdHex(trace.trace_id()) +
                      "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"shard_index\":1"), std::string::npos);
  ExpectValidJsonLine(json);
}

TEST(TraceEventsTest, EscapesSpanNamesAndCounterKeys) {
  Trace trace;
  TraceSpan span;
  span.name = "evil \"span\"\nname\\";
  span.duration_ms = 1.0;
  span.counters.emplace_back("bad\tkey", 2.0);
  trace.AppendSpan(span);
  const std::string json = TraceEventsJson({&trace});
  EXPECT_NE(json.find("evil \\\"span\\\"\\nname\\\\"), std::string::npos);
  EXPECT_NE(json.find("bad\\tkey"), std::string::npos);
  // No raw control characters or unescaped quotes survive.
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
  ExpectValidJsonLine(json);
}

TEST(TraceEventsTest, ConsecutiveTracesAreLaidOutSequentially) {
  const Trace first = MakeStitchedTrace();
  const Trace second = MakeStitchedTrace();
  const std::string json = TraceEventsJson({&first, &second});
  // The first trace's extent is 10 ms, plus a 1 ms gutter: the second
  // trace's root starts at 11 ms = 11000 us.
  EXPECT_NE(json.find("\"ts\":0,"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":11000,"), std::string::npos);
  // Both trace ids appear; null entries would have been skipped.
  EXPECT_NE(json.find(TraceIdHex(first.trace_id())), std::string::npos);
  EXPECT_NE(json.find(TraceIdHex(second.trace_id())), std::string::npos);
  ExpectValidJsonLine(json);
}

TEST(TraceEventsTest, NullAndEmptyInputsAreSafe) {
  const std::string empty = TraceEventsJson({});
  EXPECT_EQ(empty, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
  const Trace trace = MakeStitchedTrace();
  const std::string with_null = TraceEventsJson({nullptr, &trace});
  EXPECT_NE(with_null.find("\"ph\":\"X\""), std::string::npos);
  ExpectValidJsonLine(with_null);
}

TEST(TraceEventsTest, WriteTraceEventsFileOverwrites) {
  const Trace trace = MakeStitchedTrace();
  const std::string path = testing::TempDir() + "/trace_events_test.json";
  std::remove(path.c_str());
  ASSERT_TRUE(WriteTraceEventsFile({&trace, &trace}, path).ok());
  ASSERT_TRUE(WriteTraceEventsFile({&trace}, path).ok());  // overwrite
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  // One document, not appended lines: exactly one displayTimeUnit key.
  EXPECT_EQ(content.find("displayTimeUnit"),
            content.rfind("displayTimeUnit"));
  EXPECT_EQ(content, TraceEventsJson({&trace}) + "\n");
  std::remove(path.c_str());
}

TEST(TraceExportTest, JsonLinesCarryShardAndTidTagsWhenSet) {
  Trace trace;
  trace.SetThreadTag(2, 5);
  const size_t span = trace.BeginSpan("shard");
  trace.EndSpan(span);
  const std::string text = TraceToJsonLines(trace);
  EXPECT_NE(text.find("\"shard\":2,\"tid\":5"), std::string::npos);
  // Untagged spans keep the compact schema (no shard/tid keys).
  Trace untagged;
  untagged.EndSpan(untagged.BeginSpan("query"));
  EXPECT_EQ(TraceToJsonLines(untagged).find("\"shard\""),
            std::string::npos);
}

TEST(TraceExportTest, JsonArrayWrapsSpans) {
  const Trace trace = MakeStitchedTrace();
  const std::string json = TraceToJsonArray(trace);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"span\":0,"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shard\""), std::string::npos);
  ExpectValidJsonLine("{\"spans\":" + json + "}");
}

}  // namespace
}  // namespace warpindex
