// Tracing layer: span-tree mechanics, the traced engine search path
// (acceptance: stage spans must account for the query's wall time), and
// the JSON-lines exporter.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "obs/exporters.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

TEST(TraceTest, SpanTreeStructure) {
  Trace trace;
  const size_t root = trace.BeginSpan("query");
  const size_t child_a = trace.BeginSpan("rtree_search");
  trace.EndSpan(child_a);
  const size_t child_b = trace.BeginSpan("dtw_postfilter");
  const size_t grandchild = trace.BeginSpan("inner");
  trace.EndSpan(grandchild);
  trace.EndSpan(child_b);
  trace.EndSpan(root);

  ASSERT_EQ(trace.spans().size(), 4u);
  EXPECT_EQ(trace.open_depth(), 0u);
  EXPECT_EQ(trace.spans()[root].parent, -1);
  EXPECT_EQ(trace.spans()[child_a].parent, static_cast<int>(root));
  EXPECT_EQ(trace.spans()[child_b].parent, static_cast<int>(root));
  EXPECT_EQ(trace.spans()[grandchild].parent, static_cast<int>(child_b));
  // Children are contained in the root's duration.
  EXPECT_GE(trace.spans()[root].duration_ms,
            trace.spans()[child_a].duration_ms +
                trace.spans()[child_b].duration_ms);
  EXPECT_GE(trace.spans()[child_b].duration_ms,
            trace.spans()[grandchild].duration_ms);
}

TEST(TraceTest, CountersAttachToInnermostOpenSpan) {
  Trace trace;
  const size_t root = trace.BeginSpan("query");
  trace.AddCounter("pages_read", 3);
  const size_t child = trace.BeginSpan("candidate_fetch");
  trace.AddCounter("pages_read", 2);
  trace.AddCounter("pages_read", 2);
  trace.EndSpan(child);
  trace.AddCounter("dtw_cells", 100);
  trace.EndSpan(root);

  ASSERT_EQ(trace.spans()[child].counters.size(), 1u);
  EXPECT_EQ(trace.spans()[child].counters[0].first, "pages_read");
  EXPECT_EQ(trace.spans()[child].counters[0].second, 4.0);
  ASSERT_EQ(trace.spans()[root].counters.size(), 2u);
  EXPECT_EQ(trace.spans()[root].counters[0].second, 3.0);
  EXPECT_EQ(trace.spans()[root].counters[1].first, "dtw_cells");
}

TEST(TraceTest, ScopedSpanNullTraceIsNoop) {
  ScopedSpan span(nullptr, "anything");
  TraceCounter(nullptr, "anything", 1.0);  // must not crash
}

TEST(TraceTest, TotalMillisSumsSameNamedSpans) {
  Trace trace;
  for (int i = 0; i < 3; ++i) {
    trace.EndSpan(trace.BeginSpan("stage"));
  }
  EXPECT_GE(trace.TotalMillis("stage"), 0.0);
  EXPECT_EQ(trace.TotalMillis("absent"), 0.0);
}

class TracedEngineTest : public testing::Test {
 protected:
  Engine* MakeEngine(bool lb_cascade, size_t pool_pages = 0) {
    RandomWalkOptions rw;
    rw.num_sequences = 200;
    rw.min_length = 100;
    rw.max_length = 200;
    EngineOptions options;
    options.lb_cascade = lb_cascade;
    options.index_buffer_pages = pool_pages;
    options.metrics = &registry_;  // keep tests out of the global registry
    return new Engine(GenerateRandomWalkDataset(rw), options);
  }

 private:
  MetricsRegistry registry_;
};

// Acceptance criterion: a traced Engine::Search produces a span tree
// whose stage spans sum to within 10% of SearchCost::wall_ms. A large
// epsilon makes the query heavy (every candidate is refined with a full
// DTW), so the untimed residue (feature extraction, vector setup) is
// negligible against the staged work.
TEST_F(TracedEngineTest, StageSpansAccountForWallTime) {
  std::unique_ptr<Engine> engine(MakeEngine(/*lb_cascade=*/false));
  const Sequence query =
      PerturbSequence(engine->dataset()[7], /*seed=*/42);

  Trace trace;
  const SearchResult result = engine->Search(query, /*epsilon=*/10.0,
                                             &trace);
  ASSERT_GT(result.num_candidates, 0u);
  ASSERT_GT(result.cost.wall_ms, 0.0);
  EXPECT_EQ(trace.open_depth(), 0u);

  // The span tree has a `query` root with the stage spans below it.
  ASSERT_FALSE(trace.spans().empty());
  EXPECT_EQ(trace.spans()[0].name, "query");
  EXPECT_GT(trace.TotalMillis(kStageRtreeSearch), 0.0);
  EXPECT_GT(trace.TotalMillis(kStageDtwPostfilter), 0.0);

  const double staged = trace.TotalMillis(kStageRtreeSearch) +
                        trace.TotalMillis(kStageCandidateFetch) +
                        trace.TotalMillis(kStageLbYiCascade) +
                        trace.TotalMillis(kStageDtwPostfilter);
  EXPECT_GT(staged, 0.9 * result.cost.wall_ms);
  EXPECT_LE(staged, 1.1 * result.cost.wall_ms);

  // The always-on StageTimings breakdown matches the spans' story.
  EXPECT_GT(result.cost.stages.TotalMillis(), 0.9 * result.cost.wall_ms);
  EXPECT_LE(result.cost.stages.TotalMillis(), 1.1 * result.cost.wall_ms);
  EXPECT_GT(result.cost.stages.Get(kStageDtwPostfilter), 0.0);
}

TEST_F(TracedEngineTest, LbCascadeStageAppearsWhenEnabled) {
  std::unique_ptr<Engine> engine(MakeEngine(/*lb_cascade=*/true));
  const Sequence query =
      PerturbSequence(engine->dataset()[3], /*seed=*/7);
  Trace trace;
  const SearchResult result = engine->Search(query, 10.0, &trace);
  ASSERT_GT(result.cost.lb_evals, 0u);
  EXPECT_GT(trace.TotalMillis(kStageLbYiCascade), 0.0);
  EXPECT_GT(result.cost.stages.Get(kStageLbYiCascade), 0.0);
}

TEST_F(TracedEngineTest, CountersRecordPagesAndCells) {
  std::unique_ptr<Engine> engine(MakeEngine(/*lb_cascade=*/false));
  const Sequence query = PerturbSequence(engine->dataset()[0], 1);
  Trace trace;
  const SearchResult result = engine->Search(query, 5.0, &trace);

  double traced_pages = 0.0;
  double traced_cells = 0.0;
  for (const TraceSpan& span : trace.spans()) {
    for (const auto& [name, value] : span.counters) {
      if (name == "pages_read") {
        traced_pages += value;
      } else if (name == "dtw_cells") {
        traced_cells += value;
      }
    }
  }
  // Data-page reads of the fetch stage (index pages are charged as
  // random reads, not store pages).
  EXPECT_EQ(traced_pages,
            static_cast<double>(result.cost.io.random_page_reads -
                                result.cost.index_nodes));
  EXPECT_EQ(traced_cells, static_cast<double>(result.cost.dtw_cells));
}

TEST_F(TracedEngineTest, BufferPoolCountersReachTrace) {
  std::unique_ptr<Engine> engine(
      MakeEngine(/*lb_cascade=*/false, /*pool_pages=*/64));
  const Sequence query = PerturbSequence(engine->dataset()[0], 1);
  // Warm the pool, then trace: the second query should see hits.
  engine->Search(query, 1.0);
  Trace trace;
  engine->Search(query, 1.0, &trace);
  double hits = 0.0;
  for (const TraceSpan& span : trace.spans()) {
    for (const auto& [name, value] : span.counters) {
      if (name == "pool_hits") {
        hits += value;
      }
    }
  }
  EXPECT_GT(hits, 0.0);
}

TEST_F(TracedEngineTest, KnnSearchProducesRefineSpan) {
  std::unique_ptr<Engine> engine(MakeEngine(/*lb_cascade=*/false));
  const Sequence query = PerturbSequence(engine->dataset()[11], 3);
  Trace trace;
  const KnnResult result = engine->SearchKnn(query, 5, &trace);
  EXPECT_EQ(result.neighbors.size(), 5u);
  EXPECT_EQ(trace.spans()[0].name, "knn_query");
  EXPECT_GT(trace.TotalMillis(kStageKnnRefine), 0.0);
  EXPECT_GT(result.cost.stages.Get(kStageKnnRefine), 0.0);
}

TEST_F(TracedEngineTest, UntracedSearchRecordsStagesButNoSpans) {
  std::unique_ptr<Engine> engine(MakeEngine(/*lb_cascade=*/false));
  const Sequence query = PerturbSequence(engine->dataset()[2], 9);
  const SearchResult result = engine->Search(query, 2.0);
  EXPECT_FALSE(result.cost.stages.empty());
}

// Crude JSON-lines validation: every line is one object with balanced
// braces and quotes outside of string literals.
void ExpectValidJsonLine(const std::string& line) {
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : line) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      ASSERT_GE(depth, 0) << line;
    }
  }
  EXPECT_EQ(depth, 0) << line;
  EXPECT_FALSE(in_string) << line;
}

TEST_F(TracedEngineTest, JsonLinesExportRoundTrip) {
  std::unique_ptr<Engine> engine(MakeEngine(/*lb_cascade=*/true));
  const Sequence query = PerturbSequence(engine->dataset()[5], 77);
  Trace trace;
  engine->Search(query, 5.0, &trace);

  const std::string text = TraceToJsonLines(trace, /*query_id=*/5);
  std::istringstream lines(text);
  std::string line;
  size_t count = 0;
  while (std::getline(lines, line)) {
    ExpectValidJsonLine(line);
    EXPECT_NE(line.find("\"query\":5"), std::string::npos);
    EXPECT_NE(line.find("\"duration_ms\":"), std::string::npos);
    ++count;
  }
  EXPECT_EQ(count, trace.spans().size());
  EXPECT_NE(text.find("\"name\":\"rtree_search\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"dtw_postfilter\""), std::string::npos);

  // ExportTrace appends to a file.
  const std::string path = testing::TempDir() + "/trace_test.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(engine->ExportTrace(trace, path, 5).ok());
  ASSERT_TRUE(engine->ExportTrace(trace, path, 6).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  size_t file_lines = 0;
  while (std::getline(in, line)) {
    ExpectValidJsonLine(line);
    ++file_lines;
  }
  EXPECT_EQ(file_lines, 2 * trace.spans().size());
  std::remove(path.c_str());
}

TEST(TraceExportTest, EscapesSpecialCharacters) {
  Trace trace;
  const size_t span = trace.BeginSpan("weird \"name\"\n\\path");
  trace.EndSpan(span);
  const std::string text = TraceToJsonLines(trace);
  EXPECT_NE(text.find("weird \\\"name\\\"\\n\\\\path"),
            std::string::npos);
  ExpectValidJsonLine(text.substr(0, text.size() - 1));
}

}  // namespace
}  // namespace warpindex
