#include <gtest/gtest.h>

#include <cmath>

#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"
#include "sequence/stock_generator.h"

namespace warpindex {
namespace {

TEST(RandomWalkGeneratorTest, RespectsCountAndLength) {
  RandomWalkOptions options;
  options.num_sequences = 20;
  options.min_length = 50;
  options.max_length = 50;
  const Dataset d = GenerateRandomWalkDataset(options);
  ASSERT_EQ(d.size(), 20u);
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d[i].size(), 50u);
  }
}

TEST(RandomWalkGeneratorTest, StepsAndStartWithinPaperRanges) {
  RandomWalkOptions options;
  options.num_sequences = 10;
  options.min_length = 200;
  options.max_length = 200;
  const Dataset d = GenerateRandomWalkDataset(options);
  for (size_t i = 0; i < d.size(); ++i) {
    const Sequence& s = d[i];
    EXPECT_GE(s[0], 1.0);
    EXPECT_LT(s[0], 10.0);
    for (size_t j = 1; j < s.size(); ++j) {
      const double step = s[j] - s[j - 1];
      EXPECT_GE(step, -0.1);
      EXPECT_LE(step, 0.1);
    }
  }
}

TEST(RandomWalkGeneratorTest, VariableLengthsStayInRange) {
  RandomWalkOptions options;
  options.num_sequences = 50;
  options.min_length = 10;
  options.max_length = 30;
  const Dataset d = GenerateRandomWalkDataset(options);
  bool saw_different_lengths = false;
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_GE(d[i].size(), 10u);
    EXPECT_LE(d[i].size(), 30u);
    if (d[i].size() != d[0].size()) {
      saw_different_lengths = true;
    }
  }
  EXPECT_TRUE(saw_different_lengths);
}

TEST(RandomWalkGeneratorTest, DeterministicInSeed) {
  RandomWalkOptions options;
  options.num_sequences = 5;
  options.min_length = 20;
  options.max_length = 20;
  const Dataset a = GenerateRandomWalkDataset(options);
  const Dataset b = GenerateRandomWalkDataset(options);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
  options.seed = 43;
  const Dataset c = GenerateRandomWalkDataset(options);
  EXPECT_FALSE(a[0] == c[0]);
}

TEST(StockGeneratorTest, MatchesPaperCorpusShape) {
  const Dataset d = GenerateStockDataset(StockDataOptions{});
  const DatasetStats stats = d.ComputeStats();
  EXPECT_EQ(stats.num_sequences, 545u);  // paper §5.1
  // Average length close to the paper's 231.
  EXPECT_GT(stats.avg_length, 200.0);
  EXPECT_LT(stats.avg_length, 260.0);
  // Different lengths are the whole point of time warping.
  EXPECT_LT(stats.min_length, stats.max_length);
}

TEST(StockGeneratorTest, PricesArePositive) {
  StockDataOptions options;
  options.num_sequences = 50;
  const Dataset d = GenerateStockDataset(options);
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_GT(d[i].Smallest(), 0.0);
  }
}

TEST(StockGeneratorTest, LengthsWithinConfiguredBounds) {
  StockDataOptions options;
  options.num_sequences = 100;
  const Dataset d = GenerateStockDataset(options);
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_GE(d[i].size(), options.min_length);
    EXPECT_LE(d[i].size(), options.max_length);
  }
}

TEST(StockGeneratorTest, DeterministicInSeed) {
  StockDataOptions options;
  options.num_sequences = 10;
  const Dataset a = GenerateStockDataset(options);
  const Dataset b = GenerateStockDataset(options);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(QueryWorkloadTest, GeneratesRequestedCount) {
  RandomWalkOptions rw;
  rw.num_sequences = 10;
  rw.min_length = 30;
  rw.max_length = 30;
  const Dataset d = GenerateRandomWalkDataset(rw);
  QueryWorkloadOptions qw;
  qw.num_queries = 17;
  const auto queries = GenerateQueryWorkload(d, qw);
  EXPECT_EQ(queries.size(), 17u);
}

TEST(QueryWorkloadTest, PerturbationBoundedByHalfStdDev) {
  const Sequence base({0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0});
  const double half_std = base.StdDev() / 2.0;
  const Sequence q = PerturbSequence(base, 123);
  ASSERT_EQ(q.size(), base.size());
  bool any_changed = false;
  for (size_t i = 0; i < q.size(); ++i) {
    EXPECT_LE(std::fabs(q[i] - base[i]), half_std);
    if (q[i] != base[i]) {
      any_changed = true;
    }
  }
  EXPECT_TRUE(any_changed);
}

TEST(QueryWorkloadTest, QueriesDerivedFromDataSequences) {
  // Each query must have the same length as some data sequence (the
  // paper's recipe perturbs a copy, element for element).
  RandomWalkOptions rw;
  rw.num_sequences = 5;
  rw.min_length = 10;
  rw.max_length = 40;
  const Dataset d = GenerateRandomWalkDataset(rw);
  const auto queries =
      GenerateQueryWorkload(d, QueryWorkloadOptions{.num_queries = 20});
  for (const Sequence& q : queries) {
    bool length_matches = false;
    for (size_t i = 0; i < d.size(); ++i) {
      if (d[i].size() == q.size()) {
        length_matches = true;
        break;
      }
    }
    EXPECT_TRUE(length_matches);
  }
}

TEST(QueryWorkloadTest, DeterministicInSeed) {
  RandomWalkOptions rw;
  rw.num_sequences = 5;
  rw.min_length = 20;
  rw.max_length = 20;
  const Dataset d = GenerateRandomWalkDataset(rw);
  const auto a = GenerateQueryWorkload(d, QueryWorkloadOptions{});
  const auto b = GenerateQueryWorkload(d, QueryWorkloadOptions{});
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

}  // namespace
}  // namespace warpindex
