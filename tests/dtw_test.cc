#include "dtw/dtw.h"

#include <gtest/gtest.h>

#include <cmath>

namespace warpindex {
namespace {

TEST(DtwTest, BothEmptyIsZero) {
  const Dtw dtw;
  EXPECT_EQ(dtw.Distance(Sequence(), Sequence()).distance, 0.0);
}

TEST(DtwTest, OneEmptyIsInfinite) {
  const Dtw dtw;
  EXPECT_TRUE(std::isinf(dtw.Distance(Sequence({1.0}), Sequence()).distance));
  EXPECT_TRUE(std::isinf(dtw.Distance(Sequence(), Sequence({1.0})).distance));
}

TEST(DtwTest, IdenticalSequencesHaveZeroDistance) {
  const Dtw dtw;
  const Sequence s({1.0, 2.0, 3.0, 2.0});
  EXPECT_EQ(dtw.Distance(s, s).distance, 0.0);
}

// The paper's introductory example: S and Q both time-warp into
// <20, 20, 21, 21, 20, 20, 23, 23, 23>, so their distance is exactly zero.
TEST(DtwTest, PaperIntroductionExampleWarpsToZero) {
  const Sequence s({20, 21, 21, 20, 20, 23, 23, 23});
  const Sequence q({20, 20, 21, 20, 23});
  EXPECT_EQ(Dtw(DtwOptions::Linf()).Distance(s, q).distance, 0.0);
  EXPECT_EQ(Dtw(DtwOptions::L1()).Distance(s, q).distance, 0.0);
}

TEST(DtwTest, SingleElementAgainstPairLinf) {
  // <0> vs <1, 2>: the single element must map to both -> max(1, 2) = 2.
  const Dtw dtw(DtwOptions::Linf());
  EXPECT_DOUBLE_EQ(dtw.Distance(Sequence({0.0}), Sequence({1.0, 2.0}))
                       .distance,
                   2.0);
}

TEST(DtwTest, SingleElementAgainstPairL1) {
  // Sum-combined: 1 + 2 = 3.
  const Dtw dtw(DtwOptions::L1());
  EXPECT_DOUBLE_EQ(dtw.Distance(Sequence({0.0}), Sequence({1.0, 2.0}))
                       .distance,
                   3.0);
}

TEST(DtwTest, KnownSmallExampleLinf) {
  // <1, 3> vs <2>: both elements map to 2 -> max(1, 1) = 1.
  const Dtw dtw(DtwOptions::Linf());
  EXPECT_DOUBLE_EQ(dtw.Distance(Sequence({1.0, 3.0}), Sequence({2.0}))
                       .distance,
                   1.0);
}

TEST(DtwTest, L2TakesSqrtOfAccumulatedSquares) {
  const Dtw dtw(DtwOptions::L2());
  // Equal lengths, forced diagonal is optimal: sqrt(1^2 + 2^2) = sqrt(5).
  const double d =
      dtw.Distance(Sequence({0.0, 0.0}), Sequence({1.0, 2.0})).distance;
  EXPECT_NEAR(d, std::sqrt(5.0), 1e-12);
}

TEST(DtwTest, SymmetricInArguments) {
  const Dtw dtw;
  const Sequence a({1.0, 5.0, 2.0, 8.0, 3.0});
  const Sequence b({2.0, 4.0, 9.0});
  EXPECT_DOUBLE_EQ(dtw.Distance(a, b).distance,
                   dtw.Distance(b, a).distance);
}

TEST(DtwTest, WarpingAbsorbsElementRepetition) {
  // Repeating elements must never change the L_inf warping distance.
  const Dtw dtw;
  const Sequence s({1.0, 2.0, 3.0});
  const Sequence warped({1.0, 1.0, 1.0, 2.0, 3.0, 3.0});
  EXPECT_EQ(dtw.Distance(s, warped).distance, 0.0);
}

TEST(DtwTest, ThresholdedMatchesExactWhenWithin) {
  const Dtw dtw;
  const Sequence a({1.0, 2.0, 3.0, 4.0});
  const Sequence b({1.5, 2.5, 3.5, 4.5});
  const double exact = dtw.Distance(a, b).distance;
  ASSERT_LE(exact, 1.0);
  EXPECT_DOUBLE_EQ(dtw.DistanceWithThreshold(a, b, 1.0).distance, exact);
}

TEST(DtwTest, ThresholdedReturnsInfinityBeyondTolerance) {
  const Dtw dtw;
  const Sequence a({0.0, 0.0, 0.0});
  const Sequence b({10.0, 10.0, 10.0});
  const DtwResult r = dtw.DistanceWithThreshold(a, b, 1.0);
  EXPECT_TRUE(std::isinf(r.distance));
}

TEST(DtwTest, EarlyAbandonComputesFewerCells) {
  const Dtw dtw;
  Sequence a;
  Sequence b;
  for (int i = 0; i < 100; ++i) {
    a.Append(0.0);
    b.Append(100.0);
  }
  const DtwResult full = dtw.Distance(a, b);
  const DtwResult pruned = dtw.DistanceWithThreshold(a, b, 0.5);
  EXPECT_TRUE(std::isinf(pruned.distance));
  EXPECT_LT(pruned.cells, full.cells / 10);
}

TEST(DtwTest, WithinToleranceConvenience) {
  const Dtw dtw;
  const Sequence a({1.0, 2.0});
  const Sequence b({1.4, 2.4});
  EXPECT_TRUE(dtw.WithinTolerance(a, b, 0.5));
  EXPECT_FALSE(dtw.WithinTolerance(a, b, 0.3));
}

TEST(DtwTest, BandZeroEqualLengthsIsElementwiseMax) {
  DtwOptions options = DtwOptions::Linf();
  options.band = 0;
  const Dtw dtw(options);
  const Sequence a({1.0, 5.0, 2.0});
  const Sequence b({2.0, 4.0, 0.0});
  // Diagonal-only path: max(|1-2|, |5-4|, |2-0|) = 2.
  EXPECT_DOUBLE_EQ(dtw.Distance(a, b).distance, 2.0);
}

TEST(DtwTest, BandNeverDecreasesDistance) {
  const Sequence a({1.0, 9.0, 1.0, 9.0, 1.0, 9.0});
  const Sequence b({9.0, 1.0, 9.0, 1.0, 9.0, 1.0});
  const double unbounded =
      Dtw(DtwOptions::L1()).Distance(a, b).distance;
  DtwOptions banded = DtwOptions::L1();
  banded.band = 1;
  const double constrained = Dtw(banded).Distance(a, b).distance;
  EXPECT_GE(constrained, unbounded);
}

TEST(DtwTest, BandWidensForUnequalLengths) {
  // Band 0 with unequal lengths must still admit a path.
  DtwOptions options = DtwOptions::Linf();
  options.band = 0;
  const Dtw dtw(options);
  const Sequence a({1.0, 2.0, 3.0, 4.0});
  const Sequence b({1.0, 4.0});
  const double d = dtw.Distance(a, b).distance;
  EXPECT_FALSE(std::isinf(d));
}

TEST(DtwTest, PathMatchesDistanceLinf) {
  const Dtw dtw;
  const Sequence a({1.0, 5.0, 2.0, 8.0});
  const Sequence b({2.0, 4.0, 9.0, 1.0, 3.0});
  const DtwPathResult r = dtw.DistanceWithPath(a, b);
  EXPECT_TRUE(r.path.IsValid(a.size(), b.size()));
  EXPECT_DOUBLE_EQ(r.path.Cost(a, b, dtw.options()), r.distance);
  EXPECT_DOUBLE_EQ(r.distance, dtw.Distance(a, b).distance);
}

TEST(DtwTest, PathMatchesDistanceL1) {
  const Dtw dtw(DtwOptions::L1());
  const Sequence a({3.0, 1.0, 4.0, 1.0, 5.0});
  const Sequence b({2.0, 7.0, 1.0});
  const DtwPathResult r = dtw.DistanceWithPath(a, b);
  EXPECT_TRUE(r.path.IsValid(a.size(), b.size()));
  EXPECT_DOUBLE_EQ(r.path.Cost(a, b, dtw.options()), r.distance);
  EXPECT_DOUBLE_EQ(r.distance, dtw.Distance(a, b).distance);
}

TEST(DtwTest, PathForEmptyInputs) {
  const Dtw dtw;
  const DtwPathResult both_empty = dtw.DistanceWithPath(Sequence(),
                                                        Sequence());
  EXPECT_EQ(both_empty.distance, 0.0);
  EXPECT_TRUE(both_empty.path.empty());
  const DtwPathResult one_empty =
      dtw.DistanceWithPath(Sequence({1.0}), Sequence());
  EXPECT_TRUE(std::isinf(one_empty.distance));
}

TEST(DtwTest, CellCountMatchesMatrixSizeUnconstrained) {
  const Dtw dtw;
  const Sequence a({1.0, 2.0, 3.0});
  const Sequence b({1.0, 2.0});
  EXPECT_EQ(dtw.Distance(a, b).cells, 6u);
}

// One DtwScratch reused across computations of different shapes must give
// bit-identical answers to scratch-free calls — the concurrent executor
// reuses a worker's scratch across every query it serves.
TEST(DtwTest, ReusedScratchIsBitIdenticalToScratchFree) {
  const Dtw dtw;
  const Sequence seqs[] = {
      Sequence({1.0, 5.0, 2.0, 8.0, 3.0, 7.0}),
      Sequence({2.0, 4.0}),
      Sequence({9.0, 1.0, 3.0, 6.0, 6.0, 2.0, 5.0, 0.5}),
      Sequence({4.0, 4.0, 4.0}),
  };
  DtwScratch scratch;
  for (const Sequence& a : seqs) {
    for (const Sequence& b : seqs) {
      const DtwResult plain = dtw.Distance(a, b);
      const DtwResult reused = dtw.Distance(a, b, &scratch);
      EXPECT_EQ(plain.distance, reused.distance);
      EXPECT_EQ(plain.cells, reused.cells);
      // Early-abandon path too: the threshold prunes rows, and the
      // scratch (sized for an earlier, longer pair) must not leak stale
      // DP values into the live prefix.
      const DtwResult plain_thr = dtw.DistanceWithThreshold(a, b, 3.0);
      const DtwResult reused_thr =
          dtw.DistanceWithThreshold(a, b, 3.0, &scratch);
      EXPECT_EQ(plain_thr.distance, reused_thr.distance);
      EXPECT_EQ(plain_thr.cells, reused_thr.cells);
    }
  }
  EXPECT_GT(scratch.capacity(), 0u);
}

}  // namespace
}  // namespace warpindex
