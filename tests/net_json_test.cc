// JsonValue: the wire protocol's message-body type. The properties the
// serving plane rests on: int64 ids round-trip without passing through a
// double, doubles round-trip BIT-identically via %.17g, object member
// order is stable (rendering is deterministic), and hostile input —
// deep nesting, trailing garbage, malformed escapes — fails with a
// typed error instead of crashing.

#include "net/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace warpindex {
namespace {

JsonValue MustParse(const std::string& text) {
  JsonValue value;
  const Status status = JsonValue::Parse(text, &value);
  EXPECT_TRUE(status.ok()) << text << " -> " << status.ToString();
  return value;
}

TEST(NetJsonTest, ScalarRoundTrip) {
  EXPECT_EQ(MustParse("null").kind(), JsonValue::Kind::kNull);
  EXPECT_TRUE(MustParse("true").AsBool());
  EXPECT_FALSE(MustParse("false").AsBool());
  EXPECT_EQ(MustParse("42").AsInt(), 42);
  EXPECT_EQ(MustParse("-7").AsInt(), -7);
  EXPECT_DOUBLE_EQ(MustParse("2.5").AsDouble(), 2.5);
  EXPECT_EQ(MustParse("\"hi\"").AsString(), "hi");
}

TEST(NetJsonTest, IntegersStayIntegers) {
  // Sequence ids are int64 and must not be rounded through a double.
  const int64_t big = (int64_t{1} << 62) + 3;
  JsonValue value = JsonValue::Int(big);
  EXPECT_EQ(value.kind(), JsonValue::Kind::kInt);
  const JsonValue back = MustParse(value.Render());
  EXPECT_EQ(back.kind(), JsonValue::Kind::kInt);
  EXPECT_EQ(back.AsInt(), big);
}

TEST(NetJsonTest, DoublesRoundTripBitIdentically) {
  // The router ≡ in-process-engine property depends on every finite
  // double surviving render + parse with the same bits.
  const double values[] = {0.1,
                           1.0 / 3.0,
                           std::nextafter(1.0, 2.0),
                           1e-300,
                           -2.5e300,
                           123456789.123456789,
                           std::numeric_limits<double>::min(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max()};
  for (const double d : values) {
    const std::string text = JsonValue::Double(d).Render();
    const JsonValue back = MustParse(text);
    EXPECT_EQ(back.AsDouble(), d) << text;
  }
}

TEST(NetJsonTest, IntAndDoubleAccessorsConvert) {
  EXPECT_EQ(JsonValue::Double(3.9).AsInt(), 3);   // truncates
  EXPECT_DOUBLE_EQ(JsonValue::Int(3).AsDouble(), 3.0);  // widens
  EXPECT_EQ(JsonValue::Str("x").AsInt(), 0);      // wrong kind -> zero
  EXPECT_FALSE(JsonValue::Int(1).AsBool());
}

TEST(NetJsonTest, StringEscapes) {
  JsonValue value = JsonValue::Str("a\"b\\c\n\t\x01");
  const JsonValue back = MustParse(value.Render());
  EXPECT_EQ(back.AsString(), "a\"b\\c\n\t\x01");
  // Parses the standard escape set too.
  EXPECT_EQ(MustParse("\"\\u0041\\n\\\"\"").AsString(), "A\n\"");
}

TEST(NetJsonTest, ObjectOrderIsInsertionOrder) {
  JsonValue object = JsonValue::Object();
  object.Set("zeta", JsonValue::Int(1));
  object.Set("alpha", JsonValue::Int(2));
  EXPECT_EQ(object.Render(), "{\"zeta\":1,\"alpha\":2}");
  // Re-parsing keeps the order (stable fingerprints for the router's
  // replica-agreement check).
  EXPECT_EQ(MustParse(object.Render()).Render(), object.Render());
}

TEST(NetJsonTest, FindAndTypedLookups) {
  const JsonValue object =
      MustParse("{\"i\":7,\"d\":2.5,\"s\":\"x\",\"b\":true}");
  ASSERT_NE(object.Find("i"), nullptr);
  EXPECT_EQ(object.Find("missing"), nullptr);
  EXPECT_EQ(object.GetInt("i", -1), 7);
  EXPECT_DOUBLE_EQ(object.GetDouble("d", -1.0), 2.5);
  EXPECT_EQ(object.GetString("s", "none"), "x");
  EXPECT_TRUE(object.GetBool("b", false));
  EXPECT_EQ(object.GetInt("missing", -1), -1);
  EXPECT_EQ(object.GetString("i", "fallback"), "fallback");  // wrong kind
}

TEST(NetJsonTest, NestedArraysAndObjects) {
  const JsonValue value =
      MustParse("{\"shards\":[{\"shard\":0,\"mbr\":null},{\"shard\":1}]}");
  const JsonValue* shards = value.Find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->size(), 2u);
  EXPECT_EQ(shards->at(0).GetInt("shard", -1), 0);
  ASSERT_NE(shards->at(0).Find("mbr"), nullptr);
  EXPECT_TRUE(shards->at(0).Find("mbr")->is_null());
}

TEST(NetJsonTest, TrailingGarbageRejected) {
  JsonValue value;
  EXPECT_FALSE(JsonValue::Parse("42 junk", &value).ok());
  EXPECT_FALSE(JsonValue::Parse("{}{}", &value).ok());
  EXPECT_FALSE(JsonValue::Parse("", &value).ok());
}

TEST(NetJsonTest, MalformedInputRejected) {
  JsonValue value;
  for (const char* bad : {"{", "[1,", "\"open", "{\"a\":}", "tru",
                          "01", "+1", "nul", "{\"a\" 1}", "[1 2]"}) {
    EXPECT_FALSE(JsonValue::Parse(bad, &value).ok()) << bad;
  }
}

TEST(NetJsonTest, DepthBoundRejectsHostileNesting) {
  // A hostile peer cannot blow the stack with deep nesting.
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  JsonValue value;
  EXPECT_FALSE(JsonValue::Parse(deep, &value).ok());
  // A compliant body well under the bound parses fine.
  std::string ok_depth;
  for (int i = 0; i < 20; ++i) ok_depth += "[";
  for (int i = 0; i < 20; ++i) ok_depth += "]";
  EXPECT_TRUE(JsonValue::Parse(ok_depth, &value).ok());
}

TEST(NetJsonTest, RenderToAppends) {
  std::string out = "prefix:";
  JsonValue::Int(5).RenderTo(&out);
  EXPECT_EQ(out, "prefix:5");
}

}  // namespace
}  // namespace warpindex
