#include "rtree/node.h"

#include <gtest/gtest.h>

namespace warpindex {
namespace {

TEST(NodeTest, EntryBytesByDimension) {
  // 2 * dims doubles + 8-byte id.
  EXPECT_EQ(EntryBytes(1), 24u);
  EXPECT_EQ(EntryBytes(2), 40u);
  EXPECT_EQ(EntryBytes(4), 72u);   // the paper's feature index
  EXPECT_EQ(EntryBytes(8), 136u);
}

TEST(NodeTest, CapacityForPaperConfiguration) {
  // 1 KB page, 24-byte header, 72-byte entries -> 13 per node.
  EXPECT_EQ(NodeCapacityForPage(1024, 4), 13u);
}

TEST(NodeTest, CapacityScalesWithPageSize) {
  EXPECT_GT(NodeCapacityForPage(4096, 4), NodeCapacityForPage(1024, 4));
  EXPECT_EQ(NodeCapacityForPage(8192, 4), (8192u - 24u) / 72u);
}

TEST(NodeTest, CapacityNeverBelowTwo) {
  EXPECT_EQ(NodeCapacityForPage(8, 4), 2u);
  EXPECT_EQ(NodeCapacityForPage(0, 4), 2u);
  EXPECT_EQ(NodeCapacityForPage(100, 16), 2u);
}

TEST(NodeTest, LeafAndInternalFactories) {
  const Rect r = Rect::Make({0.0}, {1.0});
  const RTreeEntry leaf = RTreeEntry::Leaf(r, 42);
  EXPECT_EQ(leaf.record_id, 42);
  EXPECT_EQ(leaf.child, kInvalidNodeId);
  const RTreeEntry internal = RTreeEntry::Internal(r, 7);
  EXPECT_EQ(internal.child, 7);
  EXPECT_EQ(internal.record_id, -1);
}

TEST(NodeTest, ComputeMbrUnionsAllEntries) {
  RTreeNode node;
  node.entries.push_back(RTreeEntry::Leaf(Rect::Make({0.0, 0.0},
                                                     {1.0, 1.0}),
                                          0));
  node.entries.push_back(RTreeEntry::Leaf(Rect::Make({3.0, -2.0},
                                                     {4.0, 0.5}),
                                          1));
  const Rect mbr = node.ComputeMbr();
  EXPECT_EQ(mbr, Rect::Make({0.0, -2.0}, {4.0, 1.0}));
}

TEST(NodeTest, LevelZeroIsLeaf) {
  RTreeNode node;
  EXPECT_TRUE(node.IsLeaf());
  node.level = 1;
  EXPECT_FALSE(node.IsLeaf());
  EXPECT_FALSE(node.supernode);
}

}  // namespace
}  // namespace warpindex
