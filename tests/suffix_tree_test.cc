#include "suffixtree/suffix_tree.h"

#include <gtest/gtest.h>

#include <string>

#include "common/prng.h"

namespace warpindex {
namespace {

std::vector<Symbol> ToSymbols(const std::string& s) {
  std::vector<Symbol> symbols;
  for (char c : s) {
    symbols.push_back(static_cast<Symbol>(c - 'a'));
  }
  return symbols;
}

TEST(SuffixTreeTest, EmptyTree) {
  const SuffixTree tree;
  EXPECT_EQ(tree.num_strings(), 0u);
  EXPECT_EQ(tree.num_nodes(), 1u);  // just the root
}

TEST(SuffixTreeTest, ContainsEverySubstringOfBanana) {
  SuffixTree tree;
  const std::string text = "banana";
  EXPECT_EQ(tree.AddString(ToSymbols(text)), 0);
  for (size_t i = 0; i < text.size(); ++i) {
    for (size_t len = 1; len + i <= text.size(); ++len) {
      EXPECT_TRUE(tree.ContainsSubstring(ToSymbols(text.substr(i, len))))
          << text.substr(i, len);
    }
  }
  EXPECT_FALSE(tree.ContainsSubstring(ToSymbols("bananas")));
  EXPECT_FALSE(tree.ContainsSubstring(ToSymbols("nab")));
  EXPECT_FALSE(tree.ContainsSubstring(ToSymbols("x")));
}

TEST(SuffixTreeTest, ClassicMississippiCase) {
  SuffixTree tree;
  const std::string text = "mississippi";
  tree.AddString(ToSymbols(text));
  EXPECT_TRUE(tree.ContainsSubstring(ToSymbols("issi")));
  EXPECT_TRUE(tree.ContainsSubstring(ToSymbols("ssippi")));
  EXPECT_TRUE(tree.ContainsSubstring(ToSymbols("mississippi")));
  EXPECT_FALSE(tree.ContainsSubstring(ToSymbols("ssissb")));
  EXPECT_FALSE(tree.ContainsSubstring(ToSymbols("ppp")));
}

TEST(SuffixTreeTest, GeneralizedOverMultipleStrings) {
  SuffixTree tree;
  EXPECT_EQ(tree.AddString(ToSymbols("abcab")), 0);
  EXPECT_EQ(tree.AddString(ToSymbols("cabd")), 1);
  EXPECT_EQ(tree.num_strings(), 2u);
  EXPECT_EQ(tree.StringLength(0), 5u);
  EXPECT_EQ(tree.StringLength(1), 4u);
  // Substrings of either string are found.
  EXPECT_TRUE(tree.ContainsSubstring(ToSymbols("bca")));
  EXPECT_TRUE(tree.ContainsSubstring(ToSymbols("abd")));
  // Nothing matches across the string boundary.
  EXPECT_FALSE(tree.ContainsSubstring(ToSymbols("abcabc")));
  EXPECT_FALSE(tree.ContainsSubstring(ToSymbols("bcabd")));
}

TEST(SuffixTreeTest, NodeCountLinearInTextSize) {
  SuffixTree tree;
  Prng prng(55);
  size_t total_symbols = 0;
  for (int s = 0; s < 20; ++s) {
    std::vector<Symbol> symbols;
    const int64_t len = prng.UniformInt(10, 100);
    for (int64_t i = 0; i < len; ++i) {
      symbols.push_back(static_cast<Symbol>(prng.UniformInt(0, 9)));
    }
    total_symbols += symbols.size() + 1;  // + terminator
    tree.AddString(symbols);
  }
  EXPECT_EQ(tree.text_size(), total_symbols);
  // A suffix tree over n symbols has at most 2n nodes.
  EXPECT_LE(tree.num_nodes(), 2 * total_symbols);
  EXPECT_GT(tree.num_nodes(), total_symbols / 2);
}

TEST(SuffixTreeTest, RandomizedContainsAgainstBruteForce) {
  Prng prng(56);
  for (int trial = 0; trial < 10; ++trial) {
    SuffixTree tree;
    std::vector<std::vector<Symbol>> strings;
    const int64_t num_strings = prng.UniformInt(1, 4);
    for (int64_t s = 0; s < num_strings; ++s) {
      std::vector<Symbol> symbols;
      const int64_t len = prng.UniformInt(1, 40);
      for (int64_t i = 0; i < len; ++i) {
        symbols.push_back(static_cast<Symbol>(prng.UniformInt(0, 3)));
      }
      tree.AddString(symbols);
      strings.push_back(std::move(symbols));
    }
    for (int probe = 0; probe < 50; ++probe) {
      std::vector<Symbol> needle;
      const int64_t len = prng.UniformInt(1, 8);
      for (int64_t i = 0; i < len; ++i) {
        needle.push_back(static_cast<Symbol>(prng.UniformInt(0, 3)));
      }
      bool expected = false;
      for (const auto& hay : strings) {
        for (size_t off = 0; off + needle.size() <= hay.size(); ++off) {
          if (std::equal(needle.begin(), needle.end(), hay.begin() + off)) {
            expected = true;
            break;
          }
        }
      }
      EXPECT_EQ(tree.ContainsSubstring(needle), expected);
    }
  }
}

TEST(SuffixTreeTest, TerminatorHelpers) {
  SuffixTree tree;
  tree.AddString(ToSymbols("ab"));
  tree.AddString(ToSymbols("cd"));
  EXPECT_TRUE(tree.IsTerminator(-1));
  EXPECT_FALSE(tree.IsTerminator(0));
  EXPECT_EQ(tree.TerminatorString(-1), 0);
  EXPECT_EQ(tree.TerminatorString(-2), 1);
}

TEST(SuffixTreeTest, PageLayoutAccounting) {
  SuffixTree tree;
  tree.AddString(ToSymbols("abcabcabc"));
  const size_t page_size = 1024;
  const size_t nodes_per_page = page_size / SuffixTree::kNodeBytes;
  EXPECT_EQ(tree.NumPages(page_size),
            (tree.num_nodes() + nodes_per_page - 1) / nodes_per_page);
  EXPECT_EQ(tree.PageOf(0, page_size), 0);
  EXPECT_GE(tree.ApproxBytes(),
            tree.num_nodes() * SuffixTree::kNodeBytes);
}

TEST(SuffixTreeTest, LocatePositionMapsGlobalToStringOffsets) {
  SuffixTree tree;
  tree.AddString(ToSymbols("abc"));   // text positions 0..2, terminator 3
  tree.AddString(ToSymbols("de"));    // positions 4..5, terminator 6
  int64_t string_id = -1;
  size_t offset = 99;
  ASSERT_TRUE(tree.LocatePosition(0, &string_id, &offset));
  EXPECT_EQ(string_id, 0);
  EXPECT_EQ(offset, 0u);
  ASSERT_TRUE(tree.LocatePosition(2, &string_id, &offset));
  EXPECT_EQ(string_id, 0);
  EXPECT_EQ(offset, 2u);
  ASSERT_TRUE(tree.LocatePosition(4, &string_id, &offset));
  EXPECT_EQ(string_id, 1);
  EXPECT_EQ(offset, 0u);
  ASSERT_TRUE(tree.LocatePosition(5, &string_id, &offset));
  EXPECT_EQ(string_id, 1);
  EXPECT_EQ(offset, 1u);
  // Terminator positions are not part of any string.
  EXPECT_FALSE(tree.LocatePosition(3, &string_id, &offset));
  EXPECT_FALSE(tree.LocatePosition(6, &string_id, &offset));
}

TEST(SuffixTreeTest, LocatePositionAcrossManyStrings) {
  SuffixTree tree;
  size_t expected_begin = 0;
  std::vector<size_t> begins;
  for (int s = 0; s < 10; ++s) {
    const size_t len = static_cast<size_t>(3 + s);
    begins.push_back(expected_begin);
    std::vector<Symbol> symbols(len, static_cast<Symbol>(s));
    tree.AddString(symbols);
    expected_begin += len + 1;  // + terminator
  }
  for (int s = 0; s < 10; ++s) {
    int64_t string_id = -1;
    size_t offset = 0;
    ASSERT_TRUE(tree.LocatePosition(begins[static_cast<size_t>(s)] + 2,
                                    &string_id, &offset));
    EXPECT_EQ(string_id, s);
    EXPECT_EQ(offset, 2u);
  }
}

TEST(SuffixTreeTest, RepeatedIdenticalStrings) {
  SuffixTree tree;
  tree.AddString(ToSymbols("aaa"));
  tree.AddString(ToSymbols("aaa"));
  EXPECT_EQ(tree.num_strings(), 2u);
  EXPECT_TRUE(tree.ContainsSubstring(ToSymbols("aaa")));
  EXPECT_FALSE(tree.ContainsSubstring(ToSymbols("aaaa")));
}

TEST(SuffixTreeTest, SingleSymbolStrings) {
  SuffixTree tree;
  tree.AddString({5});
  tree.AddString({7});
  EXPECT_TRUE(tree.ContainsSubstring({5}));
  EXPECT_TRUE(tree.ContainsSubstring({7}));
  EXPECT_FALSE(tree.ContainsSubstring({6}));
}

}  // namespace
}  // namespace warpindex
