#include "dtw/lb_yi.h"

#include <gtest/gtest.h>

#include "common/prng.h"
#include "dtw/dtw.h"

namespace warpindex {
namespace {

TEST(LbYiTest, EnvelopeComputation) {
  const Envelope env = ComputeEnvelope(Sequence({3.0, -1.0, 7.0, 2.0}));
  EXPECT_EQ(env.smallest, -1.0);
  EXPECT_EQ(env.greatest, 7.0);
}

TEST(LbYiTest, ZeroWhenRangesOverlapEntirely) {
  const Sequence s({1.0, 2.0, 3.0});
  const Sequence q({0.0, 4.0});
  // Every element of s lies inside [0, 4]; every element of q lies outside
  // [1, 3] by exactly 1.
  EXPECT_DOUBLE_EQ(LbYi(s, q, DtwCombiner::kMax), 1.0);
}

TEST(LbYiTest, KnownDisjointRangesLinf) {
  const Sequence s({0.0, 1.0});
  const Sequence q({5.0, 6.0});
  // max_i dist(s_i, [5,6]) = 5; max_j dist(q_j, [0,1]) = 5.
  EXPECT_DOUBLE_EQ(LbYi(s, q, DtwCombiner::kMax), 5.0);
}

TEST(LbYiTest, KnownDisjointRangesL1) {
  const Sequence s({0.0, 1.0});
  const Sequence q({5.0, 6.0});
  // sum_i dist(s_i, [5,6]) = 5 + 4 = 9; sum_j dist(q_j, [0,1]) = 4 + 5 = 9.
  EXPECT_DOUBLE_EQ(LbYi(s, q, DtwCombiner::kSum), 9.0);
}

TEST(LbYiTest, AsymmetricContributionsTakeTheMax) {
  const Sequence s({0.0});          // range [0,0]
  const Sequence q({0.0, 10.0});    // range [0,10]
  // s side: dist(0, [0,10]) = 0. q side: dist(10, [0,0]) = 10.
  EXPECT_DOUBLE_EQ(LbYi(s, q, DtwCombiner::kMax), 10.0);
  EXPECT_DOUBLE_EQ(LbYi(q, s, DtwCombiner::kMax), 10.0);
}

Sequence RandomSequence(Prng* prng, int64_t max_len) {
  Sequence s;
  const int64_t len = prng->UniformInt(1, max_len);
  for (int64_t i = 0; i < len; ++i) {
    s.Append(prng->UniformDouble(-5.0, 5.0));
  }
  return s;
}

class LbYiPropertyTest : public testing::TestWithParam<DtwCombiner> {};

TEST_P(LbYiPropertyTest, LowerBoundsTheExactDistance) {
  const DtwCombiner combiner = GetParam();
  const Dtw dtw(combiner == DtwCombiner::kMax ? DtwOptions::Linf()
                                              : DtwOptions::L1());
  Prng prng(11);
  for (int trial = 0; trial < 300; ++trial) {
    const Sequence a = RandomSequence(&prng, 20);
    const Sequence b = RandomSequence(&prng, 20);
    const double lb = LbYi(a, b, combiner);
    const double exact = dtw.Distance(a, b).distance;
    EXPECT_LE(lb, exact + 1e-9)
        << "a=" << a.ToString() << " b=" << b.ToString();
  }
}

TEST_P(LbYiPropertyTest, SymmetricAndNonNegative) {
  const DtwCombiner combiner = GetParam();
  Prng prng(12);
  for (int trial = 0; trial < 100; ++trial) {
    const Sequence a = RandomSequence(&prng, 15);
    const Sequence b = RandomSequence(&prng, 15);
    const double ab = LbYi(a, b, combiner);
    EXPECT_GE(ab, 0.0);
    EXPECT_DOUBLE_EQ(ab, LbYi(b, a, combiner));
  }
}

TEST_P(LbYiPropertyTest, PrecomputedEnvelopesMatchOnTheFly) {
  const DtwCombiner combiner = GetParam();
  Prng prng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const Sequence a = RandomSequence(&prng, 15);
    const Sequence b = RandomSequence(&prng, 15);
    EXPECT_DOUBLE_EQ(LbYiWithEnvelopes(a, ComputeEnvelope(a), b,
                                       ComputeEnvelope(b), combiner),
                     LbYi(a, b, combiner));
  }
}

INSTANTIATE_TEST_SUITE_P(BothCombiners, LbYiPropertyTest,
                         testing::Values(DtwCombiner::kMax,
                                         DtwCombiner::kSum),
                         [](const testing::TestParamInfo<DtwCombiner>& info) {
                           return info.param == DtwCombiner::kMax ? "Linf"
                                                                  : "L1";
                         });

}  // namespace
}  // namespace warpindex
