// FleetPoller tests (net/fleet.h): STATS polling against in-process
// wire servers with canned metrics documents, the /metrics?fleet=1
// aggregation semantics (per-instance labels, fleet sums, exact
// bucket-by-bucket histogram merges, boundary-mismatch refusal), the
// /fleetz liveness filter (draining and dead replicas disappear), and
// the qps derivation from request-counter deltas.

#include "net/fleet.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/json.h"
#include "net/router.h"
#include "net/wire.h"
#include "net/wire_server.h"

namespace warpindex {
namespace {

// A replica's metrics document, in the MetricsToJson shape the real
// kStats handler returns.
JsonValue MakeMetricsDoc(int64_t requests, double hist_sum,
                         const std::vector<int64_t>& bucket_counts,
                         const std::vector<double>& boundaries) {
  JsonValue counters = JsonValue::Object();
  counters.Set("warpindex_net_requests_total", JsonValue::Int(requests));
  counters.Set("warpindex_net_errors_total", JsonValue::Int(1));

  JsonValue gauges = JsonValue::Object();
  gauges.Set("warpindex_ingest_delta_entries", JsonValue::Int(7));

  int64_t count = 0;
  JsonValue counts_json = JsonValue::Array();
  for (const int64_t c : bucket_counts) {
    counts_json.Add(JsonValue::Int(c));
    count += c;
  }
  JsonValue bounds_json = JsonValue::Array();
  for (const double b : boundaries) {
    bounds_json.Add(JsonValue::Double(b));
  }
  JsonValue hist = JsonValue::Object();
  hist.Set("count", JsonValue::Int(count));
  hist.Set("sum", JsonValue::Double(hist_sum));
  hist.Set("p99", JsonValue::Double(hist_sum / 2.0));
  hist.Set("boundaries", std::move(bounds_json));
  hist.Set("bucket_counts", std::move(counts_json));
  JsonValue hists = JsonValue::Object();
  hists.Set("warpindex_net_query_wall_ms", std::move(hist));

  JsonValue process = JsonValue::Object();
  process.Set("cpu_seconds_total", JsonValue::Double(1.5));
  process.Set("resident_memory_bytes", JsonValue::Double(1000.0));
  process.Set("open_fds", JsonValue::Int(12));
  process.Set("start_time_seconds", JsonValue::Double(123.0));

  JsonValue doc = JsonValue::Object();
  doc.Set("counters", std::move(counters));
  doc.Set("gauges", std::move(gauges));
  doc.Set("histograms", std::move(hists));
  doc.Set("process", std::move(process));
  return doc;
}

// One fake replica: a WireServer whose kStats handler serves the given
// (mutable) state.
class FakeReplica {
 public:
  explicit FakeReplica(std::vector<double> boundaries = {1.0, 10.0})
      : boundaries_(std::move(boundaries)) {
    server_ = std::make_unique<WireServer>(WireServerOptions{});
    server_->Handle(
        WireType::kStats,
        [this](const std::string&, const JsonValue&, JsonValue* response) {
          response->Set("server", JsonValue::Str("fake-replica"));
          response->Set("draining", JsonValue::Bool(draining_.load()));
          response->Set(
              "metrics",
              MakeMetricsDoc(requests_.load(), hist_sum_, {3, 2, 1},
                             boundaries_));
          requests_.fetch_add(request_step_);
          return Status::Ok();
        });
    EXPECT_TRUE(server_->Start().ok());
  }

  RouterEndpoint endpoint() const { return {"127.0.0.1", server_->port()}; }
  std::string instance() const {
    return "127.0.0.1:" + std::to_string(server_->port());
  }
  void set_draining(bool draining) { draining_.store(draining); }
  void set_request_step(int64_t step) { request_step_ = step; }
  void set_requests(int64_t requests) { requests_.store(requests); }
  void set_hist_sum(double sum) { hist_sum_ = sum; }
  void StopServer() { server_->Stop(); }

 private:
  std::unique_ptr<WireServer> server_;
  std::vector<double> boundaries_;
  std::atomic<bool> draining_{false};
  std::atomic<int64_t> requests_{100};
  int64_t request_step_ = 0;
  double hist_sum_ = 10.0;
};

FleetPollerOptions PollerOptionsFor(
    const std::vector<const FakeReplica*>& replicas) {
  FleetPollerOptions options;
  options.groups.push_back({});
  for (const FakeReplica* r : replicas) {
    options.groups.back().push_back(r->endpoint());
  }
  options.call_timeout_ms = 2000;
  options.min_poll_gap_ms = 0;  // tests drive polls explicitly
  options.poll_interval_ms = 0;
  return options;
}

TEST(FleetPollerTest, FederatesCountersGaugesHistogramsAndProcess) {
  FakeReplica a;
  FakeReplica b;
  a.set_requests(100);
  b.set_requests(250);
  b.set_hist_sum(30.0);
  FleetPoller poller(PollerOptionsFor({&a, &b}));
  poller.PollOnce();

  const std::string text = poller.FleetMetricsText();
  // Per-instance counter lines plus the unlabeled fleet sum.
  EXPECT_NE(text.find("warpindex_net_requests_total{instance=\"" +
                      a.instance() + "\"} 100"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("warpindex_net_requests_total{instance=\"" +
                      b.instance() + "\"} 250"),
            std::string::npos);
  EXPECT_NE(text.find("\nwarpindex_net_requests_total 350\n"),
            std::string::npos);
  // Gauges: per-instance + sum.
  EXPECT_NE(text.find("\nwarpindex_ingest_delta_entries 14\n"),
            std::string::npos);
  // Histograms merge bucket-by-bucket: each replica reports buckets
  // {3,2,1} over boundaries {1,10}, so cumulative fleet buckets are
  // 6, 10, 12 and _count is 12.
  EXPECT_NE(text.find("warpindex_net_query_wall_ms_bucket{le=\"1\"} 6"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("warpindex_net_query_wall_ms_bucket{le=\"10\"} 10"),
            std::string::npos);
  EXPECT_NE(text.find("warpindex_net_query_wall_ms_bucket{le=\"+Inf\"} 12"),
            std::string::npos);
  EXPECT_NE(text.find("warpindex_net_query_wall_ms_count 12"),
            std::string::npos);
  EXPECT_NE(text.find("warpindex_net_query_wall_ms_sum 40"),
            std::string::npos);
  // Per-instance histogram counts survive next to the merge.
  EXPECT_NE(text.find("warpindex_net_query_wall_ms_count{instance=\"" +
                      a.instance() + "\"} 6"),
            std::string::npos);
  // Process self-metrics federate: 1.5 CPU-seconds each.
  EXPECT_NE(text.find("\nprocess_cpu_seconds_total 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("process_open_fds{instance=\"" + a.instance() +
                      "\"} 12"),
            std::string::npos);
  EXPECT_NE(text.find("2/2 replicas reporting"), std::string::npos);
}

TEST(FleetPollerTest, MismatchedHistogramBoundariesRefuseToMerge) {
  FakeReplica a({1.0, 10.0});
  FakeReplica b({2.0, 20.0});
  FleetPoller poller(PollerOptionsFor({&a, &b}));
  poller.PollOnce();
  const std::string text = poller.FleetMetricsText();
  EXPECT_NE(text.find("boundaries differ across replicas"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("warpindex_net_query_wall_ms_bucket"),
            std::string::npos);
  // Counters still federate normally.
  EXPECT_NE(text.find("\nwarpindex_net_requests_total 200\n"),
            std::string::npos);
}

TEST(FleetPollerTest, FleetzDropsDrainingAndDeadReplicas) {
  FakeReplica a;
  FakeReplica b;
  FleetPollerOptions options = PollerOptionsFor({&a, &b});
  options.drop_after_failures = 2;
  FleetPoller poller(std::move(options));
  poller.PollOnce();

  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse(poller.FleetzJson(), &doc).ok());
  EXPECT_EQ(doc.GetInt("tracked", -1), 2);
  EXPECT_EQ(doc.GetInt("live", -1), 2);

  // Draining replicas answer STATS but disappear from the page.
  b.set_draining(true);
  poller.PollOnce();
  ASSERT_TRUE(JsonValue::Parse(poller.FleetzJson(), &doc).ok());
  EXPECT_EQ(doc.GetInt("live", -1), 1);
  const JsonValue* rows = doc.Find("replicas");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->items().size(), 1u);
  EXPECT_EQ(rows->items()[0].GetString("instance", ""), a.instance());
  // Known replica rows carry the ingest backlog gauge.
  EXPECT_EQ(rows->items()[0].GetInt("ingest_backlog", -1), 7);

  // A dead replica drops out and its failures are tracked.
  b.set_draining(false);
  b.StopServer();
  poller.PollOnce();
  poller.PollOnce();
  ASSERT_TRUE(JsonValue::Parse(poller.FleetzJson(), &doc).ok());
  EXPECT_EQ(doc.GetInt("live", -1), 1);
  const std::vector<FleetPoller::Replica> snapshot = poller.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_TRUE(snapshot[0].reachable);
  EXPECT_FALSE(snapshot[1].reachable);
  EXPECT_GE(snapshot[1].consecutive_failures, 2);
  // The dead replica's stale numbers leave the fleet sums too.
  const std::string text = poller.FleetMetricsText();
  EXPECT_NE(text.find("1/2 replicas reporting"), std::string::npos);
  EXPECT_EQ(text.find("{instance=\"" + b.instance() + "\"}"),
            std::string::npos);
}

TEST(FleetPollerTest, QpsComesFromRequestCounterDeltas) {
  FakeReplica a;
  a.set_requests(1000);
  a.set_request_step(50);  // +50 requests observed per poll
  FleetPoller poller(PollerOptionsFor({&a}));
  poller.PollOnce();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  poller.PollOnce();
  const std::vector<FleetPoller::Replica> snapshot = poller.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_GT(snapshot[0].qps, 0.0);
  // p99s surface from the histogram document (sum/2 in the fake).
  EXPECT_DOUBLE_EQ(snapshot[0].p99_wall_ms, 5.0);
}

}  // namespace
}  // namespace warpindex
