// Cross-method integration tests: all four strategies must return the
// exact same answer set (Naive-Scan is ground truth), and their cost
// accounting must reflect their access patterns.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

class SearchMethodsTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    RandomWalkOptions rw;
    rw.num_sequences = 120;
    rw.min_length = 30;
    rw.max_length = 80;
    EngineOptions options;
    options.build_st_filter = true;
    options.st_filter_categories = 50;
    engine_ = new Engine(GenerateRandomWalkDataset(rw), options);
    queries_ = new std::vector<Sequence>(GenerateQueryWorkload(
        engine_->dataset(), QueryWorkloadOptions{.num_queries = 15}));
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete queries_;
    engine_ = nullptr;
    queries_ = nullptr;
  }

  static Engine* engine_;
  static std::vector<Sequence>* queries_;
};

Engine* SearchMethodsTest::engine_ = nullptr;
std::vector<Sequence>* SearchMethodsTest::queries_ = nullptr;

std::vector<SequenceId> Sorted(std::vector<SequenceId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST_F(SearchMethodsTest, AllMethodsAgreeOnMatches) {
  for (const double epsilon : {0.02, 0.1, 0.5}) {
    for (const Sequence& q : *queries_) {
      const auto truth = Sorted(
          engine_->SearchWith(MethodKind::kNaiveScan, q, epsilon).matches);
      EXPECT_EQ(Sorted(engine_->SearchWith(MethodKind::kTwSimSearch, q,
                                           epsilon)
                           .matches),
                truth)
          << "TW-Sim-Search diverged at eps=" << epsilon;
      EXPECT_EQ(
          Sorted(engine_->SearchWith(MethodKind::kLbScan, q, epsilon)
                     .matches),
          truth)
          << "LB-Scan diverged at eps=" << epsilon;
      EXPECT_EQ(
          Sorted(engine_->SearchWith(MethodKind::kStFilter, q, epsilon)
                     .matches),
          truth)
          << "ST-Filter diverged at eps=" << epsilon;
    }
  }
}

TEST_F(SearchMethodsTest, PerturbedCopyFindsItsSource) {
  // A query perturbed from sequence i by < std/2 per element should match
  // its source at a generous tolerance via every method.
  const Sequence& source = engine_->dataset()[3];
  const Sequence q = PerturbSequence(source, 1234);
  const double epsilon = source.StdDev();  // comfortably above std/2
  for (const MethodKind kind :
       {MethodKind::kTwSimSearch, MethodKind::kNaiveScan,
        MethodKind::kLbScan, MethodKind::kStFilter}) {
    const auto result = engine_->SearchWith(kind, q, epsilon);
    EXPECT_NE(std::find(result.matches.begin(), result.matches.end(), 3),
              result.matches.end())
        << MethodKindName(kind);
  }
}

TEST_F(SearchMethodsTest, CandidateCountsAtLeastMatches) {
  const Sequence& q = (*queries_)[0];
  for (const MethodKind kind :
       {MethodKind::kTwSimSearch, MethodKind::kNaiveScan,
        MethodKind::kLbScan, MethodKind::kStFilter}) {
    const auto result = engine_->SearchWith(kind, q, 0.1);
    EXPECT_GE(result.num_candidates, result.matches.size())
        << MethodKindName(kind);
  }
}

TEST_F(SearchMethodsTest, IndexFiltersBetterThanLbScan) {
  // Figure 2's headline: TW-Sim-Search's candidate ratio is far below
  // LB-Scan's. Aggregated over the workload to avoid per-query noise.
  size_t tw_candidates = 0;
  size_t lb_candidates = 0;
  for (const Sequence& q : *queries_) {
    tw_candidates +=
        engine_->SearchWith(MethodKind::kTwSimSearch, q, 0.1).num_candidates;
    lb_candidates +=
        engine_->SearchWith(MethodKind::kLbScan, q, 0.1).num_candidates;
  }
  EXPECT_LE(tw_candidates, lb_candidates);
}

TEST_F(SearchMethodsTest, ScansPaySequentialIoIndexPaysRandom) {
  const Sequence& q = (*queries_)[1];
  const auto naive = engine_->SearchWith(MethodKind::kNaiveScan, q, 0.1);
  EXPECT_EQ(naive.cost.io.sequential_page_reads,
            engine_->store().num_pages());
  EXPECT_EQ(naive.cost.io.random_page_reads, 0u);

  const auto tw = engine_->SearchWith(MethodKind::kTwSimSearch, q, 0.1);
  EXPECT_EQ(tw.cost.io.sequential_page_reads, 0u);
  EXPECT_GT(tw.cost.io.random_page_reads, 0u);
  // The index method must touch far fewer pages than a full scan.
  EXPECT_LT(tw.cost.io.TotalPageReads(),
            naive.cost.io.TotalPageReads());
}

TEST_F(SearchMethodsTest, LbScanComputesFewerDtwCellsThanNaive) {
  uint64_t naive_cells = 0;
  uint64_t lb_cells = 0;
  for (const Sequence& q : *queries_) {
    naive_cells +=
        engine_->SearchWith(MethodKind::kNaiveScan, q, 0.05).cost.dtw_cells;
    lb_cells +=
        engine_->SearchWith(MethodKind::kLbScan, q, 0.05).cost.dtw_cells;
  }
  EXPECT_LT(lb_cells, naive_cells);
}

TEST_F(SearchMethodsTest, CostsArePopulated) {
  const Sequence& q = (*queries_)[2];
  const auto tw = engine_->SearchWith(MethodKind::kTwSimSearch, q, 0.1);
  EXPECT_GT(tw.cost.index_nodes, 0u);
  EXPECT_GE(tw.cost.wall_ms, 0.0);
  const auto lb = engine_->SearchWith(MethodKind::kLbScan, q, 0.1);
  EXPECT_EQ(lb.cost.lb_evals, engine_->dataset().size());
  const auto st = engine_->SearchWith(MethodKind::kStFilter, q, 0.1);
  EXPECT_GT(st.cost.index_nodes, 0u);
}

TEST_F(SearchMethodsTest, MatchesMonotoneInEpsilon) {
  const Sequence& q = (*queries_)[3];
  size_t prev = 0;
  for (const double epsilon : {0.01, 0.05, 0.1, 0.3, 1.0}) {
    const auto result =
        engine_->SearchWith(MethodKind::kTwSimSearch, q, epsilon);
    EXPECT_GE(result.matches.size(), prev);
    prev = result.matches.size();
  }
}

TEST_F(SearchMethodsTest, MethodNames) {
  EXPECT_STREQ(engine_->method(MethodKind::kTwSimSearch).name(),
               "TW-Sim-Search");
  EXPECT_STREQ(engine_->method(MethodKind::kNaiveScan).name(),
               "Naive-Scan");
  EXPECT_STREQ(engine_->method(MethodKind::kLbScan).name(), "LB-Scan");
  EXPECT_STREQ(engine_->method(MethodKind::kStFilter).name(), "ST-Filter");
}

}  // namespace
}  // namespace warpindex
