// net/socket.h: the blocking-socket primitives shared by the HTTP
// introspection server and the wire protocol. Covers the contracts the
// upper layers lean on: ephemeral-port readback, Shutdown() waking a
// blocked Accept(), typed connect failures (refused vs timeout), and
// RecvFull distinguishing clean close / mid-message death / SO_RCVTIMEO
// expiry.

#include "net/socket.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>

namespace warpindex {
namespace {

TEST(NetSocketTest, ListenReportsEphemeralPort) {
  TcpListener listener;
  ASSERT_TRUE(listener.Listen(TcpListenerOptions{}).ok());
  EXPECT_TRUE(listener.listening());
  EXPECT_GT(listener.port(), 0);
}

TEST(NetSocketTest, ConnectSendRecvRoundTrip) {
  TcpListener listener;
  ASSERT_TRUE(listener.Listen(TcpListenerOptions{}).ok());

  int server_fd = -1;
  std::thread acceptor([&] { server_fd = listener.Accept(); });

  int client_fd = -1;
  ASSERT_TRUE(
      TcpConnect("127.0.0.1", listener.port(), 2000, &client_fd).ok());
  acceptor.join();
  ASSERT_GE(server_fd, 0);
  ASSERT_GE(client_fd, 0);

  const std::string payload = "hello over loopback";
  ASSERT_TRUE(SendAll(client_fd, payload));

  std::string buffer(payload.size(), '\0');
  size_t received = 0;
  EXPECT_EQ(RecvFull(server_fd, buffer.data(), buffer.size(), &received),
            RecvOutcome::kOk);
  EXPECT_EQ(buffer, payload);

  CloseSocket(client_fd);
  CloseSocket(server_fd);
}

TEST(NetSocketTest, RecvFullReportsCleanCloseVersusMidMessage) {
  TcpListener listener;
  ASSERT_TRUE(listener.Listen(TcpListenerOptions{}).ok());
  int server_fd = -1;
  std::thread acceptor([&] { server_fd = listener.Accept(); });
  int client_fd = -1;
  ASSERT_TRUE(
      TcpConnect("127.0.0.1", listener.port(), 2000, &client_fd).ok());
  acceptor.join();
  ASSERT_GE(server_fd, 0);

  // Peer sends 3 bytes of an expected 8 and dies: kClosed with a
  // nonzero partial count (mid-message death).
  ASSERT_TRUE(SendAll(client_fd, "abc", 3));
  CloseSocket(client_fd);

  char buffer[8];
  size_t received = 0;
  EXPECT_EQ(RecvFull(server_fd, buffer, sizeof(buffer), &received),
            RecvOutcome::kClosed);
  EXPECT_EQ(received, 3u);

  // And with nothing buffered at all: a clean between-messages close.
  EXPECT_EQ(RecvFull(server_fd, buffer, sizeof(buffer), &received),
            RecvOutcome::kClosed);
  EXPECT_EQ(received, 0u);
  CloseSocket(server_fd);
}

TEST(NetSocketTest, ReceiveTimeoutSurfacesAsTimeoutOutcome) {
  TcpListener listener;
  ASSERT_TRUE(listener.Listen(TcpListenerOptions{}).ok());
  int server_fd = -1;
  std::thread acceptor([&] { server_fd = listener.Accept(); });
  int client_fd = -1;
  ASSERT_TRUE(
      TcpConnect("127.0.0.1", listener.port(), 2000, &client_fd).ok());
  acceptor.join();
  ASSERT_GE(server_fd, 0);

  SetSocketIoTimeout(server_fd, 50);
  char buffer[4];
  size_t received = 0;
  EXPECT_EQ(RecvFull(server_fd, buffer, sizeof(buffer), &received),
            RecvOutcome::kTimeout);

  // Clearing the timeout restores blocking reads (send then read to
  // avoid blocking forever here).
  SetSocketIoTimeout(server_fd, 0);
  ASSERT_TRUE(SendAll(client_fd, "data", 4));
  EXPECT_EQ(RecvFull(server_fd, buffer, sizeof(buffer), &received),
            RecvOutcome::kOk);

  CloseSocket(client_fd);
  CloseSocket(server_fd);
}

TEST(NetSocketTest, ConnectRefusedIsUnavailable) {
  TcpListener listener;
  ASSERT_TRUE(listener.Listen(TcpListenerOptions{}).ok());
  const uint16_t dead_port = listener.port();
  listener.Shutdown();
  listener.Close();  // nothing listens here any more

  int fd = -1;
  const Status status = TcpConnect("127.0.0.1", dead_port, 1000, &fd);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();
  EXPECT_EQ(fd, -1);
}

TEST(NetSocketTest, ConnectMalformedAddressIsInvalidArgument) {
  int fd = -1;
  const Status status = TcpConnect("not-an-ip", 80, 100, &fd);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
      << status.ToString();
}

TEST(NetSocketTest, ShutdownWakesBlockedAccept) {
  TcpListener listener;
  ASSERT_TRUE(listener.Listen(TcpListenerOptions{}).ok());

  int accepted = 0;
  std::thread acceptor([&] { accepted = listener.Accept(); });
  // Give the acceptor time to block, then break it from another thread.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  listener.Shutdown();
  acceptor.join();
  EXPECT_EQ(accepted, -1);
  // Idempotent, and every later Accept() returns -1 immediately.
  listener.Shutdown();
  EXPECT_EQ(listener.Accept(), -1);
}

TEST(NetSocketTest, SendAllToClosedPeerFailsWithoutSignal) {
  TcpListener listener;
  ASSERT_TRUE(listener.Listen(TcpListenerOptions{}).ok());
  int server_fd = -1;
  std::thread acceptor([&] { server_fd = listener.Accept(); });
  int client_fd = -1;
  ASSERT_TRUE(
      TcpConnect("127.0.0.1", listener.port(), 2000, &client_fd).ok());
  acceptor.join();
  CloseSocket(server_fd);

  // The first send may land in the kernel buffer; eventually the RST
  // turns sends into an error return (MSG_NOSIGNAL: no SIGPIPE, which
  // would kill the test binary).
  const std::string chunk(64 * 1024, 'x');
  bool failed = false;
  for (int i = 0; i < 64 && !failed; ++i) {
    failed = !SendAll(client_fd, chunk);
  }
  EXPECT_TRUE(failed);
  CloseSocket(client_fd);
}

}  // namespace
}  // namespace warpindex
