#include "dtw/warping_path.h"

#include <gtest/gtest.h>

namespace warpindex {
namespace {

TEST(WarpingPathTest, EmptyPathValidOnlyForEmptySequences) {
  const WarpingPath p;
  EXPECT_TRUE(p.IsValid(0, 0));
  EXPECT_FALSE(p.IsValid(1, 0));
  EXPECT_FALSE(p.IsValid(0, 1));
}

TEST(WarpingPathTest, DiagonalPathIsValid) {
  const WarpingPath p({{0, 0}, {1, 1}, {2, 2}});
  EXPECT_TRUE(p.IsValid(3, 3));
}

TEST(WarpingPathTest, StretchingPathIsValid) {
  const WarpingPath p({{0, 0}, {0, 1}, {1, 1}, {2, 2}, {3, 2}});
  EXPECT_TRUE(p.IsValid(4, 3));
}

TEST(WarpingPathTest, BoundaryViolationsDetected) {
  EXPECT_FALSE(WarpingPath({{1, 0}, {2, 1}}).IsValid(3, 2));  // bad start
  EXPECT_FALSE(WarpingPath({{0, 0}, {1, 1}}).IsValid(3, 2));  // bad end
}

TEST(WarpingPathTest, MonotonicityViolationDetected) {
  const WarpingPath p({{0, 0}, {1, 1}, {0, 2}, {2, 2}});
  EXPECT_FALSE(p.IsValid(3, 3));
}

TEST(WarpingPathTest, ContinuityViolationDetected) {
  // Jump of 2 in i.
  EXPECT_FALSE(WarpingPath({{0, 0}, {2, 1}}).IsValid(3, 2));
  // Repeated step (no advance).
  EXPECT_FALSE(WarpingPath({{0, 0}, {0, 0}, {1, 1}}).IsValid(2, 2));
}

TEST(WarpingPathTest, CostMaxCombiner) {
  const Sequence s({0.0, 5.0});
  const Sequence q({1.0, 4.0});
  const WarpingPath p({{0, 0}, {1, 1}});
  EXPECT_DOUBLE_EQ(p.Cost(s, q, DtwOptions::Linf()), 1.0);
}

TEST(WarpingPathTest, CostSumCombiner) {
  const Sequence s({0.0, 5.0});
  const Sequence q({1.0, 4.0});
  const WarpingPath p({{0, 0}, {1, 1}});
  EXPECT_DOUBLE_EQ(p.Cost(s, q, DtwOptions::L1()), 2.0);
}

TEST(WarpingPathTest, CostL2TakesSqrt) {
  const Sequence s({0.0, 0.0});
  const Sequence q({3.0, 4.0});
  const WarpingPath p({{0, 0}, {1, 1}});
  EXPECT_DOUBLE_EQ(p.Cost(s, q, DtwOptions::L2()), 5.0);
}

TEST(WarpingPathTest, ToStringListsSteps) {
  const WarpingPath p({{0, 0}, {1, 1}});
  EXPECT_EQ(p.ToString(), "[(0,0), (1,1)]");
}

}  // namespace
}  // namespace warpindex
