// Concurrency stress for the sharded BufferPool. The functional LRU
// behaviour is covered by buffer_pool_test.cc; here we hammer one pool
// from many threads and check the invariants that must survive any
// interleaving. Run under TSan in CI to certify the locking.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"

namespace warpindex {
namespace {

TEST(BufferPoolConcurrentTest, AutoShardingKicksInForLargePools) {
  const BufferPool small(8);
  EXPECT_EQ(small.num_shards(), 1u);  // exact LRU for small pools
  const BufferPool large(256);
  EXPECT_GT(large.num_shards(), 1u);
  EXPECT_LE(large.num_shards(), BufferPool::kMaxShards);
  const BufferPool forced(256, 4);
  EXPECT_EQ(forced.num_shards(), 4u);
}

TEST(BufferPoolConcurrentTest, CountersConserveUnderConcurrentAccess) {
  const BufferPool pool(128);
  constexpr int kThreads = 8;
  constexpr int kAccessesPerThread = 20000;
  constexpr PageId kPageSpace = 512;  // larger than capacity: real evictions

  std::vector<std::thread> threads;
  std::vector<uint64_t> local_hits(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &local_hits, t]() {
      IoStats stats;
      uint64_t hits = 0;
      // Skewed stride per thread: plenty of overlap across threads, so
      // shards see concurrent hits, misses, and evictions.
      for (int i = 0; i < kAccessesPerThread; ++i) {
        const PageId page =
            static_cast<PageId>((i * (t + 1) + t) % kPageSpace);
        if (pool.Access(page, &stats)) {
          ++hits;
        }
      }
      local_hits[static_cast<size_t>(t)] = hits;
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  uint64_t expected_hits = 0;
  for (uint64_t h : local_hits) {
    expected_hits += h;
  }
  // Every access is exactly one hit or one miss, across all threads.
  EXPECT_EQ(pool.hits() + pool.misses(),
            static_cast<uint64_t>(kThreads) * kAccessesPerThread);
  EXPECT_EQ(pool.hits(), expected_hits);
  // No shard may overflow its share of the frame budget.
  EXPECT_LE(pool.size(), pool.capacity());
}

TEST(BufferPoolConcurrentTest, ClearRacesWithAccess) {
  const BufferPool pool(128);
  std::atomic<bool> stop{false};
  std::thread clearer([&pool, &stop]() {
    while (!stop.load()) {
      pool.Clear();
    }
  });
  std::vector<std::thread> accessors;
  for (int t = 0; t < 4; ++t) {
    accessors.emplace_back([&pool, t]() {
      IoStats stats;
      for (int i = 0; i < 50000; ++i) {
        pool.Access(static_cast<PageId>((i + t * 13) % 300), &stats);
      }
    });
  }
  for (std::thread& t : accessors) {
    t.join();
  }
  stop.store(true);
  clearer.join();
  EXPECT_EQ(pool.hits() + pool.misses(), 4u * 50000u);
  EXPECT_LE(pool.size(), pool.capacity());
}

TEST(BufferPoolConcurrentTest, ZeroCapacityPoolNeverCaches) {
  const BufferPool pool(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool]() {
      IoStats stats;
      for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(pool.Access(static_cast<PageId>(i % 10), &stats));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), 4u * 1000u);
  EXPECT_EQ(pool.size(), 0u);
}

}  // namespace
}  // namespace warpindex
