#include "common/status.h"

#include <gtest/gtest.h>

namespace warpindex {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("nf").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("io").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::FailedPrecondition("fp").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("oor").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("int").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("disk on fire").message(), "disk on fire");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status s = Status::IoError("short read");
  EXPECT_EQ(s.ToString(), "IO_ERROR: short read");
  EXPECT_FALSE(s.ok());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

Status FailsThrough() {
  WARPINDEX_RETURN_IF_ERROR(Status::NotFound("inner"));
  return Status::Internal("unreachable");
}

Status Passes() {
  WARPINDEX_RETURN_IF_ERROR(Status::Ok());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kNotFound);
  EXPECT_TRUE(Passes().ok());
}

}  // namespace
}  // namespace warpindex
