#include "core/tw_knn_search.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"
#include "sequence/stock_generator.h"

namespace warpindex {
namespace {

Dataset WalkDataset(size_t n = 150, size_t min_len = 30,
                    size_t max_len = 80) {
  RandomWalkOptions options;
  options.num_sequences = n;
  options.min_length = min_len;
  options.max_length = max_len;
  return GenerateRandomWalkDataset(options);
}

std::vector<KnnMatch> BruteForceKnn(const Dataset& d, const Sequence& q,
                                    size_t k) {
  const Dtw dtw(DtwOptions::Linf());
  std::vector<KnnMatch> all;
  for (size_t i = 0; i < d.size(); ++i) {
    all.push_back(
        {static_cast<SequenceId>(i), dtw.Distance(d[i], q).distance});
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const KnnMatch& a, const KnnMatch& b) {
                     return a.distance < b.distance;
                   });
  all.resize(std::min(k, all.size()));
  return all;
}

TEST(TwKnnSearchTest, MatchesBruteForceDistances) {
  const Engine engine(WalkDataset(), EngineOptions{});
  const auto queries = GenerateQueryWorkload(
      engine.dataset(), QueryWorkloadOptions{.num_queries = 10});
  for (const Sequence& q : queries) {
    for (const size_t k : {1u, 3u, 10u}) {
      const KnnResult got = engine.SearchKnn(q, k);
      const auto expected = BruteForceKnn(engine.dataset(), q, k);
      ASSERT_EQ(got.neighbors.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        // Ties can permute ids; distances must agree exactly.
        EXPECT_NEAR(got.neighbors[i].distance, expected[i].distance, 1e-9)
            << "k=" << k << " i=" << i;
      }
    }
  }
}

TEST(TwKnnSearchTest, NearestOfPerturbedCopyIsItsSource) {
  const Engine engine(WalkDataset(), EngineOptions{});
  for (const SequenceId source : {0, 17, 64}) {
    const Sequence q = PerturbSequence(
        engine.dataset()[static_cast<size_t>(source)],
        static_cast<uint64_t>(source) + 1);
    const KnnResult result = engine.SearchKnn(q, 1);
    ASSERT_EQ(result.neighbors.size(), 1u);
    EXPECT_EQ(result.neighbors[0].id, source);
  }
}

TEST(TwKnnSearchTest, ExactCopyHasDistanceZero) {
  const Engine engine(WalkDataset(), EngineOptions{});
  const KnnResult result = engine.SearchKnn(engine.dataset()[5], 1);
  ASSERT_EQ(result.neighbors.size(), 1u);
  EXPECT_EQ(result.neighbors[0].id, 5);
  EXPECT_EQ(result.neighbors[0].distance, 0.0);
}

TEST(TwKnnSearchTest, DistancesNonDecreasing) {
  const Engine engine(WalkDataset(), EngineOptions{});
  const Sequence q = PerturbSequence(engine.dataset()[9], 99);
  const KnnResult result = engine.SearchKnn(q, 20);
  ASSERT_EQ(result.neighbors.size(), 20u);
  for (size_t i = 1; i < result.neighbors.size(); ++i) {
    EXPECT_GE(result.neighbors[i].distance,
              result.neighbors[i - 1].distance);
  }
}

TEST(TwKnnSearchTest, KLargerThanDatabaseReturnsEverything) {
  const Engine engine(WalkDataset(12, 20, 30), EngineOptions{});
  const KnnResult result = engine.SearchKnn(engine.dataset()[0], 50);
  EXPECT_EQ(result.neighbors.size(), 12u);
}

TEST(TwKnnSearchTest, RefinesOnlyAFractionOfTheDatabase) {
  // The filter-and-refine cutoff should spare most exact evaluations when
  // the query sits close to its source.
  const Engine engine(WalkDataset(400, 50, 100), EngineOptions{});
  const Sequence q = PerturbSequence(engine.dataset()[123], 7);
  const KnnResult result = engine.SearchKnn(q, 5);
  EXPECT_EQ(result.neighbors.size(), 5u);
  EXPECT_LT(result.num_refined, engine.dataset().size() / 2);
  EXPECT_GE(result.num_refined, 5u);
}

TEST(TwKnnSearchTest, CostsPopulated) {
  const Engine engine(WalkDataset(), EngineOptions{});
  const KnnResult result = engine.SearchKnn(engine.dataset()[3], 4);
  EXPECT_GT(result.cost.index_nodes, 0u);
  EXPECT_GT(result.cost.io.random_page_reads, 0u);
  EXPECT_GT(result.cost.dtw_cells, 0u);
  EXPECT_GE(result.cost.wall_ms, 0.0);
}

TEST(TwKnnSearchTest, WorksOnStockCorpus) {
  StockDataOptions stock;
  stock.num_sequences = 120;
  const Engine engine(GenerateStockDataset(stock), EngineOptions{});
  const Sequence q = PerturbSequence(engine.dataset()[40], 11);
  const KnnResult got = engine.SearchKnn(q, 3);
  const auto expected = BruteForceKnn(engine.dataset(), q, 3);
  ASSERT_EQ(got.neighbors.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(got.neighbors[i].distance, expected[i].distance, 1e-9);
  }
  EXPECT_EQ(got.neighbors[0].id, 40);
}

}  // namespace
}  // namespace warpindex
