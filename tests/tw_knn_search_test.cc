#include "core/tw_knn_search.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"
#include "sequence/stock_generator.h"

namespace warpindex {
namespace {

Dataset WalkDataset(size_t n = 150, size_t min_len = 30,
                    size_t max_len = 80) {
  RandomWalkOptions options;
  options.num_sequences = n;
  options.min_length = min_len;
  options.max_length = max_len;
  return GenerateRandomWalkDataset(options);
}

std::vector<KnnMatch> BruteForceKnn(const Dataset& d, const Sequence& q,
                                    size_t k) {
  const Dtw dtw(DtwOptions::Linf());
  std::vector<KnnMatch> all;
  for (size_t i = 0; i < d.size(); ++i) {
    all.push_back(
        {static_cast<SequenceId>(i), dtw.Distance(d[i], q).distance});
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const KnnMatch& a, const KnnMatch& b) {
                     return a.distance < b.distance;
                   });
  all.resize(std::min(k, all.size()));
  return all;
}

TEST(TwKnnSearchTest, MatchesBruteForceDistances) {
  const Engine engine(WalkDataset(), EngineOptions{});
  const auto queries = GenerateQueryWorkload(
      engine.dataset(), QueryWorkloadOptions{.num_queries = 10});
  for (const Sequence& q : queries) {
    for (const size_t k : {1u, 3u, 10u}) {
      const KnnResult got = engine.SearchKnn(q, k);
      const auto expected = BruteForceKnn(engine.dataset(), q, k);
      ASSERT_EQ(got.neighbors.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        // Ties can permute ids; distances must agree exactly.
        EXPECT_NEAR(got.neighbors[i].distance, expected[i].distance, 1e-9)
            << "k=" << k << " i=" << i;
      }
    }
  }
}

TEST(TwKnnSearchTest, NearestOfPerturbedCopyIsItsSource) {
  const Engine engine(WalkDataset(), EngineOptions{});
  for (const SequenceId source : {0, 17, 64}) {
    const Sequence q = PerturbSequence(
        engine.dataset()[static_cast<size_t>(source)],
        static_cast<uint64_t>(source) + 1);
    const KnnResult result = engine.SearchKnn(q, 1);
    ASSERT_EQ(result.neighbors.size(), 1u);
    EXPECT_EQ(result.neighbors[0].id, source);
  }
}

TEST(TwKnnSearchTest, ExactCopyHasDistanceZero) {
  const Engine engine(WalkDataset(), EngineOptions{});
  const KnnResult result = engine.SearchKnn(engine.dataset()[5], 1);
  ASSERT_EQ(result.neighbors.size(), 1u);
  EXPECT_EQ(result.neighbors[0].id, 5);
  EXPECT_EQ(result.neighbors[0].distance, 0.0);
}

TEST(TwKnnSearchTest, DistancesNonDecreasing) {
  const Engine engine(WalkDataset(), EngineOptions{});
  const Sequence q = PerturbSequence(engine.dataset()[9], 99);
  const KnnResult result = engine.SearchKnn(q, 20);
  ASSERT_EQ(result.neighbors.size(), 20u);
  for (size_t i = 1; i < result.neighbors.size(); ++i) {
    EXPECT_GE(result.neighbors[i].distance,
              result.neighbors[i - 1].distance);
  }
}

TEST(TwKnnSearchTest, KLargerThanDatabaseReturnsEverything) {
  const Engine engine(WalkDataset(12, 20, 30), EngineOptions{});
  const KnnResult result = engine.SearchKnn(engine.dataset()[0], 50);
  EXPECT_EQ(result.neighbors.size(), 12u);
}

TEST(TwKnnSearchTest, RefinesOnlyAFractionOfTheDatabase) {
  // The filter-and-refine cutoff should spare most exact evaluations when
  // the query sits close to its source.
  const Engine engine(WalkDataset(400, 50, 100), EngineOptions{});
  const Sequence q = PerturbSequence(engine.dataset()[123], 7);
  const KnnResult result = engine.SearchKnn(q, 5);
  EXPECT_EQ(result.neighbors.size(), 5u);
  EXPECT_LT(result.num_refined, engine.dataset().size() / 2);
  EXPECT_GE(result.num_refined, 5u);
}

TEST(TwKnnSearchTest, CostsPopulated) {
  const Engine engine(WalkDataset(), EngineOptions{});
  const KnnResult result = engine.SearchKnn(engine.dataset()[3], 4);
  EXPECT_GT(result.cost.index_nodes, 0u);
  EXPECT_GT(result.cost.io.random_page_reads, 0u);
  EXPECT_GT(result.cost.dtw_cells, 0u);
  EXPECT_GE(result.cost.wall_ms, 0.0);
}

TEST(TwKnnSearchTest, TiesResolveByIdDeterministically) {
  // Five exact copies of one sequence: the distance-0 tie at every rank
  // must resolve by SequenceId, so the answer is the lowest ids in
  // increasing order — regardless of heap insertion order.
  Dataset source = WalkDataset(40, 20, 30);
  std::vector<Sequence> sequences;
  for (size_t i = 0; i < source.size(); ++i) {
    sequences.push_back(source[i]);
  }
  const Sequence dup = source[10];
  sequences.push_back(dup);  // id 40
  sequences.push_back(dup);  // id 41
  sequences.push_back(dup);  // id 42
  sequences.push_back(dup);  // id 43
  const Engine engine(Dataset(std::move(sequences)), EngineOptions{});

  const KnnResult result = engine.SearchKnn(dup, 3);
  ASSERT_EQ(result.neighbors.size(), 3u);
  EXPECT_EQ(result.neighbors[0].id, 10);
  EXPECT_EQ(result.neighbors[1].id, 40);
  EXPECT_EQ(result.neighbors[2].id, 41);
  for (const KnnMatch& m : result.neighbors) {
    EXPECT_EQ(m.distance, 0.0);
  }
  // The canonical comparator agrees with the returned order.
  EXPECT_TRUE(std::is_sorted(result.neighbors.begin(),
                             result.neighbors.end(), KnnMatchOrder));
}

TEST(TwKnnSearchTest, KnnMatchOrderBreaksDistanceTiesById) {
  const KnnMatch near_low{3, 1.0};
  const KnnMatch near_high{7, 1.0};
  const KnnMatch far{1, 2.0};
  EXPECT_TRUE(KnnMatchOrder(near_low, near_high));
  EXPECT_FALSE(KnnMatchOrder(near_high, near_low));
  EXPECT_TRUE(KnnMatchOrder(near_high, far));
  EXPECT_FALSE(KnnMatchOrder(far, near_low));
  EXPECT_FALSE(KnnMatchOrder(near_low, near_low));  // irreflexive
}

TEST(SharedKnnBoundTest, TightenOnlyEverDecreases) {
  SharedKnnBound bound;
  EXPECT_EQ(bound.Current(), kInfiniteDistance);
  bound.Tighten(5.0);
  EXPECT_EQ(bound.Current(), 5.0);
  bound.Tighten(9.0);  // looser: ignored
  EXPECT_EQ(bound.Current(), 5.0);
  bound.Tighten(2.5);
  EXPECT_EQ(bound.Current(), 2.5);
}

TEST(SharedKnnBoundTest, PreTightenedBoundKeepsTopKExact) {
  // A foreign searcher may publish the global k-th distance before this
  // partition starts. Pruning is strictly-greater-than, so everything in
  // the true top-k — including ties AT the bound — must still surface.
  const Engine engine(WalkDataset(200, 30, 60), EngineOptions{});
  const auto queries = GenerateQueryWorkload(
      engine.dataset(), QueryWorkloadOptions{.num_queries = 6, .seed = 5});
  for (const Sequence& q : queries) {
    const KnnResult unbounded = engine.SearchKnn(q, 7);
    ASSERT_EQ(unbounded.neighbors.size(), 7u);
    SharedKnnBound bound;
    bound.Tighten(unbounded.neighbors.back().distance);
    const KnnResult bounded = engine.SearchKnnBounded(q, 7, nullptr, &bound);
    ASSERT_EQ(bounded.neighbors.size(), 7u);
    for (size_t i = 0; i < 7; ++i) {
      EXPECT_EQ(bounded.neighbors[i].id, unbounded.neighbors[i].id);
      EXPECT_EQ(bounded.neighbors[i].distance,
                unbounded.neighbors[i].distance);
    }
    // The bounded search should refine no MORE than the unbounded one.
    EXPECT_LE(bounded.num_refined, unbounded.num_refined);
  }
}

TEST(TwKnnSearchTest, WorksOnStockCorpus) {
  StockDataOptions stock;
  stock.num_sequences = 120;
  const Engine engine(GenerateStockDataset(stock), EngineOptions{});
  const Sequence q = PerturbSequence(engine.dataset()[40], 11);
  const KnnResult got = engine.SearchKnn(q, 3);
  const auto expected = BruteForceKnn(engine.dataset(), q, 3);
  ASSERT_EQ(got.neighbors.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(got.neighbors[i].distance, expected[i].distance, 1e-9);
  }
  EXPECT_EQ(got.neighbors[0].id, 40);
}

}  // namespace
}  // namespace warpindex
