#include "obs/slow_log.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace warpindex {
namespace {

FlightRecord MakeRecord(double wall_ms) {
  FlightRecord record;
  record.method = "TW-Sim-Search";
  record.wall_ms = wall_ms;
  return record;
}

TEST(SlowQueryLogTest, KeepsEverythingUnderCapacity) {
  SlowQueryLog log(8);
  log.Record(MakeRecord(3.0));
  log.Record(MakeRecord(1.0));
  log.Record(MakeRecord(2.0));
  const std::vector<FlightRecord> snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_DOUBLE_EQ(snapshot[0].wall_ms, 3.0);
  EXPECT_DOUBLE_EQ(snapshot[1].wall_ms, 2.0);
  EXPECT_DOUBLE_EQ(snapshot[2].wall_ms, 1.0);
  EXPECT_EQ(log.offered(), 3u);
}

TEST(SlowQueryLogTest, EvictsFastestWhenFull) {
  SlowQueryLog log(3);
  log.Record(MakeRecord(5.0));
  log.Record(MakeRecord(1.0));
  log.Record(MakeRecord(3.0));
  // 1.0 is the floor; 2.0 evicts it, then 4.0 evicts 2.0.
  log.Record(MakeRecord(2.0));
  log.Record(MakeRecord(4.0));
  const std::vector<FlightRecord> snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_DOUBLE_EQ(snapshot[0].wall_ms, 5.0);
  EXPECT_DOUBLE_EQ(snapshot[1].wall_ms, 4.0);
  EXPECT_DOUBLE_EQ(snapshot[2].wall_ms, 3.0);
}

TEST(SlowQueryLogTest, RejectsRecordsAtOrBelowTheFloor) {
  SlowQueryLog log(2);
  log.Record(MakeRecord(10.0));
  log.Record(MakeRecord(5.0));
  EXPECT_DOUBLE_EQ(log.admission_threshold_ms(), 5.0);
  // Equal to the floor: the incumbent keeps its slot.
  log.Record(MakeRecord(5.0));
  log.Record(MakeRecord(4.0));
  const std::vector<FlightRecord> snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_DOUBLE_EQ(snapshot[0].wall_ms, 10.0);
  EXPECT_DOUBLE_EQ(snapshot[1].wall_ms, 5.0);
  EXPECT_EQ(snapshot[1].seq, 2u);  // the first 5.0, not the later tie
  EXPECT_EQ(log.offered(), 4u);
}

TEST(SlowQueryLogTest, AdmissionThresholdZeroWhileNotFull) {
  SlowQueryLog log(4);
  EXPECT_DOUBLE_EQ(log.admission_threshold_ms(), 0.0);
  log.Record(MakeRecord(7.0));
  EXPECT_DOUBLE_EQ(log.admission_threshold_ms(), 0.0);
}

TEST(SlowQueryLogTest, WorstKEvictionOrderOverManyRecords) {
  constexpr size_t kWorstK = 8;
  SlowQueryLog log(kWorstK);
  // Offer the permutation 0, 99, 1, 98, 2, 97, ... of 0..99; the log
  // must retain exactly 92..99 regardless of arrival order.
  for (int i = 0; i < 100; ++i) {
    const int value = (i % 2 == 0) ? i / 2 : 99 - i / 2;
    log.Record(MakeRecord(static_cast<double>(value)));
  }
  const std::vector<FlightRecord> snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), kWorstK);
  for (size_t i = 0; i < kWorstK; ++i) {
    EXPECT_DOUBLE_EQ(snapshot[i].wall_ms, static_cast<double>(99 - i));
  }
  EXPECT_DOUBLE_EQ(log.admission_threshold_ms(), 92.0);
}

TEST(SlowQueryLogTest, CapacityClampedToAtLeastOne) {
  SlowQueryLog log(0);
  EXPECT_EQ(log.capacity(), 1u);
  log.Record(MakeRecord(1.0));
  log.Record(MakeRecord(2.0));
  const std::vector<FlightRecord> snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot[0].wall_ms, 2.0);
}

// Concurrent writers racing a snapshot reader; the final retained set
// must be exactly the K slowest offered. Runs under TSan in CI.
TEST(SlowQueryLogConcurrentTest, WritersRacingSnapshotReader) {
  constexpr size_t kWorstK = 16;
  constexpr int kWriters = 4;
  constexpr int kRecordsPerWriter = 1000;
  SlowQueryLog log(kWorstK);
  std::atomic<bool> done{false};

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::vector<FlightRecord> snapshot = log.Snapshot();
      EXPECT_LE(snapshot.size(), kWorstK);
      for (size_t i = 1; i < snapshot.size(); ++i) {
        EXPECT_GE(snapshot[i - 1].wall_ms, snapshot[i].wall_ms);
      }
    }
  });

  // Writer w offers latencies w, kWriters + w, 2*kWriters + w, ... so
  // the global worst-K is known exactly.
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&log, w] {
      for (int i = 0; i < kRecordsPerWriter; ++i) {
        log.Record(MakeRecord(static_cast<double>(i * kWriters + w)));
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }
  done.store(true, std::memory_order_release);
  reader.join();

  const int total = kWriters * kRecordsPerWriter;
  const std::vector<FlightRecord> snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), kWorstK);
  for (size_t i = 0; i < kWorstK; ++i) {
    EXPECT_DOUBLE_EQ(snapshot[i].wall_ms,
                     static_cast<double>(total - 1 - static_cast<int>(i)));
  }
  EXPECT_EQ(log.offered(), static_cast<uint64_t>(total));
}

}  // namespace
}  // namespace warpindex
