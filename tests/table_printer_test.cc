#include "common/table_printer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace warpindex {
namespace {

// Captures printer output through a temp file.
std::string Capture(
    const std::vector<std::string>& columns, bool csv,
    const std::vector<std::vector<std::string>>& rows) {
  const std::string path = testing::TempDir() + "/table_capture.txt";
  std::FILE* f = std::fopen(path.c_str(), "w+");
  EXPECT_NE(f, nullptr);
  {
    TablePrinter table(f, columns, csv);
    table.PrintHeader();
    for (const auto& row : rows) {
      table.PrintRow(row);
    }
  }
  std::fflush(f);
  std::rewind(f);
  std::string out;
  char buf[256];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  return out;
}

TEST(TablePrinterTest, AlignedModeHasHeaderRuleAndCells) {
  const std::string out =
      Capture({"alpha", "beta"}, false, {{"1", "2"}, {"3", "4"}});
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("3"), std::string::npos);
}

TEST(TablePrinterTest, CsvModeEmitsCommaRows) {
  const std::string out =
      Capture({"a", "b", "c"}, true, {{"1", "2", "3"}});
  EXPECT_NE(out.find("a,b,c\n"), std::string::npos);
  EXPECT_NE(out.find("1,2,3\n"), std::string::npos);
}

TEST(TablePrinterTest, ColumnWidthAtLeastHeaderLength) {
  const std::string out = Capture({"a_very_long_column_name", "b"}, false,
                                  {{"x", "y"}});
  // The rule under the long header is as long as the header.
  EXPECT_NE(out.find(std::string(23, '-')), std::string::npos);
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(TablePrinter::FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::FormatDouble(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::FormatInt(-42), "-42");
  EXPECT_EQ(TablePrinter::FormatInt(1234567890123LL), "1234567890123");
}

}  // namespace
}  // namespace warpindex
