#include "obs/httpd.h"

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace warpindex {
namespace {

// Sandboxed CI environments can forbid even loopback sockets; treat a
// failed bind as "introspection unavailable" and skip rather than fail.
#define SKIP_IF_NO_SOCKETS(server)                                   \
  do {                                                               \
    const Status start_status = (server).Start();                    \
    if (!start_status.ok()) {                                        \
      GTEST_SKIP() << "cannot bind loopback: "                       \
                   << start_status.ToString();                       \
    }                                                                \
  } while (0)

TEST(IntrospectionServerTest, ServesRegisteredRoute) {
  IntrospectionServer server;
  server.Handle("/hello", [](const HttpRequest&) {
    return HttpResponse{.body = "hi\n"};
  });
  SKIP_IF_NO_SOCKETS(server);
  ASSERT_NE(server.port(), 0);

  std::string body;
  int status_code = 0;
  ASSERT_TRUE(
      HttpGet("127.0.0.1", server.port(), "/hello", &body, &status_code)
          .ok());
  EXPECT_EQ(status_code, 200);
  EXPECT_EQ(body, "hi\n");
  EXPECT_EQ(server.requests_served(), 1u);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(IntrospectionServerTest, UnknownPathIs404) {
  IntrospectionServer server;
  server.Handle("/known", [](const HttpRequest&) {
    return HttpResponse{.body = "ok"};
  });
  SKIP_IF_NO_SOCKETS(server);

  std::string body;
  int status_code = 0;
  ASSERT_TRUE(
      HttpGet("127.0.0.1", server.port(), "/nope", &body, &status_code)
          .ok());
  EXPECT_EQ(status_code, 404);
}

TEST(IntrospectionServerTest, QueryStringIsStrippedFromPath) {
  IntrospectionServer server;
  std::string seen_query;
  server.Handle("/q", [&seen_query](const HttpRequest& request) {
    seen_query = request.query;
    return HttpResponse{.body = request.path};
  });
  SKIP_IF_NO_SOCKETS(server);

  std::string body;
  int status_code = 0;
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/q?verbose=1", &body,
                      &status_code)
                  .ok());
  EXPECT_EQ(status_code, 200);
  EXPECT_EQ(body, "/q");
  EXPECT_EQ(seen_query, "verbose=1");
}

TEST(IntrospectionServerTest, HandlerExceptionBecomes500) {
  IntrospectionServer server;
  server.Handle("/boom", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("handler bug");
  });
  SKIP_IF_NO_SOCKETS(server);

  std::string body;
  int status_code = 0;
  ASSERT_TRUE(
      HttpGet("127.0.0.1", server.port(), "/boom", &body, &status_code)
          .ok());
  EXPECT_EQ(status_code, 500);
}

TEST(IntrospectionServerTest, StopIsIdempotentAndRestartWorks) {
  IntrospectionServer server;
  server.Handle("/x", [](const HttpRequest&) {
    return HttpResponse{.body = "x"};
  });
  SKIP_IF_NO_SOCKETS(server);
  server.Stop();
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(IntrospectionServerTest, ConcurrentClientsAllGetAnswers) {
  IntrospectionServer server;
  std::atomic<int> calls{0};
  server.Handle("/count", [&calls](const HttpRequest&) {
    calls.fetch_add(1, std::memory_order_relaxed);
    return HttpResponse{.body = "ok"};
  });
  SKIP_IF_NO_SOCKETS(server);

  constexpr int kClients = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&server, &ok] {
      std::string body;
      int status_code = 0;
      if (HttpGet("127.0.0.1", server.port(), "/count", &body,
                  &status_code)
              .ok() &&
          status_code == 200) {
        ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  EXPECT_EQ(ok.load(), kClients);
  EXPECT_EQ(calls.load(), kClients);
  EXPECT_EQ(server.requests_served(), static_cast<uint64_t>(kClients));
}

TEST(HttpGetTest, ConnectionRefusedIsAnError) {
  // An ephemeral bind-then-close leaves a port nothing listens on; a
  // fixed dead port keeps the test hermetic enough.
  std::string body;
  const Status status = HttpGet("127.0.0.1", 1, "/x", &body, nullptr,
                                /*timeout_ms=*/500);
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace warpindex
