// The wire protocol end to end: frame layout and typed read errors,
// Status <-> kError body mapping, and the WireServer/WireClient pair —
// handshake identity, handler dispatch, admission shedding (quota and
// overload), graceful drain answering UNAVAILABLE, and the client
// deadline: a stalled peer (accepts, never answers) surfaces as
// kDeadlineExceeded, never a hang.

#include "net/wire.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/admission.h"
#include "net/socket.h"
#include "net/wire_client.h"
#include "net/wire_server.h"

namespace warpindex {
namespace {

// ---- Frame layout.

TEST(WireFrameTest, EncodedHeaderLayout) {
  WireFrame frame;
  frame.type = WireType::kRange;
  frame.request_id = 0x0102030405060708ull;
  frame.body = "{\"k\":1}";
  const std::string encoded = EncodeFrame(frame);
  ASSERT_EQ(encoded.size(), kWireHeaderBytes + frame.body.size());
  // Magic: "WNP" + version byte.
  EXPECT_EQ(encoded[0], 'W');
  EXPECT_EQ(encoded[1], 'N');
  EXPECT_EQ(encoded[2], 'P');
  EXPECT_EQ(static_cast<uint8_t>(encoded[3]), kWireProtocolVersion);
  EXPECT_EQ(static_cast<uint8_t>(encoded[4]),
            static_cast<uint8_t>(WireType::kRange));
  // Request id, little-endian at offset 8.
  EXPECT_EQ(static_cast<uint8_t>(encoded[8]), 0x08);
  EXPECT_EQ(static_cast<uint8_t>(encoded[15]), 0x01);
  // Body length, little-endian at offset 16.
  EXPECT_EQ(static_cast<uint8_t>(encoded[16]), frame.body.size());
  EXPECT_EQ(static_cast<uint8_t>(encoded[17]), 0);
  EXPECT_EQ(encoded.substr(kWireHeaderBytes), frame.body);
}

// A connected loopback socket pair for raw frame IO tests.
struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    TcpListener listener;
    EXPECT_TRUE(listener.Listen(TcpListenerOptions{}).ok());
    std::thread acceptor([&] { a = listener.Accept(); });
    EXPECT_TRUE(TcpConnect("127.0.0.1", listener.port(), 2000, &b).ok());
    acceptor.join();
  }
  ~SocketPair() {
    CloseSocket(a);
    CloseSocket(b);
  }
};

TEST(WireFrameTest, WriteReadRoundTrip) {
  SocketPair pair;
  WireFrame out;
  out.type = WireType::kKnn;
  out.request_id = 77;
  out.body = "{\"query\":[1.5,2.5]}";
  ASSERT_TRUE(WriteFrame(pair.b, out).ok());

  WireFrame in;
  ASSERT_TRUE(ReadFrame(pair.a, &in).ok());
  EXPECT_EQ(in.type, WireType::kKnn);
  EXPECT_EQ(in.request_id, 77u);
  EXPECT_EQ(in.body, out.body);
}

TEST(WireFrameTest, BadMagicIsIoError) {
  SocketPair pair;
  std::string junk(kWireHeaderBytes, '\0');
  std::memcpy(junk.data(), "HTTP", 4);  // an HTTP client knocking
  ASSERT_TRUE(SendAll(pair.b, junk));
  WireFrame in;
  EXPECT_EQ(ReadFrame(pair.a, &in).code(), StatusCode::kIoError);
}

TEST(WireFrameTest, WrongVersionIsIoError) {
  SocketPair pair;
  WireFrame out;
  out.type = WireType::kHealth;
  std::string encoded = EncodeFrame(out);
  encoded[3] = static_cast<char>(kWireProtocolVersion + 1);
  ASSERT_TRUE(SendAll(pair.b, encoded));
  WireFrame in;
  EXPECT_EQ(ReadFrame(pair.a, &in).code(), StatusCode::kIoError);
}

TEST(WireFrameTest, OversizedBodyRejectedBeforeAllocation) {
  SocketPair pair;
  WireFrame out;
  out.type = WireType::kRange;
  out.body = std::string(256, 'x');
  ASSERT_TRUE(SendAll(pair.b, EncodeFrame(out)));
  WireFrame in;
  EXPECT_EQ(ReadFrame(pair.a, &in, /*max_body=*/64).code(),
            StatusCode::kIoError);
}

TEST(WireFrameTest, CleanCloseBetweenFramesIsUnavailable) {
  SocketPair pair;
  CloseSocket(pair.b);
  pair.b = -1;
  WireFrame in;
  EXPECT_EQ(ReadFrame(pair.a, &in).code(), StatusCode::kUnavailable);
}

TEST(WireFrameTest, CloseMidFrameIsIoError) {
  SocketPair pair;
  WireFrame out;
  out.type = WireType::kRange;
  out.body = "{}";
  const std::string encoded = EncodeFrame(out);
  ASSERT_TRUE(SendAll(pair.b, encoded.data(), 7));  // partial header
  CloseSocket(pair.b);
  pair.b = -1;
  WireFrame in;
  EXPECT_EQ(ReadFrame(pair.a, &in).code(), StatusCode::kIoError);
}

TEST(WireFrameTest, IdleTimeoutIsRetryable) {
  SocketPair pair;
  SetSocketIoTimeout(pair.a, 50);
  WireFrame in;
  bool idle = false;
  const Status status = ReadFrame(pair.a, &in, kWireDefaultMaxBody, &idle);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(idle);  // zero bytes arrived: safe to keep the connection
}

// ---- Error body mapping.

TEST(WireErrorBodyTest, StatusRoundTrip) {
  const Status original = Status::ResourceExhausted("quota exceeded");
  const Status back = ErrorBodyToStatus(StatusToErrorBody(original));
  EXPECT_EQ(back.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(back.message(), "quota exceeded");
  for (const Status& status :
       {Status::Unavailable("draining"), Status::DeadlineExceeded("slow"),
        Status::InvalidArgument("bad"), Status::NotFound("missing"),
        Status::Internal("bug")}) {
    EXPECT_EQ(ErrorBodyToStatus(StatusToErrorBody(status)).code(),
              status.code());
  }
}

TEST(WireErrorBodyTest, UnknownCodeDegradesToInternal) {
  // A newer server's code name must not crash an older client.
  const Status status =
      ErrorBodyToStatus("{\"code\":\"SHINY_NEW\",\"message\":\"m\"}");
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(WireErrorBodyTest, MalformedBodyDegradesToInternal) {
  EXPECT_EQ(ErrorBodyToStatus("not json").code(), StatusCode::kInternal);
}

// ---- Client/server integration.

class WireServerTest : public ::testing::Test {
 protected:
  std::unique_ptr<WireServer> StartServer(WireServerOptions options) {
    options.io_timeout_ms = 50;  // fast drain/stop in tests
    auto server = std::make_unique<WireServer>(std::move(options));
    server->Handle(
        WireType::kRange,
        [this](const std::string& client_id, const JsonValue& request,
               JsonValue* response) {
          const int64_t sleep_ms = request.GetInt("sleep_ms", 0);
          if (sleep_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(sleep_ms));
          }
          ++handled_;
          response->Set("echo", JsonValue::Int(request.GetInt("x", -1)));
          response->Set("client", JsonValue::Str(client_id));
          return Status::Ok();
        });
    EXPECT_TRUE(server->Start().ok());
    return server;
  }

  WireClient MakeClient(const WireServer& server,
                        const std::string& client_id = "test-client") {
    WireClientOptions options;
    options.port = server.port();
    options.timeout_ms = 2000;
    options.client_id = client_id;
    return WireClient(options);
  }

  std::atomic<int> handled_{0};
};

TEST_F(WireServerTest, HelloHandshakeCarriesIdentityToHandlers) {
  auto server = StartServer(WireServerOptions{});
  WireClient client = MakeClient(*server, "alice");
  JsonValue info;
  ASSERT_TRUE(client.Connect(&info).ok());

  JsonValue request = JsonValue::Object();
  request.Set("x", JsonValue::Int(9));
  JsonValue response;
  ASSERT_TRUE(client.Call(WireType::kRange, request, &response).ok());
  EXPECT_EQ(response.GetInt("echo", -1), 9);
  // The identity from HELLO followed the connection into the handler.
  EXPECT_EQ(response.GetString("client", ""), "alice");
}

TEST_F(WireServerTest, HealthWorksWithoutRegistration) {
  auto server = StartServer(WireServerOptions{});
  WireClient client = MakeClient(*server);
  JsonValue response;
  EXPECT_TRUE(client.Call(WireType::kHealth, JsonValue::Object(),
                          &response)
                  .ok());
}

TEST_F(WireServerTest, UnregisteredTypeIsTypedError) {
  auto server = StartServer(WireServerOptions{});
  WireClient client = MakeClient(*server);
  JsonValue response;
  const Status status =
      client.Call(WireType::kKnn, JsonValue::Object(), &response);
  EXPECT_FALSE(status.ok());
}

TEST_F(WireServerTest, HandlerErrorCrossesAsItsStatusCode) {
  WireServerOptions options;
  options.io_timeout_ms = 50;
  auto server = std::make_unique<WireServer>(std::move(options));
  server->Handle(WireType::kRange,
                 [](const std::string&, const JsonValue&, JsonValue*) {
                   return Status::InvalidArgument("epsilon < 0");
                 });
  ASSERT_TRUE(server->Start().ok());
  WireClient client = MakeClient(*server);
  JsonValue response;
  const Status status =
      client.Call(WireType::kRange, JsonValue::Object(), &response);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "epsilon < 0");
  server->Stop();
}

TEST_F(WireServerTest, SequentialCallsReuseOneConnection) {
  auto server = StartServer(WireServerOptions{});
  WireClient client = MakeClient(*server);
  for (int i = 0; i < 5; ++i) {
    JsonValue request = JsonValue::Object();
    request.Set("x", JsonValue::Int(i));
    JsonValue response;
    ASSERT_TRUE(client.Call(WireType::kRange, request, &response).ok());
    EXPECT_EQ(response.GetInt("echo", -1), i);
  }
  EXPECT_EQ(server->stats().connections_total, 1u);
  EXPECT_EQ(client.calls(), 6u);  // 5 ranges + the implicit HELLO
}

// Satellite: the client deadline. A peer that accepts the connection
// but never answers must surface as kDeadlineExceeded within the
// timeout — never a hang — and the connection must be dropped (stream
// position unknown).
TEST_F(WireServerTest, StalledPeerSurfacesAsDeadlineExceeded) {
  TcpListener stalled;
  ASSERT_TRUE(stalled.Listen(TcpListenerOptions{}).ok());
  std::atomic<bool> stop{false};
  std::thread acceptor([&] {
    // Accept connections and hold them open silently.
    std::vector<int> held;
    while (!stop.load()) {
      const int fd = stalled.Accept();
      if (fd < 0) break;
      held.push_back(fd);
    }
    for (const int fd : held) CloseSocket(fd);
  });

  WireClientOptions options;
  options.port = stalled.port();
  options.timeout_ms = 200;
  WireClient client(options);

  const auto start = std::chrono::steady_clock::now();
  JsonValue response;
  const Status status =
      client.Call(WireType::kHealth, JsonValue::Object(), &response);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded)
      << status.ToString();
  EXPECT_LT(elapsed.count(), 2000);  // bounded, not hung
  EXPECT_FALSE(client.connected());  // desynced stream was dropped

  // The per-call override tightens an otherwise-long deadline.
  WireClientOptions slow = options;
  slow.timeout_ms = 60000;
  WireClient patient(slow);
  const Status overridden = patient.Call(WireType::kHealth,
                                         JsonValue::Object(), &response,
                                         /*timeout_ms_override=*/150);
  EXPECT_EQ(overridden.code(), StatusCode::kDeadlineExceeded);

  stop.store(true);
  stalled.Shutdown();
  acceptor.join();
}

TEST_F(WireServerTest, ConnectionRefusedIsUnavailable) {
  TcpListener probe;
  ASSERT_TRUE(probe.Listen(TcpListenerOptions{}).ok());
  const uint16_t dead_port = probe.port();
  probe.Shutdown();
  probe.Close();

  WireClientOptions options;
  options.port = dead_port;
  options.timeout_ms = 500;
  WireClient client(options);
  JsonValue response;
  EXPECT_EQ(client.Call(WireType::kHealth, JsonValue::Object(), &response)
                .code(),
            StatusCode::kUnavailable);
}

TEST_F(WireServerTest, PerClientQuotaShedsWithResourceExhausted) {
  WireServerOptions options;
  // Refill so slow (one token per 100 s) that the test's counts stay
  // deterministic even under TSan; the burst depth is what's measured.
  options.admission.per_client_qps = 0.01;
  options.admission.per_client_burst = 2.0;
  auto server = StartServer(std::move(options));
  WireClient client = MakeClient(*server, "greedy");

  JsonValue response;
  int ok = 0;
  int shed = 0;
  for (int i = 0; i < 6; ++i) {
    const Status status =
        client.Call(WireType::kRange, JsonValue::Object(), &response);
    if (status.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(status.code(), StatusCode::kResourceExhausted)
          << status.ToString();
      ++shed;
    }
  }
  EXPECT_EQ(ok, 2);    // the bucket depth
  EXPECT_EQ(shed, 4);  // everything past it, rejected not queued
  EXPECT_EQ(server->stats().shed_total, 4u);
  EXPECT_EQ(server->admission().shed_quota_total(), 4u);

  // HEALTH is exempt: it must work on an over-quota server.
  EXPECT_TRUE(
      client.Call(WireType::kHealth, JsonValue::Object(), &response).ok());
}

TEST_F(WireServerTest, InflightCapShedsOverload) {
  WireServerOptions options;
  options.admission.max_inflight = 1;
  auto server = StartServer(std::move(options));

  WireClient slow_client = MakeClient(*server, "slow");
  std::thread slow_call([&] {
    JsonValue request = JsonValue::Object();
    request.Set("sleep_ms", JsonValue::Int(400));
    JsonValue response;
    EXPECT_TRUE(
        slow_client.Call(WireType::kRange, request, &response).ok());
  });

  // Wait until the slow request is actually executing.
  while (server->stats().inflight < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  WireClient second = MakeClient(*server, "second");
  JsonValue response;
  EXPECT_EQ(
      second.Call(WireType::kRange, JsonValue::Object(), &response).code(),
      StatusCode::kResourceExhausted);
  EXPECT_GE(server->admission().shed_overload_total(), 1u);
  slow_call.join();
}

TEST_F(WireServerTest, DrainAnswersUnavailableAndWaitIdleCompletes) {
  auto server = StartServer(WireServerOptions{});
  WireClient client = MakeClient(*server);

  // An in-flight request rides out the drain...
  std::thread inflight([&] {
    JsonValue request = JsonValue::Object();
    request.Set("sleep_ms", JsonValue::Int(300));
    request.Set("x", JsonValue::Int(1));
    JsonValue response;
    const Status status =
        client.Call(WireType::kRange, request, &response);
    EXPECT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(response.GetInt("echo", -1), 1);
  });
  while (server->stats().inflight < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server->RequestDrain();
  EXPECT_TRUE(server->draining());

  // ...while a NEW query gets UNAVAILABLE — either because the drained
  // listener refuses the connection or because an existing connection
  // answers "draining". Both are the router's failover signal.
  WireClient late = MakeClient(*server, "late");
  JsonValue response;
  const Status late_status =
      late.Call(WireType::kRange, JsonValue::Object(), &response);
  EXPECT_EQ(late_status.code(), StatusCode::kUnavailable)
      << late_status.ToString();

  server->WaitIdle();
  EXPECT_EQ(server->stats().inflight, 0);
  inflight.join();
  server->Stop();
  EXPECT_EQ(handled_.load(), 1);
}

TEST_F(WireServerTest, DrainFrameDrainsOverTheWire) {
  auto server = StartServer(WireServerOptions{});
  WireClient client = MakeClient(*server);
  JsonValue response;
  ASSERT_TRUE(
      client.Call(WireType::kDrain, JsonValue::Object(), &response).ok());
  EXPECT_TRUE(server->draining());
  // The draining connection answers queries with UNAVAILABLE.
  const Status status =
      client.Call(WireType::kRange, JsonValue::Object(), &response);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();
  server->Stop();
}

TEST_F(WireServerTest, StopIsIdempotentAndJoinsEverything) {
  auto server = StartServer(WireServerOptions{});
  WireClient client = MakeClient(*server);
  JsonValue response;
  ASSERT_TRUE(
      client.Call(WireType::kRange, JsonValue::Object(), &response).ok());
  server->Stop();
  server->Stop();
  EXPECT_FALSE(server->running());
}

// ---- Admission controller unit coverage (clocked manually).

TEST(AdmissionTest, BucketRefillsAtQps) {
  AdmissionOptions options;
  options.per_client_qps = 10.0;  // one token per 100 ms
  options.per_client_burst = 1.0;
  AdmissionController admission(options);

  ASSERT_TRUE(admission.Admit("c", 0.0).ok());
  admission.Release();
  EXPECT_EQ(admission.Admit("c", 10.0).code(),
            StatusCode::kResourceExhausted);
  ASSERT_TRUE(admission.Admit("c", 150.0).ok());  // refilled
  admission.Release();
  EXPECT_EQ(admission.admitted_total(), 2u);
  EXPECT_EQ(admission.shed_quota_total(), 1u);
}

TEST(AdmissionTest, QuotaIsPerClient) {
  AdmissionOptions options;
  options.per_client_qps = 1.0;
  options.per_client_burst = 1.0;
  AdmissionController admission(options);
  ASSERT_TRUE(admission.Admit("a", 0.0).ok());
  // Client b has its own bucket; a's exhaustion does not starve b.
  EXPECT_TRUE(admission.Admit("b", 0.0).ok());
  EXPECT_EQ(admission.Admit("a", 1.0).code(),
            StatusCode::kResourceExhausted);
}

TEST(AdmissionTest, InflightCapIsGlobal) {
  AdmissionOptions options;
  options.max_inflight = 2;
  AdmissionController admission(options);
  ASSERT_TRUE(admission.Admit("a", 0.0).ok());
  ASSERT_TRUE(admission.Admit("b", 0.0).ok());
  EXPECT_EQ(admission.Admit("c", 0.0).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(admission.shed_overload_total(), 1u);
  admission.Release();
  EXPECT_TRUE(admission.Admit("c", 0.0).ok());
  EXPECT_EQ(admission.inflight(), 2);
}

TEST(AdmissionTest, UnmeteredAdmitsEverything) {
  AdmissionController admission(AdmissionOptions{});
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(admission.Admit("anyone", 0.0).ok());
  }
  EXPECT_EQ(admission.admitted_total(), 100u);
}

}  // namespace
}  // namespace warpindex
