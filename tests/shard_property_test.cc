// The sharding acceptance property: for every shard count, both
// partitioners, every search method, and kNN, a ShardedEngine answers
// bit-identically to a single Engine over the same dataset — with a real
// thread pool attached, so running this under TSan also certifies the
// scatter-gather fan-out and the shared kNN bound are race-free.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/engine.h"
#include "exec/thread_pool.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"
#include "shard/sharded_engine.h"

namespace warpindex {
namespace {

Dataset WalkDataset(uint64_t seed) {
  RandomWalkOptions options;
  options.num_sequences = 90;
  options.min_length = 20;
  options.max_length = 48;
  options.seed = seed;
  return GenerateRandomWalkDataset(options);
}

std::vector<SequenceId> Sorted(std::vector<SequenceId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class ShardPropertyTest : public ::testing::TestWithParam<PartitionerKind> {
};

TEST_P(ShardPropertyTest, EveryMethodMatchesSingleEngineForEveryK) {
  const uint64_t seeds[] = {3, 71};
  for (const uint64_t seed : seeds) {
    const Engine single(WalkDataset(seed), EngineOptions{});
    const auto queries = GenerateQueryWorkload(
        single.dataset(),
        QueryWorkloadOptions{.num_queries = 6, .seed = seed + 1});

    for (const size_t k : {1u, 2u, 4u, 7u}) {
      ShardedEngineOptions options;
      options.num_shards = k;
      options.partitioner = GetParam();
      ShardedEngine sharded(WalkDataset(seed), options);
      ThreadPool pool(4);
      sharded.AttachPool(&pool);

      const MethodKind kinds[] = {
          MethodKind::kTwSimSearch, MethodKind::kTwSimSearchCascade,
          MethodKind::kNaiveScan, MethodKind::kLbScan};
      for (const Sequence& q : queries) {
        for (const double epsilon : {0.1, 0.35}) {
          const std::vector<SequenceId> expected =
              Sorted(single.Search(q, epsilon).matches);
          for (const MethodKind kind : kinds) {
            EXPECT_EQ(sharded.SearchWith(kind, q, epsilon).matches,
                      expected)
                << "seed=" << seed << " K=" << k << " method="
                << MethodKindName(kind) << " eps=" << epsilon;
          }
        }
      }
    }
  }
}

TEST_P(ShardPropertyTest, KnnMatchesSingleEngineForEveryK) {
  const Engine single(WalkDataset(13), EngineOptions{});
  const auto queries = GenerateQueryWorkload(
      single.dataset(), QueryWorkloadOptions{.num_queries = 6, .seed = 14});

  for (const size_t k : {1u, 2u, 4u, 7u}) {
    ShardedEngineOptions options;
    options.num_shards = k;
    options.partitioner = GetParam();
    ShardedEngine sharded(WalkDataset(13), options);
    ThreadPool pool(4);
    sharded.AttachPool(&pool);

    for (const Sequence& q : queries) {
      for (const size_t nn : {1u, 4u, 10u}) {
        const KnnResult expected = single.SearchKnn(q, nn);
        const KnnResult got = sharded.SearchKnn(q, nn);
        ASSERT_EQ(got.neighbors.size(), expected.neighbors.size())
            << "K=" << k << " nn=" << nn;
        for (size_t i = 0; i < expected.neighbors.size(); ++i) {
          EXPECT_EQ(got.neighbors[i].id, expected.neighbors[i].id)
              << "K=" << k << " nn=" << nn << " i=" << i;
          EXPECT_EQ(got.neighbors[i].distance,
                    expected.neighbors[i].distance)
              << "K=" << k << " nn=" << nn << " i=" << i;
        }
      }
    }
  }
}

TEST_P(ShardPropertyTest, SequentialFallbackWithoutPoolIsIdentical) {
  // No AttachPool: shards run inline on the caller. Same answers — the
  // pool is a latency optimization, never a correctness ingredient.
  const Engine single(WalkDataset(29), EngineOptions{});
  ShardedEngineOptions options;
  options.num_shards = 4;
  options.partitioner = GetParam();
  const ShardedEngine sharded(WalkDataset(29), options);
  const auto queries = GenerateQueryWorkload(
      single.dataset(), QueryWorkloadOptions{.num_queries = 5, .seed = 30});
  for (const Sequence& q : queries) {
    EXPECT_EQ(sharded.Search(q, 0.3).matches,
              Sorted(single.Search(q, 0.3).matches));
    const KnnResult expected = single.SearchKnn(q, 5);
    const KnnResult got = sharded.SearchKnn(q, 5);
    ASSERT_EQ(got.neighbors.size(), expected.neighbors.size());
    for (size_t i = 0; i < expected.neighbors.size(); ++i) {
      EXPECT_EQ(got.neighbors[i].id, expected.neighbors[i].id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Partitioners, ShardPropertyTest,
                         ::testing::Values(PartitionerKind::kHash,
                                           PartitionerKind::kRange),
                         [](const auto& info) {
                           return std::string(
                               PartitionerKindName(info.param));
                         });

}  // namespace
}  // namespace warpindex
