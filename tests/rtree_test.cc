#include "rtree/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/prng.h"
#include "rtree/bulk_load.h"

namespace warpindex {
namespace {

Point RandomPoint(int dims, Prng* prng, double lo = 0.0, double hi = 100.0) {
  Point p;
  p.dims = dims;
  for (int d = 0; d < dims; ++d) {
    p[d] = prng->UniformDouble(lo, hi);
  }
  return p;
}

TEST(RTreeTest, EmptyTree) {
  const RTree tree(2);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_TRUE(
      tree.RangeSearch(Rect::Make({0.0, 0.0}, {100.0, 100.0})).empty());
}

TEST(RTreeTest, CapacityDerivedFromPageSize) {
  RTreeOptions options;
  options.page_size_bytes = 1024;  // paper §5.1
  const RTree tree(4, options);
  // entry = 4 dims * 2 * 8 bytes + 8-byte id = 72 bytes; (1024-24)/72 = 13.
  EXPECT_EQ(tree.capacity(), 13u);
  EXPECT_EQ(EntryBytes(4), 72u);
}

TEST(RTreeTest, TinyPagesStillGiveFanOutTwo) {
  RTreeOptions options;
  options.page_size_bytes = 16;
  const RTree tree(4, options);
  EXPECT_EQ(tree.capacity(), 2u);
}

TEST(RTreeTest, InsertAndFindSinglePoint) {
  RTree tree(2);
  tree.Insert(Rect::FromPoint(Point::Make({5.0, 5.0})), 42);
  EXPECT_EQ(tree.size(), 1u);
  const auto hits = tree.RangeSearch(Rect::Make({4.0, 4.0}, {6.0, 6.0}));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 42);
  EXPECT_TRUE(tree.RangeSearch(Rect::Make({6.5, 6.5}, {7.0, 7.0})).empty());
}

TEST(RTreeTest, GrowsAndKeepsInvariantsUnderInsertions) {
  RTreeOptions options;
  options.page_size_bytes = 256;  // small pages force splits early
  RTree tree(2, options);
  Prng prng(5);
  for (int i = 0; i < 500; ++i) {
    tree.Insert(Rect::FromPoint(RandomPoint(2, &prng)), i);
    if (i % 100 == 99) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "after insert " << i;
    }
  }
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_GT(tree.height(), 1);
}

TEST(RTreeTest, RangeSearchAgreesWithLinearScan) {
  RTree tree(3);
  Prng prng(6);
  std::vector<Point> points;
  for (int i = 0; i < 400; ++i) {
    points.push_back(RandomPoint(3, &prng));
    tree.Insert(Rect::FromPoint(points.back()), i);
  }
  for (int trial = 0; trial < 30; ++trial) {
    const Rect query =
        Rect::SquareAround(RandomPoint(3, &prng), prng.UniformDouble(1, 25));
    auto hits = tree.RangeSearch(query);
    std::sort(hits.begin(), hits.end());
    std::vector<int64_t> expected;
    for (int i = 0; i < 400; ++i) {
      if (query.ContainsPoint(points[static_cast<size_t>(i)])) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(hits, expected);
  }
}

TEST(RTreeTest, QueryStatsCountNodeAccesses) {
  RTree tree(2);
  Prng prng(7);
  for (int i = 0; i < 300; ++i) {
    tree.Insert(Rect::FromPoint(RandomPoint(2, &prng)), i);
  }
  RTreeQueryStats stats;
  tree.RangeSearch(Rect::Make({0.0, 0.0}, {100.0, 100.0}), &stats);
  // Full-coverage query touches every node.
  EXPECT_EQ(stats.nodes_accessed, tree.node_count());
  stats.Reset();
  tree.RangeSearch(Rect::Make({0.0, 0.0}, {1.0, 1.0}), &stats);
  EXPECT_GE(stats.nodes_accessed, 1u);
  EXPECT_LT(stats.nodes_accessed, tree.node_count());
}

TEST(RTreeTest, DeleteRemovesOnlyTargetEntry) {
  RTree tree(2);
  const Rect r1 = Rect::FromPoint(Point::Make({1.0, 1.0}));
  const Rect r2 = Rect::FromPoint(Point::Make({2.0, 2.0}));
  tree.Insert(r1, 1);
  tree.Insert(r2, 2);
  EXPECT_TRUE(tree.Delete(r1, 1));
  EXPECT_EQ(tree.size(), 1u);
  const auto hits = tree.RangeSearch(Rect::Make({0.0, 0.0}, {3.0, 3.0}));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 2);
}

TEST(RTreeTest, DeleteMissingReturnsFalse) {
  RTree tree(2);
  tree.Insert(Rect::FromPoint(Point::Make({1.0, 1.0})), 1);
  EXPECT_FALSE(tree.Delete(Rect::FromPoint(Point::Make({9.0, 9.0})), 1));
  EXPECT_FALSE(tree.Delete(Rect::FromPoint(Point::Make({1.0, 1.0})), 99));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RTreeTest, MassDeleteCondensesTree) {
  RTreeOptions options;
  options.page_size_bytes = 256;
  RTree tree(2, options);
  Prng prng(8);
  std::vector<Point> points;
  for (int i = 0; i < 400; ++i) {
    points.push_back(RandomPoint(2, &prng));
    tree.Insert(Rect::FromPoint(points.back()), i);
  }
  const int tall = tree.height();
  for (int i = 0; i < 360; ++i) {
    ASSERT_TRUE(
        tree.Delete(Rect::FromPoint(points[static_cast<size_t>(i)]), i));
    if (i % 60 == 59) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "after delete " << i;
    }
  }
  EXPECT_EQ(tree.size(), 40u);
  EXPECT_LE(tree.height(), tall);
  auto hits = tree.RangeSearch(Rect::Make({0.0, 0.0}, {100.0, 100.0}));
  std::sort(hits.begin(), hits.end());
  ASSERT_EQ(hits.size(), 40u);
  EXPECT_EQ(hits.front(), 360);
  EXPECT_EQ(hits.back(), 399);
}

TEST(RTreeTest, NearestNeighborsAgreeWithLinearScan) {
  RTree tree(2);
  Prng prng(9);
  std::vector<Point> points;
  for (int i = 0; i < 300; ++i) {
    points.push_back(RandomPoint(2, &prng));
    tree.Insert(Rect::FromPoint(points.back()), i);
  }
  for (int trial = 0; trial < 20; ++trial) {
    const Point q = RandomPoint(2, &prng);
    const size_t k = static_cast<size_t>(prng.UniformInt(1, 10));
    const auto knn = tree.NearestNeighbors(q, k);
    ASSERT_EQ(knn.size(), k);
    // Distances non-decreasing.
    for (size_t i = 1; i < knn.size(); ++i) {
      EXPECT_GE(knn[i].distance, knn[i - 1].distance - 1e-12);
    }
    // k-th distance matches brute force.
    std::vector<double> all;
    for (const Point& p : points) {
      all.push_back(
          std::sqrt(Rect::FromPoint(p).MinDistSquared(q)));
    }
    std::sort(all.begin(), all.end());
    EXPECT_NEAR(knn.back().distance, all[k - 1], 1e-9);
  }
}

TEST(RTreeTest, NearestNeighborsWithKLargerThanSize) {
  RTree tree(2);
  tree.Insert(Rect::FromPoint(Point::Make({1.0, 1.0})), 1);
  tree.Insert(Rect::FromPoint(Point::Make({2.0, 2.0})), 2);
  const auto knn = tree.NearestNeighbors(Point::Make({0.0, 0.0}), 10);
  EXPECT_EQ(knn.size(), 2u);
  EXPECT_EQ(knn[0].record_id, 1);
}

TEST(RTreeTest, NearestNeighborsZeroK) {
  RTree tree(2);
  tree.Insert(Rect::FromPoint(Point::Make({1.0, 1.0})), 1);
  EXPECT_TRUE(tree.NearestNeighbors(Point::Make({0.0, 0.0}), 0).empty());
}

TEST(RTreeTest, TotalBytesTracksNodeCount) {
  RTreeOptions options;
  options.page_size_bytes = 512;
  RTree tree(2, options);
  Prng prng(10);
  for (int i = 0; i < 200; ++i) {
    tree.Insert(Rect::FromPoint(RandomPoint(2, &prng)), i);
  }
  EXPECT_EQ(tree.TotalBytes(), tree.node_count() * 512);
}

TEST(RTreeTest, DuplicatePointsSupported) {
  RTreeOptions options;
  options.page_size_bytes = 256;
  RTree tree(2, options);
  const Rect r = Rect::FromPoint(Point::Make({5.0, 5.0}));
  for (int i = 0; i < 100; ++i) {
    tree.Insert(r, i);
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  const auto hits = tree.RangeSearch(Rect::SquareAround(
      Point::Make({5.0, 5.0}), 0.1));
  EXPECT_EQ(hits.size(), 100u);
}

TEST(RTreeTest, HealthStatsOnEmptyTree) {
  const RTree tree(2);
  const RTreeHealth health = tree.HealthStats();
  EXPECT_EQ(health.height, 1);
  EXPECT_EQ(health.records, 0u);
  EXPECT_EQ(health.nodes, 1u);
  EXPECT_EQ(health.leaves, 1u);
  ASSERT_EQ(health.levels.size(), 1u);
  EXPECT_EQ(health.levels[0].entries, 0u);
  EXPECT_DOUBLE_EQ(health.overlap_ratio, 0.0);
  EXPECT_DOUBLE_EQ(health.dead_space_ratio, 0.0);
}

TEST(RTreeTest, HealthStatsMatchesTreeAccessors) {
  RTreeOptions options;
  options.page_size_bytes = 256;
  RTree tree(2, options);
  Prng prng(77);
  for (int i = 0; i < 500; ++i) {
    tree.Insert(Rect::FromPoint(RandomPoint(2, &prng)), i);
  }
  const RTreeHealth health = tree.HealthStats();
  EXPECT_EQ(health.height, tree.height());
  EXPECT_EQ(health.records, tree.size());
  EXPECT_EQ(health.nodes, tree.node_count());
  EXPECT_EQ(health.bytes, tree.TotalBytes());
  EXPECT_EQ(health.node_capacity, tree.capacity());

  // Per-level bookkeeping must add up: level 0 (leaves) holds every
  // record, each deeper level holds one entry per node below it.
  ASSERT_EQ(health.levels.size(), static_cast<size_t>(health.height));
  EXPECT_EQ(health.levels[0].entries, health.records);
  size_t nodes_total = 0;
  for (size_t i = 0; i < health.levels.size(); ++i) {
    nodes_total += health.levels[i].nodes;
    if (i > 0) {
      EXPECT_EQ(health.levels[i].entries, health.levels[i - 1].nodes);
    }
    EXPECT_GT(health.levels[i].avg_occupancy, 0.0);
    EXPECT_LE(health.levels[i].avg_occupancy, 1.0);
    EXPECT_LE(health.levels[i].min_occupancy,
              health.levels[i].avg_occupancy);
  }
  EXPECT_EQ(nodes_total, health.nodes);
  EXPECT_DOUBLE_EQ(health.leaf_occupancy, health.levels[0].avg_occupancy);

  // Ratio estimates are normalized.
  EXPECT_GE(health.overlap_ratio, 0.0);
  EXPECT_GE(health.dead_space_ratio, 0.0);
  EXPECT_LE(health.dead_space_ratio, 1.0);
}

TEST(RTreeTest, HealthStatsBulkLoadPacksTighterThanInsertion) {
  RTreeOptions options;
  options.page_size_bytes = 256;
  Prng prng(5);
  std::vector<RTreeEntry> entries;
  for (int i = 0; i < 800; ++i) {
    entries.push_back(
        RTreeEntry::Leaf(Rect::FromPoint(RandomPoint(2, &prng)), i));
  }

  RTree incremental(2, options);
  for (const RTreeEntry& entry : entries) {
    incremental.Insert(entry.rect, entry.record_id);
  }
  RTree packed = BulkLoadStr(2, options, entries);

  const RTreeHealth inc_health = incremental.HealthStats();
  const RTreeHealth packed_health = packed.HealthStats();
  EXPECT_EQ(inc_health.records, packed_health.records);
  // The bulk loader fills leaves near capacity; one-at-a-time insertion
  // leaves split residue around ~70%.
  EXPECT_GT(packed_health.leaf_occupancy, inc_health.leaf_occupancy);
  EXPECT_LE(packed_health.nodes, inc_health.nodes);
}

}  // namespace
}  // namespace warpindex
