#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace warpindex {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeEqualsCombinedStream) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10.0;
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a;
  RunningStats empty;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats c = a;
  c.Merge(empty);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
  RunningStats d = empty;
  d.Merge(a);
  EXPECT_EQ(d.count(), 2u);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(RunningStatsTest, SelfMergeDoublesTheStream) {
  RunningStats s;
  s.Add(1.0);
  s.Add(3.0);
  s.Merge(s);
  // Equivalent to having seen {1, 3, 1, 3}.
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.sum(), 8.0);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(RunningStatsTest, EmptySelfMergeStaysEmpty) {
  RunningStats s;
  s.Merge(s);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StatsHelpersTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(StdDev({5.0, 5.0, 5.0}), 0.0);
  EXPECT_NEAR(StdDev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.0, 1e-12);
}

TEST(StatsHelpersTest, PercentileInterpolates) {
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
}

TEST(StatsHelpersTest, PercentileClampsOutOfRangeP) {
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(v, -0.5), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, -1e300), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.5), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1e300), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, std::nan("")), 10.0);
  EXPECT_DOUBLE_EQ(Percentile({}, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 2.0), 0.0);
}

}  // namespace
}  // namespace warpindex
