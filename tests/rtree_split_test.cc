#include "rtree/split.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/prng.h"

namespace warpindex {
namespace {

std::vector<RTreeEntry> RandomEntries(size_t n, int dims, Prng* prng) {
  std::vector<RTreeEntry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point p;
    p.dims = dims;
    for (int d = 0; d < dims; ++d) {
      p[d] = prng->UniformDouble(0.0, 100.0);
    }
    entries.push_back(
        RTreeEntry::Leaf(Rect::FromPoint(p), static_cast<int64_t>(i)));
  }
  return entries;
}

class SplitPolicyTest : public testing::TestWithParam<SplitPolicy> {};

TEST_P(SplitPolicyTest, PreservesAllEntries) {
  Prng prng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = static_cast<size_t>(prng.UniformInt(2, 40));
    auto entries = RandomEntries(n, 2, &prng);
    auto [a, b] = SplitEntries(entries, /*min_fill=*/std::max<size_t>(1, n / 3),
                               GetParam());
    EXPECT_EQ(a.size() + b.size(), n);
    std::vector<int64_t> ids;
    for (const auto& e : a) ids.push_back(e.record_id);
    for (const auto& e : b) ids.push_back(e.record_id);
    std::sort(ids.begin(), ids.end());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(ids[i], static_cast<int64_t>(i));
    }
  }
}

TEST_P(SplitPolicyTest, RespectsMinFill) {
  Prng prng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = static_cast<size_t>(prng.UniformInt(4, 60));
    const size_t min_fill = std::max<size_t>(1, n * 2 / 5);
    auto entries = RandomEntries(n, 3, &prng);
    auto [a, b] = SplitEntries(entries, min_fill, GetParam());
    const size_t effective = std::min(min_fill, n / 2);
    EXPECT_GE(a.size(), effective);
    EXPECT_GE(b.size(), effective);
  }
}

TEST_P(SplitPolicyTest, HandlesMinimumInput) {
  Prng prng(3);
  auto entries = RandomEntries(2, 2, &prng);
  auto [a, b] = SplitEntries(entries, 1, GetParam());
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);
}

TEST_P(SplitPolicyTest, HandlesDuplicatePoints) {
  // All entries at the same location: splits must still satisfy fill
  // constraints rather than loop or crash.
  std::vector<RTreeEntry> entries;
  for (int i = 0; i < 10; ++i) {
    entries.push_back(RTreeEntry::Leaf(
        Rect::FromPoint(Point::Make({1.0, 1.0})), i));
  }
  auto [a, b] = SplitEntries(entries, 4, GetParam());
  EXPECT_EQ(a.size() + b.size(), 10u);
  EXPECT_GE(a.size(), 4u);
  EXPECT_GE(b.size(), 4u);
}

TEST_P(SplitPolicyTest, SeparatesTwoObviousClusters) {
  // Two tight clusters far apart: any sane split puts each cluster in one
  // group (checked via group MBR disjointness).
  std::vector<RTreeEntry> entries;
  Prng prng(4);
  for (int i = 0; i < 10; ++i) {
    entries.push_back(RTreeEntry::Leaf(
        Rect::FromPoint(Point::Make({prng.UniformDouble(0.0, 1.0),
                                     prng.UniformDouble(0.0, 1.0)})),
        i));
    entries.push_back(RTreeEntry::Leaf(
        Rect::FromPoint(Point::Make({prng.UniformDouble(100.0, 101.0),
                                     prng.UniformDouble(100.0, 101.0)})),
        100 + i));
  }
  auto [a, b] = SplitEntries(entries, 8, GetParam());
  auto mbr = [](const std::vector<RTreeEntry>& group) {
    Rect r = group[0].rect;
    for (const auto& e : group) r = r.UnionWith(e.rect);
    return r;
  };
  EXPECT_FALSE(mbr(a).Intersects(mbr(b)));
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SplitPolicyTest,
                         testing::Values(SplitPolicy::kLinear,
                                         SplitPolicy::kQuadratic,
                                         SplitPolicy::kRStar),
                         [](const testing::TestParamInfo<SplitPolicy>& info) {
                           return SplitPolicyName(info.param);
                         });

TEST(SplitPolicyNameTest, Names) {
  EXPECT_STREQ(SplitPolicyName(SplitPolicy::kLinear), "linear");
  EXPECT_STREQ(SplitPolicyName(SplitPolicy::kQuadratic), "quadratic");
  EXPECT_STREQ(SplitPolicyName(SplitPolicy::kRStar), "rstar");
}

}  // namespace
}  // namespace warpindex
