#include "rtree/bulk_load.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/prng.h"

namespace warpindex {
namespace {

std::vector<RTreeEntry> RandomPointEntries(size_t n, int dims, uint64_t seed) {
  Prng prng(seed);
  std::vector<RTreeEntry> entries;
  for (size_t i = 0; i < n; ++i) {
    Point p;
    p.dims = dims;
    for (int d = 0; d < dims; ++d) {
      p[d] = prng.UniformDouble(0.0, 100.0);
    }
    entries.push_back(
        RTreeEntry::Leaf(Rect::FromPoint(p), static_cast<int64_t>(i)));
  }
  return entries;
}

TEST(BulkLoadTest, EmptyInputYieldsEmptyTree) {
  const RTree tree = BulkLoadStr(2, RTreeOptions{}, {});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BulkLoadTest, SingleEntry) {
  auto entries = RandomPointEntries(1, 2, 1);
  const Rect r = entries[0].rect;
  const RTree tree = BulkLoadStr(2, RTreeOptions{}, std::move(entries));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.RangeSearch(r).size(), 1u);
}

TEST(BulkLoadTest, InvariantsAndSizeAtVariousScales) {
  for (const size_t n : {2u, 13u, 14u, 100u, 1000u, 5000u}) {
    RTreeOptions options;
    options.page_size_bytes = 1024;
    const RTree tree =
        BulkLoadStr(4, options, RandomPointEntries(n, 4, 7 + n));
    EXPECT_EQ(tree.size(), n) << "n=" << n;
    EXPECT_TRUE(tree.CheckInvariants().ok()) << "n=" << n;
  }
}

TEST(BulkLoadTest, QueriesMatchIncrementallyBuiltTree) {
  const size_t n = 2000;
  auto entries = RandomPointEntries(n, 3, 11);
  RTreeOptions options;
  options.page_size_bytes = 512;
  RTree incremental(3, options);
  for (const auto& e : entries) {
    incremental.Insert(e.rect, e.record_id);
  }
  const RTree bulk = BulkLoadStr(3, options, std::move(entries));

  Prng prng(12);
  for (int trial = 0; trial < 25; ++trial) {
    Point c;
    c.dims = 3;
    for (int d = 0; d < 3; ++d) {
      c[d] = prng.UniformDouble(0.0, 100.0);
    }
    const Rect query = Rect::SquareAround(c, prng.UniformDouble(1.0, 20.0));
    auto a = bulk.RangeSearch(query);
    auto b = incremental.RangeSearch(query);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(BulkLoadTest, ProducesFewerNodesThanInsertion) {
  const size_t n = 3000;
  auto entries = RandomPointEntries(n, 4, 13);
  RTreeOptions options;
  options.page_size_bytes = 1024;
  RTree incremental(4, options);
  for (const auto& e : entries) {
    incremental.Insert(e.rect, e.record_id);
  }
  const RTree bulk = BulkLoadStr(4, options, std::move(entries));
  // STR packs ~100% full; Guttman insertion averages ~70%.
  EXPECT_LT(bulk.node_count(), incremental.node_count());
}

TEST(BulkLoadTest, TreeSupportsSubsequentInsertsAndDeletes) {
  auto entries = RandomPointEntries(500, 2, 17);
  const Rect first_rect = entries[0].rect;
  RTreeOptions options;
  options.page_size_bytes = 256;
  RTree tree = BulkLoadStr(2, options, std::move(entries));
  ASSERT_TRUE(tree.CheckInvariants().ok());

  Prng prng(18);
  for (int i = 0; i < 200; ++i) {
    Point p;
    p.dims = 2;
    p[0] = prng.UniformDouble(0.0, 100.0);
    p[1] = prng.UniformDouble(0.0, 100.0);
    tree.Insert(Rect::FromPoint(p), 1000 + i);
  }
  EXPECT_EQ(tree.size(), 700u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_TRUE(tree.Delete(first_rect, 0));
  EXPECT_EQ(tree.size(), 699u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

}  // namespace
}  // namespace warpindex
