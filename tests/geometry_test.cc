#include "rtree/geometry.h"

#include <gtest/gtest.h>

namespace warpindex {
namespace {

TEST(PointTest, MakeAndIndex) {
  const Point p = Point::Make({1.0, 2.0, 3.0});
  EXPECT_EQ(p.dims, 3);
  EXPECT_EQ(p[0], 1.0);
  EXPECT_EQ(p[2], 3.0);
}

TEST(PointTest, FromArray) {
  const double values[] = {4.0, 5.0};
  const Point p = Point::FromArray(values, 2);
  EXPECT_EQ(p.dims, 2);
  EXPECT_EQ(p[1], 5.0);
}

TEST(RectTest, FromPointIsDegenerate) {
  const Rect r = Rect::FromPoint(Point::Make({1.0, 2.0}));
  EXPECT_TRUE(r.IsValid());
  EXPECT_EQ(r.Area(), 0.0);
  EXPECT_TRUE(r.ContainsPoint(Point::Make({1.0, 2.0})));
}

TEST(RectTest, SquareAroundIsThePaperRangeQuery) {
  const Rect r = Rect::SquareAround(Point::Make({0.0, 10.0}), 0.5);
  EXPECT_EQ(r.min[0], -0.5);
  EXPECT_EQ(r.max[0], 0.5);
  EXPECT_EQ(r.min[1], 9.5);
  EXPECT_EQ(r.max[1], 10.5);
}

TEST(RectTest, AreaAndMargin) {
  const Rect r = Rect::Make({0.0, 0.0}, {2.0, 3.0});
  EXPECT_DOUBLE_EQ(r.Area(), 6.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 5.0);
}

TEST(RectTest, IntersectionCases) {
  const Rect a = Rect::Make({0.0, 0.0}, {2.0, 2.0});
  EXPECT_TRUE(a.Intersects(Rect::Make({1.0, 1.0}, {3.0, 3.0})));
  EXPECT_TRUE(a.Intersects(Rect::Make({2.0, 2.0}, {3.0, 3.0})));  // touch
  EXPECT_FALSE(a.Intersects(Rect::Make({2.1, 0.0}, {3.0, 1.0})));
  EXPECT_FALSE(a.Intersects(Rect::Make({0.0, -2.0}, {2.0, -0.1})));
}

TEST(RectTest, ContainsCases) {
  const Rect a = Rect::Make({0.0, 0.0}, {4.0, 4.0});
  EXPECT_TRUE(a.Contains(Rect::Make({1.0, 1.0}, {2.0, 2.0})));
  EXPECT_TRUE(a.Contains(a));
  EXPECT_FALSE(a.Contains(Rect::Make({1.0, 1.0}, {5.0, 2.0})));
}

TEST(RectTest, UnionAndEnlargement) {
  const Rect a = Rect::Make({0.0, 0.0}, {1.0, 1.0});
  const Rect b = Rect::Make({2.0, 2.0}, {3.0, 3.0});
  const Rect u = a.UnionWith(b);
  EXPECT_EQ(u.min[0], 0.0);
  EXPECT_EQ(u.max[1], 3.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 9.0 - 1.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(a), 0.0);
}

TEST(RectTest, OverlapArea) {
  const Rect a = Rect::Make({0.0, 0.0}, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(a.OverlapArea(Rect::Make({1.0, 1.0}, {3.0, 3.0})), 1.0);
  EXPECT_DOUBLE_EQ(a.OverlapArea(Rect::Make({5.0, 5.0}, {6.0, 6.0})), 0.0);
  EXPECT_DOUBLE_EQ(a.OverlapArea(a), 4.0);
}

TEST(RectTest, MinDistSquared) {
  const Rect r = Rect::Make({0.0, 0.0}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(r.MinDistSquared(Point::Make({0.5, 0.5})), 0.0);
  EXPECT_DOUBLE_EQ(r.MinDistSquared(Point::Make({2.0, 0.5})), 1.0);
  EXPECT_DOUBLE_EQ(r.MinDistSquared(Point::Make({2.0, 3.0})), 1.0 + 4.0);
}

TEST(RectTest, MinDistLinf) {
  const Rect r = Rect::Make({0.0, 0.0}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(r.MinDistLinf(Point::Make({0.5, 0.5})), 0.0);
  EXPECT_DOUBLE_EQ(r.MinDistLinf(Point::Make({3.0, 0.5})), 2.0);
  // Max over axes, not sum.
  EXPECT_DOUBLE_EQ(r.MinDistLinf(Point::Make({3.0, 4.0})), 3.0);
}

TEST(RectTest, MinDistLinfLowerBoundsPointDistances) {
  const Rect r = Rect::Make({1.0, 2.0, 3.0}, {2.0, 4.0, 5.0});
  const Point p = Point::Make({0.0, 5.0, 4.0});
  const double bound = r.MinDistLinf(p);
  // Check several points inside the rect.
  for (double a : {1.0, 1.5, 2.0}) {
    for (double b : {2.0, 3.0, 4.0}) {
      for (double c : {3.0, 4.0, 5.0}) {
        const double linf =
            std::max({std::abs(p[0] - a), std::abs(p[1] - b),
                      std::abs(p[2] - c)});
        EXPECT_GE(linf, bound);
      }
    }
  }
}

TEST(RectTest, ValidityChecks) {
  Rect r = Rect::Make({0.0}, {1.0});
  EXPECT_TRUE(r.IsValid());
  r.min[0] = 2.0;
  EXPECT_FALSE(r.IsValid());
  Rect no_dims;
  EXPECT_FALSE(no_dims.IsValid());
}

TEST(RectTest, EqualityRespectsDims) {
  const Rect a = Rect::Make({0.0, 0.0}, {1.0, 1.0});
  const Rect b = Rect::Make({0.0, 0.0}, {1.0, 1.0});
  const Rect c = Rect::Make({0.0}, {1.0});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(RectTest, FourDimensionalFeatureSpace) {
  // The paper's actual usage: 4-d points and square ranges.
  const Point f = Point::Make({10.0, 12.0, 15.0, 9.0});
  const Rect range = Rect::SquareAround(f, 1.0);
  EXPECT_TRUE(range.ContainsPoint(Point::Make({10.5, 11.5, 15.9, 8.1})));
  EXPECT_FALSE(range.ContainsPoint(Point::Make({10.5, 11.5, 16.1, 9.0})));
}

}  // namespace
}  // namespace warpindex
