#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

namespace warpindex {
namespace {

TEST(BufferPoolTest, FirstAccessMissesThenHits) {
  BufferPool pool(4);
  IoStats stats;
  EXPECT_FALSE(pool.Access(1, &stats));
  EXPECT_TRUE(pool.Access(1, &stats));
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(stats.random_page_reads, 1u);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BufferPool pool(2);
  pool.Access(1, nullptr);
  pool.Access(2, nullptr);
  pool.Access(1, nullptr);  // 1 is now MRU; LRU is 2
  pool.Access(3, nullptr);  // evicts 2
  EXPECT_TRUE(pool.Access(1, nullptr));
  EXPECT_TRUE(pool.Access(3, nullptr));
  EXPECT_FALSE(pool.Access(2, nullptr));  // was evicted
}

TEST(BufferPoolTest, CapacityBoundRespected) {
  BufferPool pool(3);
  for (PageId p = 0; p < 10; ++p) {
    pool.Access(p, nullptr);
  }
  EXPECT_EQ(pool.size(), 3u);
}

TEST(BufferPoolTest, ZeroCapacityAlwaysMisses) {
  BufferPool pool(0);
  IoStats stats;
  EXPECT_FALSE(pool.Access(1, &stats));
  EXPECT_FALSE(pool.Access(1, &stats));
  EXPECT_EQ(stats.random_page_reads, 2u);
  EXPECT_EQ(pool.size(), 0u);
}

TEST(BufferPoolTest, ClearDropsEverything) {
  BufferPool pool(4);
  pool.Access(1, nullptr);
  pool.Access(2, nullptr);
  pool.Clear();
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_FALSE(pool.Access(1, nullptr));
}

TEST(BufferPoolTest, NullStatsAllowed) {
  BufferPool pool(2);
  EXPECT_FALSE(pool.Access(7, nullptr));
  EXPECT_TRUE(pool.Access(7, nullptr));
}

TEST(IoStatsTest, RecordersAndMerge) {
  IoStats a;
  a.RecordRandomRead(3);
  a.RecordRandomRun(5);
  a.RecordSequentialRun(10);
  a.RecordWrite(2);
  EXPECT_EQ(a.random_page_reads, 8u);
  EXPECT_EQ(a.sequential_page_reads, 10u);
  EXPECT_EQ(a.seeks, 3u + 1u + 1u);
  EXPECT_EQ(a.page_writes, 2u);
  EXPECT_EQ(a.TotalPageReads(), 18u);

  IoStats b;
  b.RecordRandomRead();
  b.Merge(a);
  EXPECT_EQ(b.random_page_reads, 9u);
  EXPECT_EQ(b.seeks, 6u);
  b.Reset();
  EXPECT_EQ(b.TotalPageReads(), 0u);
}

TEST(DiskModelTest, CostsMatchParameters) {
  // 1 KB pages at 5 MB/s -> 0.2 ms transfer; 9.5 ms seek (paper's disk).
  const DiskModel model(DiskParameters{}, 1024);
  EXPECT_NEAR(model.TransferMillisPerPage(), 0.2048, 1e-9);

  IoStats scan;
  scan.RecordSequentialRun(1000);
  // One seek + 1000 transfers.
  EXPECT_NEAR(model.CostMillis(scan), 9.5 + 1000 * 0.2048, 1e-6);

  IoStats random;
  random.RecordRandomRead(100);
  // 100 seeks + 100 transfers: random I/O dominated by seeks.
  EXPECT_NEAR(model.CostMillis(random), 100 * 9.5 + 100 * 0.2048, 1e-6);
  EXPECT_GT(model.CostMillis(random), model.CostMillis(scan));
}

TEST(DiskModelTest, RandomReadsCostMoreThanSequentialForSamePageCount) {
  const DiskModel model(DiskParameters{}, 1024);
  IoStats seq;
  seq.RecordSequentialRun(50);
  IoStats rnd;
  rnd.RecordRandomRead(50);
  EXPECT_GT(model.CostMillis(rnd), model.CostMillis(seq));
}

}  // namespace
}  // namespace warpindex
