// TW-Sim-Search-Cascade (plan/cascade_search.h) end to end: on the stock
// and random-walk datasets, MethodKind::kTwSimSearchCascade returns
// exactly the same result set as MethodKind::kTwSimSearch — sequentially,
// through the concurrent executor with 4 threads, and through
// SearchParallel's cascade path — while performing no more (and on a
// banded config strictly fewer) exact-DTW evaluations, exporting the
// per-stage pruning counters through the engine's metrics registry.

#include "plan/cascade_search.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/engine.h"
#include "exec/query_executor.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"
#include "sequence/stock_generator.h"

namespace warpindex {
namespace {

std::vector<SequenceId> Sorted(std::vector<SequenceId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

uint64_t CounterValue(const MetricsRegistry::Snapshot& snapshot,
                      const std::string& name) {
  for (const MetricsRegistry::CounterEntry& entry : snapshot.counters) {
    if (entry.name == name) {
      return entry.value;
    }
  }
  ADD_FAILURE() << "counter not exported: " << name;
  return 0;
}

// Two engines over the two paper datasets. The stock engine runs the
// paper's default similarity model (unconstrained L_inf); the walk engine
// runs a banded config, where the envelope bounds have real pruning
// power (a full-width envelope degenerates toward LB_Yi).
class CascadeSearchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StockDataOptions stock_data;
    stock_data.num_sequences = 140;
    stock_data.min_length = 40;
    stock_data.mean_length = 70;
    stock_data.max_length = 120;
    EngineOptions stock_options;
    stock_options.metrics = &stock_metrics_;
    stock_engine_ = new Engine(GenerateStockDataset(stock_data),
                               stock_options);
    QueryWorkloadOptions stock_queries;
    stock_queries.num_queries = 100;
    stock_queries.seed = 11;
    stock_workload_ = new std::vector<Sequence>(
        GenerateQueryWorkload(stock_engine_->dataset(), stock_queries));

    RandomWalkOptions walk_data;
    walk_data.num_sequences = 140;
    walk_data.min_length = 30;
    walk_data.max_length = 80;
    walk_data.seed = 13;
    EngineOptions walk_options;
    walk_options.dtw.band = 8;
    walk_options.metrics = &walk_metrics_;
    walk_engine_ = new Engine(GenerateRandomWalkDataset(walk_data),
                              walk_options);
    QueryWorkloadOptions walk_queries;
    walk_queries.num_queries = 100;
    walk_queries.seed = 17;
    walk_workload_ = new std::vector<Sequence>(
        GenerateQueryWorkload(walk_engine_->dataset(), walk_queries));
  }

  static void TearDownTestSuite() {
    delete stock_workload_;
    stock_workload_ = nullptr;
    delete stock_engine_;
    stock_engine_ = nullptr;
    delete walk_workload_;
    walk_workload_ = nullptr;
    delete walk_engine_;
    walk_engine_ = nullptr;
  }

  static MetricsRegistry stock_metrics_;
  static MetricsRegistry walk_metrics_;
  static Engine* stock_engine_;
  static Engine* walk_engine_;
  static std::vector<Sequence>* stock_workload_;
  static std::vector<Sequence>* walk_workload_;
};

MetricsRegistry CascadeSearchTest::stock_metrics_;
MetricsRegistry CascadeSearchTest::walk_metrics_;
Engine* CascadeSearchTest::stock_engine_ = nullptr;
Engine* CascadeSearchTest::walk_engine_ = nullptr;
std::vector<Sequence>* CascadeSearchTest::stock_workload_ = nullptr;
std::vector<Sequence>* CascadeSearchTest::walk_workload_ = nullptr;

TEST_F(CascadeSearchTest, StockSequentialAnswersIdenticalToTwSimSearch) {
  for (const double epsilon : {1.0, 4.0}) {
    for (const Sequence& query : *stock_workload_) {
      const SearchResult plain = stock_engine_->SearchWith(
          MethodKind::kTwSimSearch, query, epsilon);
      const SearchResult cascade = stock_engine_->SearchWith(
          MethodKind::kTwSimSearchCascade, query, epsilon);
      ASSERT_EQ(Sorted(cascade.matches), Sorted(plain.matches))
          << "eps=" << epsilon;
      ASSERT_LE(cascade.cost.dtw_evals, plain.cost.dtw_evals);
    }
  }
}

TEST_F(CascadeSearchTest, WalkSequentialAnswersIdenticalAndStrictlyFewerDtw) {
  uint64_t plain_evals = 0;
  uint64_t cascade_evals = 0;
  size_t total_matches = 0;
  for (const double epsilon : {0.5, 1.5}) {
    for (const Sequence& query : *walk_workload_) {
      const SearchResult plain = walk_engine_->SearchWith(
          MethodKind::kTwSimSearch, query, epsilon);
      const SearchResult cascade = walk_engine_->SearchWith(
          MethodKind::kTwSimSearchCascade, query, epsilon);
      ASSERT_EQ(Sorted(cascade.matches), Sorted(plain.matches))
          << "eps=" << epsilon;
      ASSERT_LE(cascade.cost.dtw_evals, plain.cost.dtw_evals);
      plain_evals += plain.cost.dtw_evals;
      cascade_evals += cascade.cost.dtw_evals;
      total_matches += plain.matches.size();
    }
  }
  // The workload must be non-trivial for the comparison to mean anything.
  ASSERT_GT(total_matches, 0u);
  ASSERT_GT(plain_evals, 0u);
  // On the banded config the envelope bounds genuinely fire: across the
  // workload the cascade starts strictly fewer exact-DTW evaluations.
  EXPECT_LT(cascade_evals, plain_evals);
}

TEST_F(CascadeSearchTest, ExecutorBatchWith4ThreadsAnswersIdentical) {
  QueryExecutorOptions exec_options;
  exec_options.num_threads = 4;

  for (Engine* engine : {stock_engine_, walk_engine_}) {
    const std::vector<Sequence>& workload =
        engine == stock_engine_ ? *stock_workload_ : *walk_workload_;
    const double epsilon = engine == stock_engine_ ? 2.0 : 1.0;
    QueryExecutor executor(engine, exec_options);
    std::vector<QueryRequest> requests;
    requests.reserve(workload.size());
    for (const Sequence& query : workload) {
      requests.push_back(
          {MethodKind::kTwSimSearchCascade, query, epsilon});
    }
    const BatchResult batch = executor.SubmitBatch(requests);
    ASSERT_EQ(batch.results.size(), workload.size());
    for (size_t i = 0; i < workload.size(); ++i) {
      const SearchResult plain = engine->SearchWith(
          MethodKind::kTwSimSearch, workload[i], epsilon);
      ASSERT_EQ(Sorted(batch.results[i].matches), Sorted(plain.matches))
          << "query " << i;
    }
  }
}

TEST_F(CascadeSearchTest, SearchParallelCascadePathAnswersIdentical) {
  QueryExecutorOptions exec_options;
  exec_options.num_threads = 4;
  exec_options.postfilter_chunk = 4;  // force multi-chunk fan-out
  QueryExecutor executor(walk_engine_, exec_options);
  const double epsilon = 1.0;
  for (size_t i = 0; i < 30; ++i) {
    const Sequence& query = (*walk_workload_)[i];
    const SearchResult parallel =
        executor.SearchParallel(query, epsilon, /*trace=*/nullptr,
                                /*use_cascade=*/true);
    const SearchResult plain =
        walk_engine_->SearchWith(MethodKind::kTwSimSearch, query, epsilon);
    ASSERT_EQ(Sorted(parallel.matches), Sorted(plain.matches))
        << "query " << i;
    ASSERT_LE(parallel.cost.dtw_evals, plain.cost.dtw_evals);
  }
}

TEST_F(CascadeSearchTest, AutoPlanAnswersIdenticalToTwSimSearch) {
  // kAuto re-plans per query from its online cost model (warm-up, greedy
  // drops, periodic exploration) — none of which may change answers.
  RandomWalkOptions data;
  data.num_sequences = 80;
  data.min_length = 30;
  data.max_length = 60;
  data.seed = 19;
  MetricsRegistry metrics;
  EngineOptions options;
  options.dtw.band = 6;
  options.cascade_planner.mode = PlanMode::kAuto;
  options.cascade_planner.warmup_queries = 5;
  options.cascade_planner.explore_every = 16;
  options.metrics = &metrics;
  Engine engine(GenerateRandomWalkDataset(data), options);
  QueryWorkloadOptions query_options;
  query_options.num_queries = 120;
  query_options.seed = 23;
  const std::vector<Sequence> workload =
      GenerateQueryWorkload(engine.dataset(), query_options);

  for (const Sequence& query : workload) {
    const SearchResult plain =
        engine.SearchWith(MethodKind::kTwSimSearch, query, 1.0);
    const SearchResult cascade =
        engine.SearchWith(MethodKind::kTwSimSearchCascade, query, 1.0);
    ASSERT_EQ(Sorted(cascade.matches), Sorted(plain.matches));
  }
  EXPECT_EQ(engine.tw_sim_search_cascade().planner().plans_chosen(),
            workload.size());
}

TEST_F(CascadeSearchTest, TieAtEpsilonIsReportedAsAMatch) {
  // Regression for Algorithm 1's `<= eps` acceptance: a data sequence at
  // exactly eps from the query must be returned by both the plain and
  // the cascade method, under L_inf and L1, banded and not. A constant
  // shift by an exactly-representable c makes every bound and the exact
  // distance (L_inf: c; L1 sum over n aligned steps: n*c) hit the
  // tolerance bit-exactly. The base is strictly increasing with gaps
  // larger than c, so the diagonal is the unique optimal path and the
  // exact distances are known in closed form.
  const std::vector<double> base = {1.0, 3.0, 5.0, 7.0, 9.0, 11.0};
  const double c = 0.5;
  Sequence query(base);
  std::vector<double> shifted = base;
  for (double& v : shifted) {
    v += c;
  }

  struct Case {
    DtwOptions options;
    double epsilon;
  };
  std::vector<Case> cases;
  for (const int band : {-1, 2}) {
    DtwOptions linf = DtwOptions::Linf();
    linf.band = band;
    cases.push_back({linf, c});
    DtwOptions l1 = DtwOptions::L1();
    l1.band = band;
    cases.push_back({l1, c * static_cast<double>(base.size())});
  }

  for (const Case& test_case : cases) {
    Dataset dataset;
    dataset.Add(Sequence(shifted));
    // Distractors far outside the tolerance.
    dataset.Add(Sequence(std::vector<double>{100.0, 101.0, 99.0}));
    dataset.Add(Sequence(std::vector<double>{-50.0, -49.0, -51.0}));
    MetricsRegistry metrics;
    EngineOptions options;
    options.dtw = test_case.options;
    options.metrics = &metrics;
    Engine engine(std::move(dataset), options);
    ASSERT_DOUBLE_EQ(
        Dtw(test_case.options).Distance(engine.dataset()[0], query).distance,
        test_case.epsilon);

    for (const MethodKind kind :
         {MethodKind::kTwSimSearch, MethodKind::kTwSimSearchCascade}) {
      const SearchResult at_eps =
          engine.SearchWith(kind, query, test_case.epsilon);
      ASSERT_EQ(at_eps.matches, std::vector<SequenceId>{0})
          << MethodKindName(kind) << " dropped the tie (band="
          << test_case.options.band << ")";
      const SearchResult below =
          engine.SearchWith(kind, query, test_case.epsilon * (1.0 - 1e-9));
      EXPECT_TRUE(below.matches.empty()) << MethodKindName(kind);
    }
  }
}

TEST_F(CascadeSearchTest, PruneCountersExportedThroughMetrics) {
  // Runs after the walk-engine tests in this suite have recorded queries
  // into walk_metrics_, but does its own queries so it stands alone too.
  for (const Sequence& query : *walk_workload_) {
    walk_engine_->SearchWith(MethodKind::kTwSimSearchCascade, query, 1.0);
  }
  const MetricsRegistry::Snapshot snapshot = walk_metrics_.TakeSnapshot();
  EXPECT_GT(CounterValue(snapshot, "warpindex_query_dtw_evals_total"), 0u);
  uint64_t total_pruned = 0;
  for (const char* stage :
       {"feature_lb", "lb_yi", "lb_keogh", "lb_improved", "dtw"}) {
    const std::string prefix = std::string("warpindex_cascade_") + stage;
    const uint64_t in = CounterValue(snapshot, prefix + "_in_total");
    const uint64_t pruned = CounterValue(snapshot, prefix + "_pruned_total");
    EXPECT_LE(pruned, in) << stage;
    total_pruned += pruned;
  }
  EXPECT_GT(CounterValue(snapshot, "warpindex_cascade_dtw_in_total"), 0u);
  EXPECT_GT(total_pruned, 0u);
}

}  // namespace
}  // namespace warpindex
