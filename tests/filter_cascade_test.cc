// FilterCascade (plan/filter_cascade.h): for every plan — no stage, any
// single stage, the full cascade — the surviving answer set is exactly
// the brute-force exact-DTW answer set (no false dismissals, ties at
// epsilon kept), and the per-stage accounting (prune counters, timings,
// observations) is recorded consistently.

#include "plan/filter_cascade.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/prng.h"
#include "dtw/dtw.h"

namespace warpindex {
namespace {

Sequence RandomWalkSequence(Prng* prng, int64_t min_len, int64_t max_len,
                            SequenceId id) {
  Sequence s;
  const int64_t len = prng->UniformInt(min_len, max_len);
  double v = prng->UniformDouble(-1.0, 1.0);
  for (int64_t i = 0; i < len; ++i) {
    s.Append(v);
    v += prng->UniformDouble(-0.15, 0.15);
  }
  s.set_id(id);
  return s;
}

std::vector<Sequence> MakeCandidates(Prng* prng, size_t n) {
  std::vector<Sequence> candidates;
  candidates.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    candidates.push_back(RandomWalkSequence(prng, 5, 40,
                                            static_cast<SequenceId>(i)));
  }
  return candidates;
}

std::vector<SequenceId> BruteForceMatches(
    const std::vector<Sequence>& candidates, const Sequence& query,
    double epsilon, const DtwOptions& options) {
  const Dtw dtw(options);
  std::vector<SequenceId> matches;
  for (const Sequence& s : candidates) {
    if (dtw.Distance(s, query).distance <= epsilon) {
      matches.push_back(s.id());
    }
  }
  return matches;
}

// Every plan shape worth distinguishing: empty (paper), each stage alone,
// pairs out of canonical adjacency, and the full cascade.
std::vector<CascadePlan> AllPlanShapes() {
  using S = CascadeStage;
  return {
      CascadePlan::Paper(),
      CascadePlan{{S::kFeatureLb}},
      CascadePlan{{S::kLbYi}},
      CascadePlan{{S::kLbKeogh}},
      CascadePlan{{S::kLbImproved}},
      CascadePlan{{S::kFeatureLb, S::kLbKeogh}},
      CascadePlan{{S::kLbYi, S::kLbImproved}},
      CascadePlan::Full(),
  };
}

TEST(FilterCascadeTest, AnswersMatchBruteForceForEveryPlanAndMode) {
  Prng prng(201);
  std::vector<DtwOptions> modes = {DtwOptions::Linf(), DtwOptions::L1(),
                                   DtwOptions::L2()};
  for (DtwOptions& options : modes) {
    for (const int band : {-1, 3}) {
      options.band = band;
      const FilterCascade cascade(options);
      const std::vector<Sequence> candidates = MakeCandidates(&prng, 60);
      for (int trial = 0; trial < 8; ++trial) {
        const Sequence query = RandomWalkSequence(&prng, 5, 40, -1);
        const double epsilon = prng.UniformDouble(0.1, 2.0);
        const std::vector<SequenceId> expected =
            BruteForceMatches(candidates, query, epsilon, options);
        for (const CascadePlan& plan : AllPlanShapes()) {
          SearchResult result;
          cascade.Run(query, epsilon, candidates, plan, &result,
                      /*trace=*/nullptr, /*scratch=*/nullptr);
          ASSERT_EQ(result.matches, expected)
              << "plan=" << plan.ToString() << " band=" << band
              << " eps=" << epsilon;
        }
      }
    }
  }
}

TEST(FilterCascadeTest, RunLbStagesPlusManualDtwEqualsRun) {
  Prng prng(202);
  DtwOptions options = DtwOptions::Linf();
  options.band = 4;
  const FilterCascade cascade(options);
  const Dtw dtw(options);
  const std::vector<Sequence> candidates = MakeCandidates(&prng, 50);
  const Sequence query = RandomWalkSequence(&prng, 10, 30, -1);
  const double epsilon = 0.8;
  const CascadePlan plan = CascadePlan::Full();

  SearchResult full;
  cascade.Run(query, epsilon, candidates, plan, &full, nullptr, nullptr);

  SearchResult staged;
  std::vector<Sequence> survivors = candidates;
  cascade.RunLbStages(query, epsilon, &survivors, plan, &staged, nullptr);
  std::vector<SequenceId> matches;
  for (const Sequence& s : survivors) {
    if (dtw.Distance(s, query).distance <= epsilon) {
      matches.push_back(s.id());
    }
  }
  EXPECT_EQ(matches, full.matches);
  // The split path reports the same lower-bound work.
  EXPECT_EQ(staged.cost.lb_evals, full.cost.lb_evals);
}

TEST(FilterCascadeTest, RecordsPerStageCountersAndTimings) {
  Prng prng(203);
  DtwOptions options = DtwOptions::Linf();
  options.band = 2;
  const FilterCascade cascade(options);
  const std::vector<Sequence> candidates = MakeCandidates(&prng, 40);
  const Sequence query = RandomWalkSequence(&prng, 10, 30, -1);

  SearchResult result;
  CascadeObservation obs;
  cascade.Run(query, /*epsilon=*/0.5, candidates, CascadePlan::Full(),
              &result, nullptr, nullptr, &obs);

  // First stage sees the whole list; each later stage sees the previous
  // stage's survivors; dtw sees the last survivors.
  uint64_t expect_in = candidates.size();
  for (const CascadeStage stage :
       {CascadeStage::kFeatureLb, CascadeStage::kLbYi,
        CascadeStage::kLbKeogh, CascadeStage::kLbImproved}) {
    const StageCounts counts = result.cost.prunes.Get(CascadeStageName(stage));
    ASSERT_EQ(counts.in, expect_in) << CascadeStageName(stage);
    ASSERT_LE(counts.pruned, counts.in);
    EXPECT_EQ(obs.at(stage).in, counts.in);
    EXPECT_EQ(obs.at(stage).pruned, counts.pruned);
    EXPECT_GT(result.cost.stages.Get(CascadeStageName(stage)), 0.0);
    expect_in -= counts.pruned;
  }
  const StageCounts dtw_counts = result.cost.prunes.Get(kStageDtwPostfilter);
  EXPECT_EQ(dtw_counts.in, expect_in);
  EXPECT_EQ(dtw_counts.in - dtw_counts.pruned, result.matches.size());
  EXPECT_EQ(obs.dtw.in, expect_in);
  EXPECT_EQ(result.cost.dtw_evals, expect_in);
  // Every candidate entering a bound stage costs one lb evaluation.
  uint64_t expected_lb_evals = 0;
  for (const auto& [stage, counts] : result.cost.prunes.entries()) {
    if (stage != kStageDtwPostfilter) {
      expected_lb_evals += counts.in;
    }
  }
  EXPECT_EQ(result.cost.lb_evals, expected_lb_evals);
}

TEST(FilterCascadeTest, TieAtEpsilonIsNeverPruned) {
  // A candidate at exactly epsilon: S = Q + c elementwise, so under the
  // L_inf model every stage's bound and the exact distance all equal c.
  // Algorithm 1 accepts D_tw <= eps, so the cascade must keep the tie at
  // every stage, for every plan.
  const std::vector<double> base = {1.0, 2.5, 2.0, 3.5, 3.0};
  const double c = 0.75;
  Sequence query(base);
  std::vector<double> shifted = base;
  for (double& v : shifted) {
    v += c;
  }
  std::vector<Sequence> candidates = {Sequence(shifted, /*id=*/7)};

  for (const int band : {-1, 0, 2}) {
    DtwOptions options = DtwOptions::Linf();
    options.band = band;
    ASSERT_DOUBLE_EQ(Dtw(options).Distance(candidates[0], query).distance, c);
    const FilterCascade cascade(options);
    for (const CascadePlan& plan : AllPlanShapes()) {
      SearchResult result;
      cascade.Run(query, /*epsilon=*/c, candidates, plan, &result, nullptr,
                  nullptr);
      ASSERT_EQ(result.matches, std::vector<SequenceId>{7})
          << "tie dropped by plan=" << plan.ToString() << " band=" << band;
    }
    // Just below the tie the candidate must be rejected — by the exact
    // stage, not necessarily by any bound.
    SearchResult below;
    cascade.Run(query, c - 1e-9, candidates, CascadePlan::Full(), &below,
                nullptr, nullptr);
    EXPECT_TRUE(below.matches.empty());
  }
}

TEST(FilterCascadeTest, EmptyCandidateListIsANoop) {
  const FilterCascade cascade(DtwOptions::Linf());
  const Sequence query(std::vector<double>{1.0, 2.0});
  SearchResult result;
  cascade.Run(query, 1.0, {}, CascadePlan::Full(), &result, nullptr,
              nullptr);
  EXPECT_TRUE(result.matches.empty());
  EXPECT_EQ(result.cost.dtw_evals, 0u);
  EXPECT_EQ(result.cost.lb_evals, 0u);
}

TEST(CascadePlanTest, ToStringAlwaysEndsInDtw) {
  EXPECT_EQ(CascadePlan::Paper().ToString(), "dtw");
  const std::string full = CascadePlan::Full().ToString();
  EXPECT_EQ(full,
            "feature_lb_cascade > lb_yi_cascade > lb_keogh_cascade > "
            "lb_improved_cascade > dtw");
}

}  // namespace
}  // namespace warpindex
