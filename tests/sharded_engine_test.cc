// ShardedEngine: scatter-gather answers must be bit-identical to a single
// Engine over the same dataset, shard pruning must actually skip shards
// on clustered data (without changing answers), persistence must round-
// trip through the manifest and reject mismatched topologies, and the
// health snapshot / flight records must attribute work to shards.

#include "shard/sharded_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "exec/query_executor.h"
#include "exec/thread_pool.h"
#include "obs/trace.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

Dataset WalkDataset(size_t n = 120, uint64_t seed = 42) {
  RandomWalkOptions options;
  options.num_sequences = n;
  options.min_length = 24;
  options.max_length = 56;
  options.seed = seed;
  return GenerateRandomWalkDataset(options);
}

// Two feature-space clusters far apart: the range partitioner separates
// them into shards with disjoint MBRs, so a cluster-local query can
// prune the far shard.
Dataset ClusteredDataset(size_t per_cluster = 40) {
  RandomWalkOptions low;
  low.num_sequences = per_cluster;
  low.min_length = 24;
  low.max_length = 40;
  low.start_min = 0.0;
  low.start_max = 1.0;
  low.seed = 5;
  Dataset dataset = GenerateRandomWalkDataset(low);
  RandomWalkOptions high = low;
  high.start_min = 200.0;
  high.start_max = 201.0;
  high.seed = 6;
  const Dataset far_cluster = GenerateRandomWalkDataset(high);
  for (size_t i = 0; i < far_cluster.size(); ++i) {
    dataset.Add(far_cluster[i]);
  }
  return dataset;
}

std::string TempDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<SequenceId> Sorted(std::vector<SequenceId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

ShardedEngineOptions ShardOptions(size_t k, PartitionerKind partitioner) {
  ShardedEngineOptions options;
  options.num_shards = k;
  options.partitioner = partitioner;
  options.engine.metrics = nullptr;  // tests tolerate the global registry
  return options;
}

TEST(ShardedEngineTest, RangeSearchMatchesSingleEngine) {
  const Engine single(WalkDataset(), EngineOptions{});
  const auto queries = GenerateQueryWorkload(
      single.dataset(), QueryWorkloadOptions{.num_queries = 8});
  for (const PartitionerKind partitioner :
       {PartitionerKind::kHash, PartitionerKind::kRange}) {
    const ShardedEngine sharded(WalkDataset(),
                                ShardOptions(3, partitioner));
    ASSERT_EQ(sharded.num_shards(), 3u);
    for (const Sequence& q : queries) {
      for (const double epsilon : {0.05, 0.2, 0.5}) {
        const SearchResult expected = single.Search(q, epsilon);
        const SearchResult got = sharded.Search(q, epsilon);
        EXPECT_EQ(got.matches, Sorted(expected.matches))
            << PartitionerKindName(partitioner) << " eps=" << epsilon;
        EXPECT_EQ(got.num_candidates, expected.num_candidates);
      }
    }
  }
}

TEST(ShardedEngineTest, MatchesComeBackSortedByGlobalId) {
  const ShardedEngine sharded(
      WalkDataset(), ShardOptions(4, PartitionerKind::kHash));
  const auto queries = GenerateQueryWorkload(
      Dataset(WalkDataset().sequences()),
      QueryWorkloadOptions{.num_queries = 5});
  for (const Sequence& q : queries) {
    const SearchResult got = sharded.Search(q, 0.4);
    EXPECT_TRUE(std::is_sorted(got.matches.begin(), got.matches.end()));
  }
}

TEST(ShardedEngineTest, KnnMatchesSingleEngineExactly) {
  const Engine single(WalkDataset(), EngineOptions{});
  const auto queries = GenerateQueryWorkload(
      single.dataset(), QueryWorkloadOptions{.num_queries = 6});
  for (const PartitionerKind partitioner :
       {PartitionerKind::kHash, PartitionerKind::kRange}) {
    const ShardedEngine sharded(WalkDataset(),
                                ShardOptions(4, partitioner));
    for (const Sequence& q : queries) {
      for (const size_t k : {1u, 5u, 12u}) {
        const KnnResult expected = single.SearchKnn(q, k);
        const KnnResult got = sharded.SearchKnn(q, k);
        ASSERT_EQ(got.neighbors.size(), expected.neighbors.size());
        for (size_t i = 0; i < expected.neighbors.size(); ++i) {
          EXPECT_EQ(got.neighbors[i].id, expected.neighbors[i].id)
              << "k=" << k << " i=" << i;
          EXPECT_EQ(got.neighbors[i].distance,
                    expected.neighbors[i].distance);
        }
      }
    }
  }
}

TEST(ShardedEngineTest, IdMappingRoundTrips) {
  const ShardedEngine sharded(
      WalkDataset(90), ShardOptions(4, PartitionerKind::kRange));
  EXPECT_EQ(sharded.total_sequences(), 90u);
  EXPECT_EQ(sharded.live_size(), 90u);
  size_t across = 0;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    across += sharded.shard(s).live_size();
  }
  EXPECT_EQ(across, 90u);
  for (SequenceId global = 0; global < 90; ++global) {
    const auto [shard, local] = sharded.ToShardLocal(global);
    EXPECT_EQ(sharded.ToGlobalId(shard, local), global);
  }
}

TEST(ShardedEngineTest, LocalIdsPreserveGlobalOrderWithinAShard) {
  // The deterministic kNN merge relies on per-shard orderings agreeing
  // with the global one: local ids must be assigned in increasing
  // global-id order.
  const ShardedEngine sharded(
      WalkDataset(100), ShardOptions(3, PartitionerKind::kHash));
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    const size_t n = sharded.shard(s).dataset().size();
    for (size_t local = 1; local < n; ++local) {
      EXPECT_LT(sharded.ToGlobalId(s, static_cast<SequenceId>(local - 1)),
                sharded.ToGlobalId(s, static_cast<SequenceId>(local)));
    }
  }
}

TEST(ShardedEngineTest, RangePartitionerPrunesFarShardsOnClusteredData) {
  const Dataset dataset = ClusteredDataset();
  const Engine single(ClusteredDataset(), EngineOptions{});
  const ShardedEngine sharded(ClusteredDataset(),
                              ShardOptions(2, PartitionerKind::kRange));

  // A query perturbed from a low-cluster sequence with a small epsilon
  // cannot reach the far cluster: its shard must be skipped untouched.
  const Sequence q = PerturbSequence(dataset[3], 17);
  const SearchResult expected = single.Search(q, 0.3);
  const SearchResult got = sharded.Search(q, 0.3);
  EXPECT_EQ(got.matches, Sorted(expected.matches));

  const ShardedEngine::Health health = sharded.TakeHealthSnapshot();
  EXPECT_EQ(health.queries_total, 1u);
  EXPECT_EQ(health.subqueries_total, 1u);  // one shard pruned away
  EXPECT_EQ(health.shards_skipped_total, 1u);
  uint64_t skipped = 0;
  for (const ShardedEngine::ShardStatus& s : health.shards) {
    skipped += s.skipped;
  }
  EXPECT_EQ(skipped, 1u);
}

TEST(ShardedEngineTest, EmptyShardsAreSkippedNotSearched) {
  // More shards than sequences forces empty shards; queries must still
  // answer correctly and never touch the empty ones.
  const Engine single(WalkDataset(5), EngineOptions{});
  const ShardedEngine sharded(WalkDataset(5),
                              ShardOptions(8, PartitionerKind::kHash));
  const Sequence q = PerturbSequence(single.dataset()[2], 3);
  const SearchResult expected = single.Search(q, 0.4);
  EXPECT_EQ(sharded.Search(q, 0.4).matches, Sorted(expected.matches));
  const KnnResult expected_knn = single.SearchKnn(q, 3);
  const KnnResult got_knn = sharded.SearchKnn(q, 3);
  ASSERT_EQ(got_knn.neighbors.size(), expected_knn.neighbors.size());
  for (size_t i = 0; i < got_knn.neighbors.size(); ++i) {
    EXPECT_EQ(got_knn.neighbors[i].id, expected_knn.neighbors[i].id);
  }
}

TEST(ShardedEngineTest, CostsAggregateAcrossShards) {
  const Engine single(WalkDataset(), EngineOptions{});
  const ShardedEngine sharded(WalkDataset(),
                              ShardOptions(4, PartitionerKind::kHash));
  const Sequence q = PerturbSequence(single.dataset()[10], 9);
  const SearchResult expected = single.Search(q, 0.4);
  const SearchResult got = sharded.Search(q, 0.4);
  // Work counters sum across shards; the same candidates get fetched and
  // DTW'd, just in K index traversals instead of one.
  EXPECT_EQ(got.cost.dtw_cells, expected.cost.dtw_cells);
  EXPECT_EQ(got.cost.dtw_evals, expected.cost.dtw_evals);
  EXPECT_GT(got.cost.index_nodes, 0u);
  EXPECT_GE(got.cost.wall_ms, 0.0);
}

TEST(ShardedEngineTest, SaveOpenRoundTripPreservesAnswers) {
  const std::string dir = TempDir("sharded_roundtrip");
  const ShardedEngineOptions options =
      ShardOptions(3, PartitionerKind::kRange);
  const ShardedEngine original(WalkDataset(), options);
  ASSERT_TRUE(original.Save(dir).ok());

  std::unique_ptr<ShardedEngine> reopened;
  ASSERT_TRUE(ShardedEngine::Open(dir, options, &reopened).ok());
  EXPECT_EQ(reopened->num_shards(), 3u);
  EXPECT_EQ(reopened->partitioner(), PartitionerKind::kRange);
  EXPECT_EQ(reopened->total_sequences(), original.total_sequences());

  const auto queries =
      GenerateQueryWorkload(Dataset(WalkDataset().sequences()),
                            QueryWorkloadOptions{.num_queries = 6});
  for (const Sequence& q : queries) {
    EXPECT_EQ(reopened->Search(q, 0.3).matches,
              original.Search(q, 0.3).matches);
    const KnnResult a = original.SearchKnn(q, 4);
    const KnnResult b = reopened->SearchKnn(q, 4);
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
    for (size_t i = 0; i < a.neighbors.size(); ++i) {
      EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id);
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(ShardedEngineTest, OpenRejectsMismatchedTopology) {
  const std::string dir = TempDir("sharded_mismatch");
  const ShardedEngine original(
      WalkDataset(40), ShardOptions(4, PartitionerKind::kHash));
  ASSERT_TRUE(original.Save(dir).ok());

  std::unique_ptr<ShardedEngine> reopened;
  // Wrong shard count.
  Status status =
      ShardedEngine::Open(dir, ShardOptions(2, PartitionerKind::kHash),
                          &reopened);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("shard"), std::string::npos);
  // Wrong partitioner.
  status = ShardedEngine::Open(
      dir, ShardOptions(4, PartitionerKind::kRange), &reopened);
  EXPECT_FALSE(status.ok());
  // Wrong page size.
  ShardedEngineOptions bad_page = ShardOptions(4, PartitionerKind::kHash);
  bad_page.engine.page_size_bytes = 4096;
  status = ShardedEngine::Open(dir, bad_page, &reopened);
  EXPECT_FALSE(status.ok());
  // The matching topology still opens.
  status = ShardedEngine::Open(
      dir, ShardOptions(4, PartitionerKind::kHash), &reopened);
  EXPECT_TRUE(status.ok()) << status.message();
  std::filesystem::remove_all(dir);
}

TEST(ShardedEngineTest, HealthSnapshotExposesPerShardState) {
  const ShardedEngine sharded(
      WalkDataset(80), ShardOptions(4, PartitionerKind::kRange));
  const Sequence q = PerturbSequence(sharded.shard(0).dataset()[0], 1);
  (void)sharded.Search(q, 0.2);
  (void)sharded.Search(q, 0.2);

  const ShardedEngine::Health health = sharded.TakeHealthSnapshot();
  EXPECT_EQ(health.num_shards, 4u);
  EXPECT_EQ(health.partitioner, PartitionerKind::kRange);
  EXPECT_EQ(health.queries_total, 2u);
  EXPECT_EQ(health.subqueries_total + health.shards_skipped_total, 8u);
  ASSERT_EQ(health.shards.size(), 4u);
  size_t live = 0;
  for (size_t s = 0; s < 4; ++s) {
    const ShardedEngine::ShardStatus& status = health.shards[s];
    EXPECT_EQ(status.shard_index, s);
    EXPECT_GT(status.health.dataset_sequences, 0u);
    EXPECT_EQ(status.health.index_entries, status.health.live_sequences);
    EXPECT_TRUE(status.bounds.valid);
    live += status.health.live_sequences;
  }
  EXPECT_EQ(live, 80u);
}

TEST(ShardedEngineTest, ExecutorBatchOverShardedEngineMatchesSequential) {
  const Engine single(WalkDataset(), EngineOptions{});
  ShardedEngine sharded(WalkDataset(),
                        ShardOptions(4, PartitionerKind::kHash));
  const auto queries = GenerateQueryWorkload(
      single.dataset(), QueryWorkloadOptions{.num_queries = 10});

  std::vector<QueryRequest> requests;
  for (const Sequence& q : queries) {
    requests.push_back(QueryRequest{MethodKind::kTwSimSearch, q, 0.35});
    requests.push_back(
        QueryRequest{MethodKind::kTwSimSearchCascade, q, 0.35});
  }

  QueryExecutorOptions options;
  options.num_threads = 4;
  QueryExecutor executor(&sharded, options);
  sharded.AttachPool(&executor.pool());  // shard fan-out shares the pool
  const BatchResult batch = executor.SubmitBatch(requests);
  ASSERT_EQ(batch.results.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const SearchResult expected = single.SearchWith(
        requests[i].method, requests[i].query, requests[i].epsilon);
    EXPECT_EQ(batch.results[i].matches, Sorted(expected.matches))
        << "request " << i;
  }
}

TEST(ShardedEngineTest, SearchParallelDelegatesToScatterGather) {
  const Engine single(WalkDataset(), EngineOptions{});
  ShardedEngine sharded(WalkDataset(),
                        ShardOptions(3, PartitionerKind::kRange));
  QueryExecutorOptions options;
  options.num_threads = 4;
  QueryExecutor executor(&sharded, options);
  sharded.AttachPool(&executor.pool());
  const Sequence q = PerturbSequence(single.dataset()[7], 21);
  for (const bool cascade : {false, true}) {
    const SearchResult expected = single.SearchWith(
        cascade ? MethodKind::kTwSimSearchCascade : MethodKind::kTwSimSearch,
        q, 0.4);
    const SearchResult got =
        executor.SearchParallel(q, 0.4, nullptr, cascade);
    EXPECT_EQ(got.matches, Sorted(expected.matches));
  }
}

TEST(ShardedEngineTest, FlightRecordsCarryShardIds) {
  FlightRecorder recorder;
  ShardedEngineOptions options = ShardOptions(3, PartitionerKind::kHash);
  options.flight_recorder = &recorder;
  const ShardedEngine sharded(WalkDataset(60), options);
  const Sequence q = PerturbSequence(sharded.shard(0).dataset()[0], 2);
  (void)sharded.Search(q, 0.4);

  const std::vector<FlightRecord> records = recorder.Snapshot();
  ASSERT_FALSE(records.empty());
  std::vector<int32_t> shards;
  for (const FlightRecord& r : records) {
    EXPECT_GE(r.shard, 0);
    EXPECT_LT(r.shard, 3);
    EXPECT_EQ(r.method, "TW-Sim-Search");
    shards.push_back(r.shard);
  }
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  EXPECT_EQ(shards.size(), records.size());  // one record per shard
}

// Per-query CPU attribution through the sharded merge: MergeParallel
// keeps CPU additive (machine work sums even when shards overlap in
// time), so the merged cpu_ms must carry at least the sum of the
// per-shard cpu_ms the flight records report, and with a multi-worker
// pool the fan-out can burn CPU faster than wall time elapses.
TEST(ShardedEngineTest, MergedCpuIsAtLeastSumOfPerShardCpu) {
  FlightRecorder recorder;
  ShardedEngineOptions options = ShardOptions(3, PartitionerKind::kHash);
  options.flight_recorder = &recorder;
  ShardedEngine sharded(WalkDataset(200), options);
  ThreadPool pool(3);
  sharded.AttachPool(&pool);
  const Sequence q = PerturbSequence(sharded.shard(0).dataset()[0], 2);
  const SearchResult result = sharded.Search(q, 0.6);

  double per_shard_cpu = 0.0;
  for (const FlightRecord& r : recorder.Snapshot()) {
    EXPECT_GE(r.cpu_ms, 0.0);
    per_shard_cpu += r.cpu_ms;
  }
  EXPECT_GT(result.cost.cpu_ms, 0.0);
  // Merged CPU = sum of shard CPU + the merge layer's own (non-negative)
  // CPU; a small epsilon absorbs clock granularity.
  EXPECT_GE(result.cost.cpu_ms, per_shard_cpu - 0.05)
      << "merged " << result.cost.cpu_ms << " vs per-shard sum "
      << per_shard_cpu;
  sharded.AttachPool(nullptr);
}

TEST(ShardedEngineTest, ShardMetricsLandInTheSharedRegistry) {
  MetricsRegistry registry;
  ShardedEngineOptions options = ShardOptions(4, PartitionerKind::kHash);
  options.engine.metrics = &registry;
  const ShardedEngine sharded(WalkDataset(60), options);
  const Sequence q = PerturbSequence(sharded.shard(1).dataset()[0], 2);
  // A huge epsilon keeps every shard unprunable, pinning the fan-out.
  (void)sharded.Search(q, 50.0);
  (void)sharded.Search(q, 50.0);

  const MetricsRegistry::Snapshot snapshot = registry.TakeSnapshot();
  uint64_t logical = 0;
  uint64_t sub = 0;
  bool saw_fanout = false;
  for (const auto& counter : snapshot.counters) {
    if (counter.name == "warpindex_shard_queries_total") {
      logical = counter.value;
    }
    if (counter.name == "warpindex_shard_subqueries_total") {
      sub = counter.value;
    }
  }
  for (const auto& histogram : snapshot.histograms) {
    if (histogram.name == "warpindex_shard_fanout") {
      saw_fanout = true;
      EXPECT_EQ(histogram.snapshot.stats.count(), 2u);
    }
  }
  EXPECT_EQ(logical, 2u);
  // Hash spreads the data, so every shard is live and unprunable at this
  // epsilon; each logical query fans out to all four shards.
  EXPECT_EQ(sub, 8u);
  EXPECT_TRUE(saw_fanout);
}

// The tree shape a stitched trace must reproduce regardless of which
// thread ran which shard: (name, parent, shard) per span, in span order.
// tid is deliberately excluded — it varies with pool scheduling.
struct SpanShape {
  std::string name;
  int parent;
  int32_t shard;
  bool operator==(const SpanShape& other) const {
    return name == other.name && parent == other.parent &&
           shard == other.shard;
  }
};

std::vector<SpanShape> ShapeOf(const Trace& trace) {
  std::vector<SpanShape> shape;
  shape.reserve(trace.spans().size());
  for (const TraceSpan& span : trace.spans()) {
    shape.push_back(SpanShape{span.name, span.parent, span.shard});
  }
  return shape;
}

TEST(ShardedTracingTest, OneStitchedTraceContainsEveryShardSubtree) {
  const ShardedEngine sharded(WalkDataset(),
                              ShardOptions(4, PartitionerKind::kHash));
  const Sequence q = PerturbSequence(sharded.shard(0).dataset()[0], 3);
  Trace trace;
  // Epsilon large enough that no shard is pruned: all four must appear.
  (void)sharded.Search(q, 50.0, &trace);

  int scatter_gather = -1;
  for (size_t i = 0; i < trace.spans().size(); ++i) {
    if (trace.spans()[i].name == "scatter_gather") {
      scatter_gather = static_cast<int>(i);
    }
  }
  ASSERT_GE(scatter_gather, 0);

  std::vector<int32_t> shard_tags;
  for (size_t i = 0; i < trace.spans().size(); ++i) {
    const TraceSpan& span = trace.spans()[i];
    if (span.name != "shard") {
      continue;
    }
    // Each per-shard subtree hangs off the scatter-gather span and is
    // tagged with its shard id, both on the span and as a counter.
    EXPECT_EQ(span.parent, scatter_gather);
    shard_tags.push_back(span.shard);
    bool saw_index = false;
    for (const auto& [key, value] : span.counters) {
      if (key == "shard_index") {
        saw_index = true;
        EXPECT_DOUBLE_EQ(value, static_cast<double>(span.shard));
      }
    }
    EXPECT_TRUE(saw_index);
    // The shard's own engine recorded inside the subtree: at least one
    // descendant span carrying the same shard tag.
    bool saw_child = false;
    for (size_t j = 0; j < trace.spans().size(); ++j) {
      if (trace.spans()[j].parent == static_cast<int>(i)) {
        saw_child = true;
        EXPECT_EQ(trace.spans()[j].shard, span.shard);
      }
    }
    EXPECT_TRUE(saw_child);
  }
  std::sort(shard_tags.begin(), shard_tags.end());
  EXPECT_EQ(shard_tags, (std::vector<int32_t>{0, 1, 2, 3}));
}

TEST(ShardedTracingTest, StitchedShapeIsIdenticalWithAndWithoutPool) {
  ShardedEngine sharded(WalkDataset(),
                        ShardOptions(3, PartitionerKind::kRange));
  const Sequence q = PerturbSequence(sharded.shard(1).dataset()[0], 9);

  Trace detached;
  (void)sharded.Search(q, 50.0, &detached);

  ThreadPool pool(4);
  sharded.AttachPool(&pool);
  Trace attached;
  (void)sharded.Search(q, 50.0, &attached);
  sharded.AttachPool(nullptr);

  // Stitching in shard order makes the tree shape deterministic: the
  // same query yields the same (name, parent, shard) sequence whether
  // shards ran inline on the caller or raced on pool workers.
  EXPECT_EQ(ShapeOf(detached), ShapeOf(attached));
  EXPECT_NE(detached.trace_id(), attached.trace_id());
}

TEST(ShardedTracingTest, PrunedShardsLeaveSkipMarkers) {
  ShardedEngineOptions options = ShardOptions(2, PartitionerKind::kRange);
  const ShardedEngine sharded(ClusteredDataset(), options);
  // A query inside the low cluster at tight epsilon prunes the far
  // shard; the trace must still account for it with a skip marker.
  const Sequence q = PerturbSequence(sharded.shard(0).dataset()[0], 13);
  Trace trace;
  (void)sharded.Search(q, 0.25, &trace);

  size_t searched = 0;
  size_t skipped = 0;
  std::vector<int32_t> seen;
  for (const TraceSpan& span : trace.spans()) {
    if (span.name == "shard") {
      ++searched;
      seen.push_back(span.shard);
    } else if (span.name == "shard_skipped") {
      ++skipped;
      seen.push_back(span.shard);
      EXPECT_LT(span.duration_ms, 1.0);  // a marker, not real work
    }
  }
  EXPECT_GE(searched, 1u);
  EXPECT_GE(skipped, 1u);
  // Together the searched and skipped markers cover both shards.
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int32_t>{0, 1}));
}

TEST(ShardedTracingTest, UntracedShardedSearchRecordsNoSpans) {
  ShardedEngine sharded(WalkDataset(),
                        ShardOptions(3, PartitionerKind::kHash));
  const Sequence q = PerturbSequence(sharded.shard(0).dataset()[0], 5);
  // The null-trace fan-out is the production default; it must work with
  // and without a pool and allocate no spans anywhere.
  const SearchResult without_pool = sharded.Search(q, 0.4, nullptr);
  ThreadPool pool(2);
  sharded.AttachPool(&pool);
  const SearchResult with_pool = sharded.Search(q, 0.4, nullptr);
  EXPECT_EQ(without_pool.matches, with_pool.matches);
}

}  // namespace
}  // namespace warpindex
