// Dynamic maintenance: Engine::Insert / Remove keep the store and the
// feature index consistent, and every search method keeps agreeing with
// ground truth afterwards.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "core/engine.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

Dataset WalkDataset(size_t n = 60) {
  RandomWalkOptions options;
  options.num_sequences = n;
  options.min_length = 25;
  options.max_length = 60;
  return GenerateRandomWalkDataset(options);
}

std::vector<SequenceId> Sorted(std::vector<SequenceId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(EngineDynamicTest, InsertMakesSequenceFindable) {
  Engine engine(WalkDataset(), EngineOptions{});
  Sequence fresh({100.0, 101.0, 102.0, 101.0});
  const SequenceId id = engine.Insert(fresh);
  EXPECT_EQ(id, 60);
  EXPECT_TRUE(engine.Contains(id));
  EXPECT_EQ(engine.live_size(), 61u);

  const SearchResult result = engine.Search(fresh, 0.0);
  ASSERT_EQ(result.matches.size(), 1u);
  EXPECT_EQ(result.matches[0], id);
}

TEST(EngineDynamicTest, RemoveMakesSequenceUnfindableEverywhere) {
  Engine engine(WalkDataset(), EngineOptions{});
  const Sequence target = engine.dataset()[10];
  ASSERT_TRUE(engine.Remove(10));
  EXPECT_FALSE(engine.Contains(10));
  EXPECT_EQ(engine.live_size(), 59u);

  for (const MethodKind kind : {MethodKind::kTwSimSearch,
                                MethodKind::kNaiveScan,
                                MethodKind::kLbScan}) {
    const SearchResult result = engine.SearchWith(kind, target, 0.0);
    EXPECT_EQ(std::find(result.matches.begin(), result.matches.end(), 10),
              result.matches.end())
        << MethodKindName(kind);
  }
}

TEST(EngineDynamicTest, RemoveTwiceFails) {
  Engine engine(WalkDataset(), EngineOptions{});
  EXPECT_TRUE(engine.Remove(5));
  EXPECT_FALSE(engine.Remove(5));
  EXPECT_FALSE(engine.Remove(999));
}

TEST(EngineDynamicTest, MethodsAgreeAfterChurn) {
  Engine engine(WalkDataset(80), EngineOptions{});
  // Churn: remove a third, insert replacements.
  for (SequenceId id = 0; id < 80; id += 3) {
    ASSERT_TRUE(engine.Remove(id));
  }
  RandomWalkOptions extra;
  extra.num_sequences = 20;
  extra.min_length = 30;
  extra.max_length = 50;
  extra.seed = 777;
  const Dataset replacements = GenerateRandomWalkDataset(extra);
  for (const Sequence& s : replacements.sequences()) {
    engine.Insert(s);
  }
  EXPECT_EQ(engine.live_size(), 80u - 27u + 20u);
  EXPECT_TRUE(engine.feature_index().rtree().CheckInvariants().ok());

  const auto queries = GenerateQueryWorkload(
      engine.dataset(), QueryWorkloadOptions{.num_queries = 10});
  for (const Sequence& q : queries) {
    const auto truth =
        Sorted(engine.SearchWith(MethodKind::kNaiveScan, q, 0.2).matches);
    EXPECT_EQ(Sorted(engine.Search(q, 0.2).matches), truth);
    EXPECT_EQ(
        Sorted(engine.SearchWith(MethodKind::kLbScan, q, 0.2).matches),
        truth);
  }
}

TEST(EngineDynamicTest, KnnRespectsRemovals) {
  Engine engine(WalkDataset(), EngineOptions{});
  const Sequence q = PerturbSequence(engine.dataset()[20], 3);
  ASSERT_EQ(engine.SearchKnn(q, 1).neighbors[0].id, 20);
  ASSERT_TRUE(engine.Remove(20));
  const KnnResult after = engine.SearchKnn(q, 1);
  ASSERT_EQ(after.neighbors.size(), 1u);
  EXPECT_NE(after.neighbors[0].id, 20);
}

TEST(EngineDynamicTest, StFilterRebuildCoversInsertsAndSkipsRemovals) {
  EngineOptions options;
  options.build_st_filter = true;
  options.st_filter_categories = 30;
  Engine engine(WalkDataset(40), options);

  Sequence fresh({50.0, 51.0, 52.0});
  const SequenceId id = engine.Insert(fresh);
  ASSERT_TRUE(engine.Remove(7));
  const Sequence removed = engine.dataset()[7];
  engine.RebuildStFilter();

  const SearchResult hit =
      engine.SearchWith(MethodKind::kStFilter, fresh, 0.0);
  ASSERT_EQ(hit.matches.size(), 1u);
  EXPECT_EQ(hit.matches[0], id);

  const SearchResult miss =
      engine.SearchWith(MethodKind::kStFilter, removed, 0.0);
  EXPECT_EQ(std::find(miss.matches.begin(), miss.matches.end(), 7),
            miss.matches.end());
}

TEST(EngineDynamicTest, InsertMarksSubsequenceIndexStale) {
  EngineOptions options;
  options.build_subsequence_index = true;
  options.subsequence_min_window = 8;
  options.subsequence_max_window = 12;
  Engine engine(WalkDataset(20), options);
  const Sequence q = engine.dataset()[2].Slice(3, 11);
  EXPECT_FALSE(engine.subsequence_index_stale());
  EXPECT_NO_THROW(engine.SearchSubsequences(q, 0.0));

  // Insert leaves the window index blind to the new sequence — querying
  // it would be a silent false dismissal, so it must throw instead.
  engine.Insert(Sequence(std::vector<double>(30, 2.0)));
  EXPECT_TRUE(engine.subsequence_index_stale());
  EXPECT_THROW(engine.SearchSubsequences(q, 0.0), std::logic_error);

  // Remove alone does NOT invalidate (tombstoned matches are filtered
  // exactly), and a rebuild clears the staleness.
  engine.RebuildSubsequenceIndex();
  EXPECT_FALSE(engine.subsequence_index_stale());
  EXPECT_NO_THROW(engine.SearchSubsequences(q, 0.0));
  ASSERT_TRUE(engine.Remove(4));
  EXPECT_FALSE(engine.subsequence_index_stale());
  EXPECT_NO_THROW(engine.SearchSubsequences(q, 0.0));
}

TEST(EngineDynamicTest, StoreAppendAndTombstoneAccounting) {
  Engine engine(WalkDataset(10), EngineOptions{});
  const size_t pages_before = engine.store().num_pages();
  engine.Insert(Sequence(std::vector<double>(1000, 1.0)));
  EXPECT_GT(engine.store().num_pages(), pages_before);
  EXPECT_EQ(engine.store().num_sequences(), 11u);
  engine.Remove(0);
  // Tombstoning reclaims no pages (heap-file semantics).
  EXPECT_EQ(engine.store().num_sequences(), 11u);
  EXPECT_EQ(engine.live_size(), 10u);
}

}  // namespace
}  // namespace warpindex
