// Cross-validation of the two independent subsequence-matching paths:
// the §6 window-feature index and ST-Filter's suffix-tree traversal must
// produce identical exact match sets after post-filtering.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/subsequence_index.h"
#include "dtw/dtw.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"
#include "suffixtree/st_filter.h"

namespace warpindex {
namespace {

using Key = std::tuple<SequenceId, size_t, size_t>;

std::vector<Key> ViaWindowIndex(const Dataset& d, const Sequence& q,
                                double eps, size_t min_w, size_t max_w) {
  SubsequenceIndexOptions options;
  options.min_window = min_w;
  options.max_window = max_w;
  const SubsequenceIndex index(&d, options);
  std::vector<Key> keys;
  for (const SubsequenceMatch& m : index.Search(q, eps)) {
    keys.emplace_back(m.sequence_id, m.offset, m.length);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<Key> ViaStFilter(const Dataset& d, const Sequence& q,
                             double eps, size_t min_w, size_t max_w) {
  StFilterOptions options;
  options.num_categories = 40;
  const StFilter filter(d, options);
  const Dtw dtw(DtwOptions::Linf());
  std::vector<Key> keys;
  for (const auto& c :
       filter.FindSubsequenceCandidates(q, eps, min_w, max_w)) {
    const Sequence window =
        d[static_cast<size_t>(c.sequence_id)].Slice(c.offset, c.length);
    if (dtw.DistanceWithThreshold(window, q, eps).distance <= eps) {
      keys.emplace_back(c.sequence_id, c.offset, c.length);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(SubsequenceCrossValidationTest, IdenticalMatchSets) {
  RandomWalkOptions rw;
  rw.num_sequences = 8;
  rw.min_length = 60;
  rw.max_length = 60;
  const Dataset d = GenerateRandomWalkDataset(rw);
  for (int qi = 0; qi < 5; ++qi) {
    const Sequence q = PerturbSequence(
        d[static_cast<size_t>(qi)].Slice(static_cast<size_t>(qi * 5), 12),
        static_cast<uint64_t>(qi + 1));
    for (const double eps : {0.05, 0.15}) {
      const auto a = ViaWindowIndex(d, q, eps, 10, 14);
      const auto b = ViaStFilter(d, q, eps, 10, 14);
      ASSERT_EQ(a, b) << "qi=" << qi << " eps=" << eps;
    }
  }
}

TEST(SubsequenceCrossValidationTest, AgreeOnEmptyResults) {
  RandomWalkOptions rw;
  rw.num_sequences = 5;
  rw.min_length = 40;
  rw.max_length = 40;
  const Dataset d = GenerateRandomWalkDataset(rw);
  const Sequence q(std::vector<double>(12, 300.0));  // far away
  EXPECT_TRUE(ViaWindowIndex(d, q, 0.1, 10, 14).empty());
  EXPECT_TRUE(ViaStFilter(d, q, 0.1, 10, 14).empty());
}

}  // namespace
}  // namespace warpindex
