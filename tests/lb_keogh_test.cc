// Envelope lower bounds (dtw/lb_keogh.h, dtw/lb_improved.h): envelope
// construction against a brute-force reference, bound validity across
// base distances / bands / length mismatches, the LB_Keogh <= LB_Improved
// dominance, and the full-width degeneracy to the one-sided LB_Yi bound.

#include "dtw/lb_keogh.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/prng.h"
#include "dtw/dtw.h"
#include "dtw/lb_improved.h"
#include "dtw/lb_yi.h"

namespace warpindex {
namespace {

Sequence RandomSequence(Prng* prng, int64_t min_len, int64_t max_len) {
  Sequence s;
  const int64_t len = prng->UniformInt(min_len, max_len);
  for (int64_t i = 0; i < len; ++i) {
    s.Append(prng->UniformDouble(-5.0, 5.0));
  }
  return s;
}

Sequence RandomWalkSequence(Prng* prng, int64_t min_len, int64_t max_len) {
  Sequence s;
  const int64_t len = prng->UniformInt(min_len, max_len);
  double v = prng->UniformDouble(-1.0, 1.0);
  for (int64_t i = 0; i < len; ++i) {
    s.Append(v);
    v += prng->UniformDouble(-0.2, 0.2);
  }
  return s;
}

// Brute-force window min/max for the envelope reference.
double WindowExtreme(const Sequence& s, size_t j, size_t r, bool want_max) {
  const size_t lo = j >= r ? j - r : 0;
  const size_t hi = std::min(s.size() - 1, j + r);
  double v = s[lo];
  for (size_t k = lo + 1; k <= hi; ++k) {
    v = want_max ? std::max(v, s[k]) : std::min(v, s[k]);
  }
  return v;
}

TEST(BandEnvelopeTest, MatchesBruteForceWindows) {
  Prng prng(41);
  for (int trial = 0; trial < 50; ++trial) {
    const Sequence s = RandomSequence(&prng, 1, 40);
    for (const size_t r : {size_t{0}, size_t{1}, size_t{3}, size_t{7},
                           s.size(), size_t{1000}}) {
      const BandEnvelope env = ComputeBandEnvelope(s, r);
      ASSERT_EQ(env.size(), s.size());
      ASSERT_EQ(env.radius, r);
      for (size_t j = 0; j < s.size(); ++j) {
        ASSERT_DOUBLE_EQ(env.lower[j], WindowExtreme(s, j, r, false))
            << "r=" << r << " j=" << j;
        ASSERT_DOUBLE_EQ(env.upper[j], WindowExtreme(s, j, r, true))
            << "r=" << r << " j=" << j;
      }
    }
  }
}

TEST(BandEnvelopeTest, SuffixArraysMatchBruteForce) {
  Prng prng(42);
  const Sequence s = RandomSequence(&prng, 10, 30);
  const BandEnvelope env = ComputeBandEnvelope(s, 2);
  for (size_t j = 0; j < s.size(); ++j) {
    double lo = s[j];
    double hi = s[j];
    for (size_t k = j; k < s.size(); ++k) {
      lo = std::min(lo, s[k]);
      hi = std::max(hi, s[k]);
    }
    EXPECT_DOUBLE_EQ(env.suffix_min[j], lo);
    EXPECT_DOUBLE_EQ(env.suffix_max[j], hi);
  }
}

TEST(BandEnvelopeTest, ZeroRadiusEnvelopeIsTheSequenceItself) {
  const Sequence s({3.0, -1.0, 4.0, 1.5});
  const BandEnvelope env = ComputeBandEnvelope(s, 0);
  for (size_t j = 0; j < s.size(); ++j) {
    EXPECT_DOUBLE_EQ(env.lower[j], s[j]);
    EXPECT_DOUBLE_EQ(env.upper[j], s[j]);
  }
}

TEST(BandEnvelopeTest, FullWidthRadiusDoesNotOverflow) {
  const Sequence s({1.0, 2.0, 0.5});
  const BandEnvelope env = ComputeBandEnvelope(s, kFullWidthRadius);
  EXPECT_EQ(env.radius, kFullWidthRadius);
  for (size_t j = 0; j < s.size(); ++j) {
    EXPECT_DOUBLE_EQ(env.lower[j], 0.5);
    EXPECT_DOUBLE_EQ(env.upper[j], 2.0);
  }
}

std::vector<DtwOptions> AllModes(int band) {
  DtwOptions linf = DtwOptions::Linf();
  DtwOptions l1 = DtwOptions::L1();
  DtwOptions l2 = DtwOptions::L2();
  linf.band = band;
  l1.band = band;
  l2.band = band;
  return {linf, l1, l2};
}

TEST(LbKeoghTest, LowerBoundsBandedDtwAllModesAndBands) {
  Prng prng(43);
  for (const int band : {-1, 0, 1, 3, 100}) {
    for (const DtwOptions& options : AllModes(band)) {
      const Dtw dtw(options);
      for (int trial = 0; trial < 120; ++trial) {
        const Sequence s = RandomWalkSequence(&prng, 2, 40);
        const Sequence q = RandomWalkSequence(&prng, 2, 40);
        const BandEnvelope q_env =
            ComputeBandEnvelope(q, EnvelopeRadiusFor(options));
        const double lb = LbKeogh(s, q, q_env, options);
        const double exact = dtw.Distance(s, q).distance;
        ASSERT_LE(lb, exact + 1e-9)
            << "band=" << band << " s=" << s.ToString(40)
            << " q=" << q.ToString(40);
      }
    }
  }
}

TEST(LbKeoghTest, NarrowEnvelopeFallbackStaysValid) {
  // The envelope is built with radius 1 but the pair's length gap forces
  // a much wider effective band — LbKeogh must recompute rather than use
  // the too-narrow windows.
  Prng prng(44);
  DtwOptions options = DtwOptions::Linf();
  options.band = 1;
  const Dtw dtw(options);
  for (int trial = 0; trial < 100; ++trial) {
    const Sequence s = RandomWalkSequence(&prng, 30, 40);
    const Sequence q = RandomWalkSequence(&prng, 2, 6);
    const BandEnvelope q_env = ComputeBandEnvelope(q, 1);
    const double lb = LbKeogh(s, q, q_env, options);
    ASSERT_LE(lb, dtw.Distance(s, q).distance + 1e-9);
  }
}

TEST(LbKeoghTest, FullWidthEnvelopeEqualsOneSidedLbYi) {
  // With a full-width envelope every window is [min Q, max Q], so the
  // bound degenerates to LB_Yi's one-sided term (s against Q's global
  // envelope) and can never exceed the two-sided LbYi.
  Prng prng(45);
  const DtwOptions options = DtwOptions::Linf();  // unconstrained
  for (int trial = 0; trial < 100; ++trial) {
    const Sequence s = RandomSequence(&prng, 1, 30);
    const Sequence q = RandomSequence(&prng, 1, 30);
    const BandEnvelope q_env = ComputeBandEnvelope(q, kFullWidthRadius);
    const double keogh = LbKeogh(s, q, q_env, options);
    const double yi = LbYi(s, q, options);
    ASSERT_LE(keogh, yi + 1e-12);
  }
}

TEST(LbKeoghTest, ZeroBandIdenticalLengthsIsPointwiseDistance) {
  // band = 0 with equal lengths leaves a single warping path (the
  // diagonal); the envelope is the sequence itself, so the bound equals
  // the exact distance.
  DtwOptions options = DtwOptions::Linf();
  options.band = 0;
  const Sequence s({1.0, 5.0, 2.0});
  const Sequence q({2.0, 3.0, 2.5});
  const BandEnvelope q_env = ComputeBandEnvelope(q, 0);
  const double lb = LbKeogh(s, q, q_env, options);
  const double exact = Dtw(options).Distance(s, q).distance;
  EXPECT_DOUBLE_EQ(lb, exact);
  EXPECT_DOUBLE_EQ(lb, 2.0);  // max(|1-2|, |5-3|, |2-2.5|)
}

TEST(LbImprovedTest, DominatesLbKeoghAllModesAndBands) {
  Prng prng(46);
  for (const int band : {-1, 0, 2, 50}) {
    for (const DtwOptions& options : AllModes(band)) {
      for (int trial = 0; trial < 100; ++trial) {
        const Sequence s = RandomWalkSequence(&prng, 2, 35);
        const Sequence q = RandomWalkSequence(&prng, 2, 35);
        const BandEnvelope q_env =
            ComputeBandEnvelope(q, EnvelopeRadiusFor(options));
        const double keogh = LbKeogh(s, q, q_env, options);
        const double improved = LbImproved(s, q, q_env, options);
        ASSERT_GE(improved, keogh - 1e-9) << "band=" << band;
      }
    }
  }
}

TEST(LbImprovedTest, LowerBoundsBandedDtwAllModesAndBands) {
  Prng prng(47);
  for (const int band : {-1, 0, 1, 4, 100}) {
    for (const DtwOptions& options : AllModes(band)) {
      const Dtw dtw(options);
      for (int trial = 0; trial < 120; ++trial) {
        const Sequence s = RandomWalkSequence(&prng, 2, 40);
        const Sequence q = RandomWalkSequence(&prng, 2, 40);
        const BandEnvelope q_env =
            ComputeBandEnvelope(q, EnvelopeRadiusFor(options));
        const double lb = LbImproved(s, q, q_env, options);
        const double exact = dtw.Distance(s, q).distance;
        ASSERT_LE(lb, exact + 1e-9)
            << "band=" << band << " s=" << s.ToString(40)
            << " q=" << q.ToString(40);
      }
    }
  }
}

TEST(LbImprovedTest, TighterThanKeoghOnShiftedWalks) {
  // A banded sum-combined config where the second pass adds real pruning
  // power (under the max combiner the second one-sided term rarely
  // exceeds the first): aggregate tightness over offset random walks.
  Prng prng(48);
  DtwOptions options = DtwOptions::L1();
  options.band = 4;
  double keogh_sum = 0.0;
  double improved_sum = 0.0;
  for (int trial = 0; trial < 200; ++trial) {
    const Sequence q = RandomWalkSequence(&prng, 20, 30);
    Sequence s;
    for (double v : q.elements()) {
      s.Append(v + prng.UniformDouble(-0.5, 0.5));
    }
    const BandEnvelope q_env =
        ComputeBandEnvelope(q, EnvelopeRadiusFor(options));
    keogh_sum += LbKeogh(s, q, q_env, options);
    improved_sum += LbImproved(s, q, q_env, options);
  }
  EXPECT_GT(improved_sum, keogh_sum);
}

TEST(OneSidedKeoghTest, ProjectionClampsIntoEnvelope) {
  const Sequence q({0.0, 1.0, 2.0, 3.0});
  const Sequence s({-1.0, 1.5, 10.0, 2.5});
  const DtwOptions options = DtwOptions::Linf();
  const BandEnvelope env = ComputeBandEnvelope(q, 1);
  std::vector<double> h;
  internal::OneSidedKeogh(s, env, 1, options, &h);
  ASSERT_EQ(h.size(), s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_GE(h[i], env.lower[i]);
    EXPECT_LE(h[i], env.upper[i]);
    // h is the nearest point of the window, so it never moves past s.
    EXPECT_LE(std::min(s[i], env.lower[i]), h[i]);
    EXPECT_LE(h[i], std::max(s[i], env.upper[i]));
  }
  EXPECT_DOUBLE_EQ(h[0], 0.0);   // clamped up to window min
  EXPECT_DOUBLE_EQ(h[1], 1.5);   // inside, unchanged
  EXPECT_DOUBLE_EQ(h[2], 3.0);   // clamped down to window max
}

}  // namespace
}  // namespace warpindex
