// The streaming-ingest acceptance property (docs/INGEST.md): at every
// quiescent point — fresh deltas, partially compacted, fully compacted —
// an IngestEngine answers bit-identically to a from-scratch Engine over
// the same live set, for every shard count, both partitioners, every
// search method, and kNN. A second suite hammers the engine with
// concurrent writers, query threads, and the background compactor, so
// running this under TSan certifies the epoch-snapshot read path and the
// freeze/swap protocol are race-free.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "exec/thread_pool.h"
#include "ingest/ingest_engine.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

Dataset WalkDataset(uint64_t seed, size_t n = 60) {
  RandomWalkOptions options;
  options.num_sequences = n;
  options.min_length = 20;
  options.max_length = 48;
  options.seed = seed;
  return GenerateRandomWalkDataset(options);
}

std::vector<SequenceId> Sorted(std::vector<SequenceId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// From-scratch reference over the live set: base rows at ids
// 0..base-1, `added` appended in id order (Dataset::Add re-ids each row
// to its position, which is exactly the ingest engine's id assignment),
// then `deleted` tombstoned.
std::unique_ptr<Engine> BuildReference(const Dataset& base,
                                       const std::vector<Sequence>& added,
                                       const std::vector<SequenceId>& deleted,
                                       const EngineOptions& options = {}) {
  Dataset all = base;
  for (const Sequence& s : added) {
    all.Add(s);
  }
  auto reference = std::make_unique<Engine>(std::move(all), options);
  for (const SequenceId id : deleted) {
    EXPECT_TRUE(reference->Remove(id)) << "reference Remove(" << id << ")";
  }
  return reference;
}

// One full equivalence check between `ingest` and the reference: every
// range method plus kNN over a small query workload.
void ExpectEquivalent(const IngestEngine& ingest, const Engine& reference,
                      const std::vector<Sequence>& queries,
                      const std::string& label) {
  const MethodKind kinds[] = {
      MethodKind::kTwSimSearch, MethodKind::kTwSimSearchCascade,
      MethodKind::kNaiveScan, MethodKind::kLbScan};
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Sequence& q = queries[qi];
    for (const double epsilon : {0.1, 0.35}) {
      const std::vector<SequenceId> expected =
          Sorted(reference.Search(q, epsilon).matches);
      for (const MethodKind kind : kinds) {
        EXPECT_EQ(ingest.SearchWith(kind, q, epsilon).matches, expected)
            << label << " q=" << qi << " method=" << MethodKindName(kind)
            << " eps=" << epsilon;
      }
    }
    for (const size_t nn : {1u, 4u, 10u}) {
      const KnnResult expected = reference.SearchKnn(q, nn);
      const KnnResult got = ingest.SearchKnn(q, nn);
      ASSERT_EQ(got.neighbors.size(), expected.neighbors.size())
          << label << " q=" << qi << " nn=" << nn;
      for (size_t i = 0; i < expected.neighbors.size(); ++i) {
        EXPECT_EQ(got.neighbors[i].id, expected.neighbors[i].id)
            << label << " q=" << qi << " nn=" << nn << " i=" << i;
        EXPECT_EQ(got.neighbors[i].distance, expected.neighbors[i].distance)
            << label << " q=" << qi << " nn=" << nn << " i=" << i;
      }
    }
  }
}

class IngestPropertyTest : public ::testing::TestWithParam<PartitionerKind> {
};

TEST_P(IngestPropertyTest, MatchesFromScratchEngineAcrossCompactionPoints) {
  for (const size_t num_shards : {1u, 3u}) {
    const uint64_t seed = 17 + num_shards;
    const Dataset base = WalkDataset(seed);
    const auto queries = GenerateQueryWorkload(
        base, QueryWorkloadOptions{.num_queries = 5, .seed = seed + 1});

    IngestOptions options;
    options.num_shards = num_shards;
    options.partitioner = GetParam();
    options.start_compactor = false;  // compaction points are explicit
    IngestEngine ingest(WalkDataset(seed), options);
    ThreadPool pool(4);
    ingest.AttachPool(&pool);

    std::vector<Sequence> added;
    std::vector<SequenceId> deleted;
    const Dataset extra = WalkDataset(seed + 99, 40);
    const auto check = [&](const std::string& label) {
      const std::unique_ptr<Engine> reference =
          BuildReference(base, added, deleted);
      ExpectEquivalent(ingest, *reference, queries,
                       label + " K=" + std::to_string(num_shards));
    };

    // Point 1: buffered deltas only (every insert still in its log).
    for (size_t i = 0; i < 25; ++i) {
      added.push_back(extra[i]);
      EXPECT_EQ(ingest.Insert(extra[i]),
                static_cast<SequenceId>(base.size() + i));
    }
    deleted.push_back(3);   // base row
    deleted.push_back(static_cast<SequenceId>(base.size() + 4));  // buffered
    EXPECT_TRUE(ingest.Delete(3));
    EXPECT_TRUE(ingest.Delete(static_cast<SequenceId>(base.size() + 4)));
    check("buffered");

    // Point 2: one shard compacted, the rest still buffering.
    ingest.CompactShard(0);
    check("partial-compaction");

    // Point 3: fully compacted (deltas empty, tombstones consumed).
    ingest.CompactAll();
    check("compacted");

    // Point 4: fresh writes on top of the compacted epoch, including a
    // delete of a row that now lives in a rebuilt base.
    for (size_t i = 25; i < extra.size(); ++i) {
      added.push_back(extra[i]);
      ingest.Insert(extra[i]);
    }
    deleted.push_back(static_cast<SequenceId>(base.size() + 10));
    EXPECT_TRUE(
        ingest.Delete(static_cast<SequenceId>(base.size() + 10)));
    check("recharged");

    // Point 5: the same answers with the pool detached (sequential
    // fan-out fallback).
    ingest.AttachPool(nullptr);
    check("no-pool");
    EXPECT_EQ(ingest.live_size(), base.size() + added.size() - deleted.size());
  }
}

TEST_P(IngestPropertyTest, ConcurrentWritesQueriesAndCompactionAgree) {
  const Dataset base = WalkDataset(5, 40);
  const auto queries = GenerateQueryWorkload(
      base, QueryWorkloadOptions{.num_queries = 4, .seed = 6});

  IngestOptions options;
  options.num_shards = 3;
  options.partitioner = GetParam();
  options.start_compactor = true;  // background compactor in the mix
  options.compact_max_delta_entries = 24;
  options.compact_max_tombstones = 16;
  options.compact_poll_ms = 2.0;
  IngestEngine ingest(WalkDataset(5, 40), options);
  ThreadPool pool(4);
  ingest.AttachPool(&pool);

  // Two writers, each inserting its own rows and deleting every 5th of
  // its own acknowledged inserts (disjoint victims: every delete must
  // ack true). Two query threads run range + kNN against whatever
  // snapshot they get; answers are unasserted here (no stable ground
  // truth mid-stream) but every access is TSan-checked.
  constexpr size_t kWriters = 2;
  constexpr size_t kPerWriter = 60;
  std::vector<std::vector<std::pair<SequenceId, Sequence>>> acked(kWriters);
  std::vector<std::vector<SequenceId>> removed(kWriters);
  std::atomic<bool> stop_queries{false};
  std::atomic<int> delete_failures{0};

  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      const Dataset mine = WalkDataset(100 + w, kPerWriter);
      for (size_t i = 0; i < kPerWriter; ++i) {
        const SequenceId id = ingest.Insert(mine[i]);
        acked[w].emplace_back(id, mine[i]);
        if ((i + 1) % 5 == 0) {
          const SequenceId victim = acked[w][i - 3].first;
          if (ingest.Delete(victim)) {
            removed[w].push_back(victim);
          } else {
            delete_failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (size_t t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      size_t round = 0;
      while (!stop_queries.load(std::memory_order_relaxed)) {
        const Sequence& q = queries[(round + t) % queries.size()];
        const SearchResult r = ingest.Search(q, 0.3);
        // Matches must never contain an id outside the assigned space.
        for (const SequenceId id : r.matches) {
          ASSERT_GE(id, 0);
          ASSERT_LT(static_cast<size_t>(id), ingest.id_space());
        }
        ingest.SearchKnn(q, 3);
        ++round;
      }
    });
  }
  for (size_t w = 0; w < kWriters; ++w) {
    threads[w].join();
  }
  stop_queries.store(true, std::memory_order_relaxed);
  for (size_t t = kWriters; t < threads.size(); ++t) {
    threads[t].join();
  }
  EXPECT_EQ(delete_failures.load(), 0);

  // Quiesce: finish compaction, then the final state must equal a
  // from-scratch engine over the acknowledged writes.
  ingest.CompactAll();
  std::vector<std::pair<SequenceId, Sequence>> all_acked;
  std::vector<SequenceId> all_removed;
  for (size_t w = 0; w < kWriters; ++w) {
    all_acked.insert(all_acked.end(), acked[w].begin(), acked[w].end());
    all_removed.insert(all_removed.end(), removed[w].begin(),
                       removed[w].end());
  }
  std::sort(all_acked.begin(), all_acked.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Sequence> added;
  for (auto& [id, row] : all_acked) {
    ASSERT_EQ(static_cast<size_t>(id), base.size() + added.size())
        << "ids must be contiguous dataset positions";
    added.push_back(std::move(row));
  }
  const std::unique_ptr<Engine> reference =
      BuildReference(base, added, all_removed);
  ExpectEquivalent(ingest, *reference, queries, "quiesced");

  const IngestEngine::Health health = ingest.TakeHealthSnapshot();
  EXPECT_EQ(health.inserts_total, kWriters * kPerWriter);
  EXPECT_GE(health.compactions_total, 1u)
      << "the write volume must have triggered background compaction";
}

INSTANTIATE_TEST_SUITE_P(Partitioners, IngestPropertyTest,
                         ::testing::Values(PartitionerKind::kHash,
                                           PartitionerKind::kRange),
                         [](const auto& info) {
                           return std::string(
                               PartitionerKindName(info.param));
                         });

}  // namespace
}  // namespace warpindex
