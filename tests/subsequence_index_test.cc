#include "core/subsequence_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "dtw/dtw.h"
#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

Dataset SmallDataset(size_t n = 10, size_t len = 60) {
  RandomWalkOptions options;
  options.num_sequences = n;
  options.min_length = len;
  options.max_length = len;
  return GenerateRandomWalkDataset(options);
}

std::vector<SubsequenceMatch> BruteForce(const Dataset& d,
                                         const Sequence& q, double epsilon,
                                         size_t min_w, size_t max_w,
                                         size_t stride) {
  const Dtw dtw(DtwOptions::Linf());
  std::vector<SubsequenceMatch> out;
  for (size_t i = 0; i < d.size(); ++i) {
    const Sequence& s = d[i];
    for (size_t w = min_w; w <= max_w; ++w) {
      for (size_t off = 0; off + w <= s.size(); off += stride) {
        const Sequence window = s.Slice(off, w);
        const double dist = dtw.Distance(window, q).distance;
        if (dist <= epsilon) {
          out.push_back({static_cast<SequenceId>(i), off, w, dist});
        }
      }
    }
  }
  return out;
}

TEST(SubsequenceIndexTest, CountsAllWindows) {
  const Dataset d = SmallDataset(3, 20);
  SubsequenceIndexOptions options;
  options.min_window = 5;
  options.max_window = 7;
  const SubsequenceIndex index(&d, options);
  // Per sequence: (20-5+1) + (20-6+1) + (20-7+1) = 16+15+14 = 45.
  EXPECT_EQ(index.num_windows(), 3u * 45u);
}

TEST(SubsequenceIndexTest, StrideReducesWindowCount) {
  const Dataset d = SmallDataset(2, 30);
  SubsequenceIndexOptions dense;
  dense.min_window = 8;
  dense.max_window = 8;
  SubsequenceIndexOptions sparse = dense;
  sparse.stride = 4;
  const SubsequenceIndex dense_index(&d, dense);
  const SubsequenceIndex sparse_index(&d, sparse);
  EXPECT_GT(dense_index.num_windows(), sparse_index.num_windows());
}

TEST(SubsequenceIndexTest, MatchesBruteForceExactly) {
  const Dataset d = SmallDataset(6, 40);
  SubsequenceIndexOptions options;
  options.min_window = 8;
  options.max_window = 12;
  const SubsequenceIndex index(&d, options);

  // Query: a real window, slightly perturbed.
  Sequence q = d[2].Slice(10, 10);
  for (const double epsilon : {0.0, 0.05, 0.15}) {
    auto got = index.Search(q, epsilon);
    auto expected = BruteForce(d, q, epsilon, 8, 12, 1);
    std::sort(expected.begin(), expected.end(),
              [](const SubsequenceMatch& a, const SubsequenceMatch& b) {
                if (a.sequence_id != b.sequence_id) {
                  return a.sequence_id < b.sequence_id;
                }
                if (a.offset != b.offset) return a.offset < b.offset;
                return a.length < b.length;
              });
    ASSERT_EQ(got.size(), expected.size()) << "eps=" << epsilon;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]);
      EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9);
    }
  }
}

TEST(SubsequenceIndexTest, FindsExactWindowAtZeroTolerance) {
  const Dataset d = SmallDataset(4, 30);
  SubsequenceIndexOptions options;
  options.min_window = 10;
  options.max_window = 10;
  const SubsequenceIndex index(&d, options);
  const Sequence q = d[1].Slice(5, 10);
  const auto matches = index.Search(q, 0.0);
  const SubsequenceMatch expected{1, 5, 10, 0.0};
  EXPECT_NE(std::find(matches.begin(), matches.end(), expected),
            matches.end());
}

TEST(SubsequenceIndexTest, CostAccountingPopulated) {
  const Dataset d = SmallDataset(4, 30);
  SubsequenceIndexOptions options;
  options.min_window = 6;
  options.max_window = 10;
  const SubsequenceIndex index(&d, options);
  SearchCost cost;
  index.Search(d[0].Slice(0, 8), 0.1, &cost);
  EXPECT_GT(cost.index_nodes, 0u);
  EXPECT_GT(cost.io.random_page_reads, 0u);
}

TEST(SubsequenceIndexTest, IncrementalBuildAgreesWithBulk) {
  const Dataset d = SmallDataset(3, 25);
  SubsequenceIndexOptions bulk;
  bulk.min_window = 5;
  bulk.max_window = 8;
  SubsequenceIndexOptions incremental = bulk;
  incremental.bulk_load = false;
  const SubsequenceIndex a(&d, bulk);
  const SubsequenceIndex b(&d, incremental);
  const Sequence q = d[0].Slice(3, 6);
  const auto ma = a.Search(q, 0.1);
  const auto mb = b.Search(q, 0.1);
  ASSERT_EQ(ma.size(), mb.size());
  for (size_t i = 0; i < ma.size(); ++i) {
    EXPECT_EQ(ma[i], mb[i]);
  }
}

TEST(SubsequenceIndexTest, EveryWindowFindsItselfAtZeroTolerance) {
  // Exhaustive self-retrieval: any error in the sliding min/max feature
  // extraction would break the zero-radius range query for that window.
  const Dataset d = SmallDataset(2, 35);
  SubsequenceIndexOptions options;
  options.min_window = 4;
  options.max_window = 9;
  const SubsequenceIndex index(&d, options);
  for (size_t si = 0; si < d.size(); ++si) {
    const Sequence& s = d[si];
    for (size_t w = 4; w <= 9; ++w) {
      for (size_t off = 0; off + w <= s.size(); ++off) {
        const auto matches = index.Search(s.Slice(off, w), 0.0);
        const SubsequenceMatch expected{static_cast<SequenceId>(si), off, w,
                                        0.0};
        ASSERT_NE(std::find(matches.begin(), matches.end(), expected),
                  matches.end())
            << "window (" << si << ", " << off << ", " << w << ")";
      }
    }
  }
}

TEST(SubsequenceIndexTest, ShortSequencesContributeNoWindows) {
  Dataset d;
  d.Add(Sequence({1.0, 2.0}));  // shorter than min_window
  d.Add(Sequence({1.0, 2.0, 3.0, 4.0, 5.0, 6.0}));
  SubsequenceIndexOptions options;
  options.min_window = 4;
  options.max_window = 5;
  const SubsequenceIndex index(&d, options);
  // Only the second sequence: (6-4+1) + (6-5+1) = 5 windows.
  EXPECT_EQ(index.num_windows(), 5u);
}

}  // namespace
}  // namespace warpindex
