#include "core/feature_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

Dataset WalkDataset(size_t n, size_t len, uint64_t seed = 42) {
  RandomWalkOptions options;
  options.num_sequences = n;
  options.min_length = len / 2;
  options.max_length = len;
  options.seed = seed;
  return GenerateRandomWalkDataset(options);
}

std::vector<SequenceId> BruteForceRange(const Dataset& d,
                                        const FeatureVector& qf,
                                        double epsilon) {
  std::vector<SequenceId> out;
  for (size_t i = 0; i < d.size(); ++i) {
    if (WithinLowerBoundTolerance(ExtractFeature(d[i]), qf, epsilon)) {
      out.push_back(static_cast<SequenceId>(i));
    }
  }
  return out;
}

class FeatureIndexTest : public testing::TestWithParam<bool> {};

TEST_P(FeatureIndexTest, RangeQueryEqualsBruteForceLowerBound) {
  const Dataset d = WalkDataset(300, 80);
  FeatureIndexOptions options;
  options.bulk_load = GetParam();
  const FeatureIndex index(d, options);
  EXPECT_EQ(index.size(), d.size());
  EXPECT_TRUE(index.rtree().CheckInvariants().ok());

  for (const double epsilon : {0.0, 0.05, 0.2, 1.0, 10.0}) {
    for (size_t qi = 0; qi < 10; ++qi) {
      const FeatureVector qf = ExtractFeature(d[qi * 17 % d.size()]);
      auto hits = index.RangeQuery(qf, epsilon);
      std::sort(hits.begin(), hits.end());
      EXPECT_EQ(hits, BruteForceRange(d, qf, epsilon))
          << "eps=" << epsilon << " qi=" << qi;
    }
  }
}

TEST_P(FeatureIndexTest, InsertThenQuery) {
  const Dataset d = WalkDataset(50, 40);
  FeatureIndexOptions options;
  options.bulk_load = GetParam();
  FeatureIndex index(d, options);
  const Sequence extra({5.0, 6.0, 7.0});
  index.Insert(999, ExtractFeature(extra));
  EXPECT_EQ(index.size(), 51u);
  const auto hits = index.RangeQuery(ExtractFeature(extra), 0.0);
  EXPECT_NE(std::find(hits.begin(), hits.end(), 999), hits.end());
}

TEST_P(FeatureIndexTest, RemoveDropsEntry) {
  const Dataset d = WalkDataset(50, 40);
  FeatureIndexOptions options;
  options.bulk_load = GetParam();
  FeatureIndex index(d, options);
  const FeatureVector f0 = ExtractFeature(d[0]);
  EXPECT_TRUE(index.Remove(0, f0));
  EXPECT_EQ(index.size(), 49u);
  const auto hits = index.RangeQuery(f0, 0.0);
  EXPECT_EQ(std::find(hits.begin(), hits.end(), 0), hits.end());
  EXPECT_FALSE(index.Remove(0, f0));  // already gone
}

INSTANTIATE_TEST_SUITE_P(BulkAndIncremental, FeatureIndexTest,
                         testing::Bool(),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? "bulk" : "incremental";
                         });

TEST(FeatureIndexSizeTest, IndexIsSmallFractionOfDatabase) {
  // Paper §5.2: the R-tree is "less than 4% of the database size" for the
  // stock corpus (mean length 231 -> one 72-byte entry per ~1.8 KB
  // record).
  const Dataset d = WalkDataset(500, 231);
  const FeatureIndex index(d, FeatureIndexOptions{});
  const DatasetStats stats = d.ComputeStats();
  const size_t data_bytes = stats.total_elements * sizeof(double);
  const size_t index_bytes = index.rtree().TotalBytes();
  EXPECT_LT(index_bytes, data_bytes / 10);
}

TEST(FeatureIndexSizeTest, FeatureToPointLayout) {
  FeatureVector f;
  f.first = 1.0;
  f.last = 2.0;
  f.greatest = 3.0;
  f.smallest = 0.0;
  const Point p = FeatureIndex::FeatureToPoint(f);
  EXPECT_EQ(p.dims, kFeatureDims);
  EXPECT_EQ(p[0], 1.0);
  EXPECT_EQ(p[1], 2.0);
  EXPECT_EQ(p[2], 3.0);
  EXPECT_EQ(p[3], 0.0);
}

}  // namespace
}  // namespace warpindex
