#include "suffixtree/st_filter.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "dtw/dtw.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

Dataset SmallWalkDataset(size_t n = 60, size_t len = 40) {
  RandomWalkOptions options;
  options.num_sequences = n;
  options.min_length = len / 2;
  options.max_length = len;
  return GenerateRandomWalkDataset(options);
}

std::vector<SequenceId> TrueMatches(const Dataset& d, const Sequence& q,
                                    double epsilon) {
  const Dtw dtw(DtwOptions::Linf());
  std::vector<SequenceId> out;
  for (size_t i = 0; i < d.size(); ++i) {
    if (dtw.Distance(d[i], q).distance <= epsilon) {
      out.push_back(static_cast<SequenceId>(i));
    }
  }
  return out;
}

TEST(StFilterTest, CandidatesAreSupersetOfTrueMatches) {
  const Dataset d = SmallWalkDataset();
  StFilterOptions options;
  options.num_categories = 20;
  const StFilter filter(d, options);
  const auto queries =
      GenerateQueryWorkload(d, QueryWorkloadOptions{.num_queries = 20});
  for (const double epsilon : {0.05, 0.1, 0.3, 1.0}) {
    for (const Sequence& q : queries) {
      auto candidates = filter.FindCandidates(q, epsilon);
      std::sort(candidates.begin(), candidates.end());
      for (const SequenceId id : TrueMatches(d, q, epsilon)) {
        EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(),
                                       id))
            << "false dismissal: id=" << id << " eps=" << epsilon;
      }
    }
  }
}

TEST(StFilterTest, ExactCopyQueryAlwaysCandidate) {
  const Dataset d = SmallWalkDataset(30, 25);
  const StFilter filter(d, StFilterOptions{});
  for (size_t i = 0; i < d.size(); ++i) {
    const auto candidates = filter.FindCandidates(d[i], 0.0);
    EXPECT_NE(std::find(candidates.begin(), candidates.end(),
                        static_cast<SequenceId>(i)),
              candidates.end());
  }
}

TEST(StFilterTest, FiltersAggressivelyForTinyTolerance) {
  const Dataset d = SmallWalkDataset(100, 60);
  StFilterOptions options;
  options.num_categories = 100;
  const StFilter filter(d, options);
  // A far-away query: constant level above every random walk.
  const Sequence q(std::vector<double>(30, 1000.0));
  const auto candidates = filter.FindCandidates(q, 0.1);
  EXPECT_TRUE(candidates.empty());
}

TEST(StFilterTest, MoreCategoriesFilterAtLeastAsWell) {
  const Dataset d = SmallWalkDataset(80, 50);
  StFilterOptions coarse;
  coarse.num_categories = 4;
  StFilterOptions fine;
  fine.num_categories = 200;
  const StFilter coarse_filter(d, coarse);
  const StFilter fine_filter(d, fine);
  const auto queries =
      GenerateQueryWorkload(d, QueryWorkloadOptions{.num_queries = 10});
  size_t coarse_total = 0;
  size_t fine_total = 0;
  for (const Sequence& q : queries) {
    coarse_total += coarse_filter.FindCandidates(q, 0.1).size();
    fine_total += fine_filter.FindCandidates(q, 0.1).size();
  }
  EXPECT_LE(fine_total, coarse_total);
}

TEST(StFilterTest, StatsPopulated) {
  const Dataset d = SmallWalkDataset(40, 30);
  const StFilter filter(d, StFilterOptions{});
  StFilterQueryStats stats;
  filter.FindCandidates(d[0], 0.1, &stats);
  EXPECT_GT(stats.nodes_visited, 0u);
  EXPECT_GT(stats.pages_accessed, 0u);
  EXPECT_GT(stats.dp_cells, 0u);
  EXPECT_LE(stats.pages_accessed, filter.IndexPages());
}

TEST(StFilterTest, DuplicateSequencesBothReported) {
  Dataset d;
  d.Add(Sequence({1.0, 2.0, 3.0}));
  d.Add(Sequence({1.0, 2.0, 3.0}));  // identical content
  d.Add(Sequence({50.0, 60.0}));
  StFilterOptions options;
  options.num_categories = 10;
  const StFilter filter(d, options);
  auto candidates = filter.FindCandidates(Sequence({1.0, 2.0, 3.0}), 0.5);
  std::sort(candidates.begin(), candidates.end());
  EXPECT_EQ(candidates, (std::vector<SequenceId>{0, 1}));
}

TEST(StFilterTest, PrefixIsNotAWholeMatchCandidateUnlessClose) {
  // "abc" vs data "abczz...": whole matching must not return the long
  // sequence merely because the query matches its prefix.
  Dataset d;
  d.Add(Sequence({1.0, 2.0, 3.0, 90.0, 95.0}));
  StFilterOptions options;
  options.num_categories = 50;
  const StFilter filter(d, options);
  const auto candidates = filter.FindCandidates(Sequence({1.0, 2.0, 3.0}),
                                                1.0);
  EXPECT_TRUE(candidates.empty());
}

}  // namespace
}  // namespace warpindex
