// Tests for the SIGPROF sampling CPU profiler (obs/profiler.h): the
// Start/Stop/Collect lifecycle, argument validation, thread-tag
// attribution in the folded output, both export formats, and — run
// under TSan in CI — scraping a profile while tagged threads burn CPU,
// which certifies the signal handler races nothing on the sample path.
//
// On platforms without timer_create/SIGPROF support Start() returns
// FailedPrecondition; every sampling test skips itself there.

#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/json.h"

namespace warpindex {
namespace {

// Spins until `stop`, doing enough arithmetic per iteration that the
// thread is genuinely on-CPU (the process-CPU-clock timer only fires
// while threads run).
void BurnCpu(const std::atomic<bool>& stop) {
  volatile double sink = 1.0;
  while (!stop.load(std::memory_order_relaxed)) {
    for (int i = 1; i < 512; ++i) {
      sink = sink + 1.0 / static_cast<double>(i);
    }
  }
}

// Starts the profiler or skips the test on unsupported platforms.
// Returns false when skipped.
bool StartOrSkip(const ProfileOptions& options) {
  const Status status = CpuProfiler::Global().Start(options);
  if (status.code() == StatusCode::kFailedPrecondition) {
    return false;
  }
  EXPECT_TRUE(status.ok()) << status.ToString();
  return status.ok();
}

TEST(CpuProfilerTest, StopWithoutStartFails) {
  Profile profile;
  const Status status = CpuProfiler::Global().Stop(&profile);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(CpuProfiler::Global().running());
}

TEST(CpuProfilerTest, StartRejectsBadRates) {
  ProfileOptions options;
  options.hz = 0;
  EXPECT_EQ(CpuProfiler::Global().Start(options).code(),
            StatusCode::kInvalidArgument);
  options.hz = 1001;
  EXPECT_EQ(CpuProfiler::Global().Start(options).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(CpuProfiler::Global().running());
}

TEST(CpuProfilerTest, CollectValidatesWindowAndRate) {
  Profile profile;
  EXPECT_EQ(CpuProfiler::Global().Collect(0.0, 99, &profile).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CpuProfiler::Global().Collect(121.0, 99, &profile).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CpuProfiler::Global().Collect(1.0, 0, &profile).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CpuProfiler::Global().Collect(1.0, 1001, &profile).code(),
            StatusCode::kInvalidArgument);
}

TEST(CpuProfilerTest, SecondStartIsRejectedWhileRunning) {
  if (!StartOrSkip(ProfileOptions{})) {
    GTEST_SKIP() << "profiler unsupported on this platform";
  }
  EXPECT_TRUE(CpuProfiler::Global().running());
  EXPECT_EQ(CpuProfiler::Global().Start(ProfileOptions{}).code(),
            StatusCode::kFailedPrecondition);
  Profile profile;
  EXPECT_TRUE(CpuProfiler::Global().Stop(&profile).ok());
  EXPECT_FALSE(CpuProfiler::Global().running());
}

TEST(CpuProfilerTest, IdleProfileIsValidWithZeroOrFewSamples) {
  if (!StartOrSkip(ProfileOptions{})) {
    GTEST_SKIP() << "profiler unsupported on this platform";
  }
  // No CPU burned on purpose: the process-CPU timer barely advances, so
  // this exercises the empty/near-empty export paths.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Profile profile;
  ASSERT_TRUE(CpuProfiler::Global().Stop(&profile).ok());
  EXPECT_EQ(profile.dropped, 0u);
  const std::string folded = profile.FoldedText();
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse(profile.SpeedscopeJson(), &parsed).ok())
      << profile.SpeedscopeJson();
  EXPECT_NE(parsed.Find("profiles"), nullptr);
}

TEST(CpuProfilerTest, TagsBusyThreadsInFoldedStacks) {
  ProfileOptions options;
  options.hz = 997;  // dense sampling keeps the busy window short
  if (!StartOrSkip(options)) {
    GTEST_SKIP() << "profiler unsupported on this platform";
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> burners;
  for (int i = 0; i < 2; ++i) {
    burners.emplace_back([&stop, i] {
      CpuProfiler::SetThreadTag("burner-" + std::to_string(i));
      BurnCpu(stop);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (std::thread& t : burners) {
    t.join();
  }
  Profile profile;
  ASSERT_TRUE(CpuProfiler::Global().Stop(&profile).ok());
  ASSERT_GT(profile.samples, 0u);
  EXPECT_EQ(profile.hz, 997);
  EXPECT_GT(profile.duration_s, 0.0);

  // The only threads burning CPU were the tagged burners, so their tags
  // must dominate the folded stacks (the main thread sleeps; allow a
  // few stray samples from it and the gtest machinery).
  uint64_t total = 0;
  uint64_t tagged = 0;
  for (const auto& [stack, count] : profile.folded) {
    total += count;
    if (stack.rfind("burner-", 0) == 0) {
      tagged += count;
    }
  }
  EXPECT_EQ(total, profile.samples);
  EXPECT_GT(tagged, total / 2) << profile.FoldedText();

  // Folded lines are "stack count" with tag-first stacks.
  const std::string folded = profile.FoldedText();
  EXPECT_NE(folded.find("burner-0;"), std::string::npos);
  EXPECT_NE(folded.find("burner-1;"), std::string::npos);

  // The speedscope export of the same profile parses and carries every
  // sample's weight.
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse(profile.SpeedscopeJson(), &parsed).ok());
  const JsonValue* profiles = parsed.Find("profiles");
  ASSERT_NE(profiles, nullptr);
}

// TSan target: Collect() runs a whole profile while tagged threads burn
// CPU and keep re-tagging themselves — the signal handler samples
// concurrently with SetThreadTag and with the burners' stack growth.
TEST(CpuProfilerTest, CollectWhileThreadsBurnAndRetag) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> burners;
  for (int i = 0; i < 3; ++i) {
    burners.emplace_back([&stop, i] {
      uint64_t laps = 0;
      volatile double sink = 1.0;
      while (!stop.load(std::memory_order_relaxed)) {
        CpuProfiler::SetThreadTag("lap-" + std::to_string(i) + "-" +
                                  std::to_string(laps++ % 4));
        for (int j = 1; j < 4096; ++j) {
          sink = sink + 1.0 / static_cast<double>(j);
        }
      }
    });
  }
  Profile profile;
  const Status status = CpuProfiler::Global().Collect(0.3, 499, &profile);
  stop.store(true);
  for (std::thread& t : burners) {
    t.join();
  }
  if (status.code() == StatusCode::kFailedPrecondition) {
    GTEST_SKIP() << "profiler unsupported on this platform";
  }
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_GT(profile.samples, 0u);
  EXPECT_FALSE(CpuProfiler::Global().running());
}

TEST(CpuProfilerTest, TagLongerThanLimitIsTruncatedNotRejected) {
  ProfileOptions options;
  options.hz = 997;
  if (!StartOrSkip(options)) {
    GTEST_SKIP() << "profiler unsupported on this platform";
  }
  std::atomic<bool> stop{false};
  std::thread burner([&stop] {
    CpuProfiler::SetThreadTag(std::string(64, 'x'));
    BurnCpu(stop);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  stop.store(true);
  burner.join();
  Profile profile;
  ASSERT_TRUE(CpuProfiler::Global().Stop(&profile).ok());
  const std::string truncated(CpuProfiler::kMaxTagLength, 'x');
  bool found = false;
  for (const auto& [stack, count] : profile.folded) {
    if (stack.rfind(truncated + ";", 0) == 0 || stack == truncated) {
      found = true;
      EXPECT_EQ(stack.find(std::string(CpuProfiler::kMaxTagLength + 1, 'x')),
                std::string::npos);
    }
  }
  if (profile.samples > 0) {
    EXPECT_TRUE(found) << profile.FoldedText();
  }
}

}  // namespace
}  // namespace warpindex
