#include "rtree/rtree_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/prng.h"
#include "rtree/bulk_load.h"

namespace warpindex {
namespace {

std::vector<RTreeEntry> RandomEntries(size_t n, int dims, uint64_t seed) {
  Prng prng(seed);
  std::vector<RTreeEntry> entries;
  for (size_t i = 0; i < n; ++i) {
    Point p;
    p.dims = dims;
    for (int d = 0; d < dims; ++d) {
      p[d] = prng.UniformDouble(0.0, 100.0);
    }
    entries.push_back(
        RTreeEntry::Leaf(Rect::FromPoint(p), static_cast<int64_t>(i)));
  }
  return entries;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(RTreeIoTest, RoundTripPreservesQueries) {
  RTreeOptions options;
  options.page_size_bytes = 512;
  RTree original(4, options);
  for (const auto& e : RandomEntries(800, 4, 1)) {
    original.Insert(e.rect, e.record_id);
  }
  const std::string path = TempPath("rtree_roundtrip.wirt");
  ASSERT_TRUE(SaveRTreeToFile(original, path).ok());

  RTree loaded(1);
  ASSERT_TRUE(LoadRTreeFromFile(path, &loaded).ok());
  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.node_count(), original.node_count());
  EXPECT_EQ(loaded.dims(), 4);
  EXPECT_EQ(loaded.capacity(), original.capacity());
  EXPECT_TRUE(loaded.CheckInvariants().ok());

  Prng prng(2);
  for (int trial = 0; trial < 25; ++trial) {
    Point c;
    c.dims = 4;
    for (int d = 0; d < 4; ++d) {
      c[d] = prng.UniformDouble(0.0, 100.0);
    }
    const Rect query = Rect::SquareAround(c, prng.UniformDouble(1.0, 20.0));
    auto a = original.RangeSearch(query);
    auto b = loaded.RangeSearch(query);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b);
  }
  std::remove(path.c_str());
}

TEST(RTreeIoTest, RoundTripAfterDeletesSkipsFreeListHoles) {
  RTreeOptions options;
  options.page_size_bytes = 256;
  RTree original(2, options);
  const auto entries = RandomEntries(400, 2, 3);
  for (const auto& e : entries) {
    original.Insert(e.rect, e.record_id);
  }
  for (size_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(original.Delete(entries[i].rect, entries[i].record_id));
  }
  const std::string path = TempPath("rtree_holes.wirt");
  ASSERT_TRUE(SaveRTreeToFile(original, path).ok());
  RTree loaded(1);
  ASSERT_TRUE(LoadRTreeFromFile(path, &loaded).ok());
  EXPECT_EQ(loaded.size(), 100u);
  EXPECT_TRUE(loaded.CheckInvariants().ok());
  auto hits = loaded.RangeSearch(Rect::Make({0.0, 0.0}, {100.0, 100.0}));
  EXPECT_EQ(hits.size(), 100u);
  std::remove(path.c_str());
}

TEST(RTreeIoTest, LoadedTreeSupportsMutation) {
  RTree original(3);
  for (const auto& e : RandomEntries(200, 3, 5)) {
    original.Insert(e.rect, e.record_id);
  }
  const std::string path = TempPath("rtree_mutate.wirt");
  ASSERT_TRUE(SaveRTreeToFile(original, path).ok());
  RTree loaded(1);
  ASSERT_TRUE(LoadRTreeFromFile(path, &loaded).ok());
  for (const auto& e : RandomEntries(200, 3, 6)) {
    loaded.Insert(e.rect, e.record_id + 1000);
  }
  EXPECT_EQ(loaded.size(), 400u);
  EXPECT_TRUE(loaded.CheckInvariants().ok());
  std::remove(path.c_str());
}

TEST(RTreeIoTest, BulkLoadedTreeRoundTrips) {
  const RTree original =
      BulkLoadStr(4, RTreeOptions{}, RandomEntries(3000, 4, 7));
  const std::string path = TempPath("rtree_bulk.wirt");
  ASSERT_TRUE(SaveRTreeToFile(original, path).ok());
  RTree loaded(1);
  ASSERT_TRUE(LoadRTreeFromFile(path, &loaded).ok());
  EXPECT_EQ(loaded.size(), 3000u);
  EXPECT_EQ(loaded.node_count(), original.node_count());
  EXPECT_TRUE(loaded.CheckInvariants().ok());
  std::remove(path.c_str());
}

TEST(RTreeIoTest, SupernodeTreeRoundTrips) {
  RTreeOptions options;
  options.page_size_bytes = 256;
  options.allow_supernodes = true;
  options.supernode_overlap_threshold = 0.1;
  RTree original(2, options);
  Prng prng(21);
  std::vector<RTreeEntry> entries;
  for (int i = 0; i < 1500; ++i) {
    const double x = prng.UniformDouble(0.0, 0.5);
    const double y = prng.UniformDouble(0.0, 0.5);
    entries.push_back(
        RTreeEntry::Leaf(Rect::Make({x, y}, {x + 0.5, y + 0.5}), i));
    original.Insert(entries.back().rect, i);
  }
  ASSERT_GT(original.supernode_count(), 0u);
  const std::string path = TempPath("rtree_supernodes.wirt");
  ASSERT_TRUE(SaveRTreeToFile(original, path).ok());
  RTree loaded(1);
  ASSERT_TRUE(LoadRTreeFromFile(path, &loaded).ok());
  EXPECT_EQ(loaded.supernode_count(), original.supernode_count());
  EXPECT_EQ(loaded.TotalPages(), original.TotalPages());
  EXPECT_TRUE(loaded.CheckInvariants().ok());
  auto a = original.RangeSearch(Rect::Make({0.2, 0.2}, {0.4, 0.4}));
  auto b = loaded.RangeSearch(Rect::Make({0.2, 0.2}, {0.4, 0.4}));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  std::remove(path.c_str());
}

TEST(RTreeIoTest, MissingFileFails) {
  RTree t(1);
  EXPECT_EQ(LoadRTreeFromFile("/nonexistent/x.wirt", &t).code(),
            StatusCode::kIoError);
}

TEST(RTreeIoTest, BadMagicRejected) {
  const std::string path = TempPath("bad_magic.wirt");
  std::ofstream(path) << "JUNKJUNKJUNKJUNKJUNKJUNKJUNKJUNKJUNKJUNK";
  RTree t(1);
  EXPECT_EQ(LoadRTreeFromFile(path, &t).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(RTreeIoTest, TruncatedFileRejected) {
  RTree original(2);
  for (const auto& e : RandomEntries(100, 2, 9)) {
    original.Insert(e.rect, e.record_id);
  }
  const std::string path = TempPath("truncated.wirt");
  ASSERT_TRUE(SaveRTreeToFile(original, path).ok());
  // Truncate to half.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary)
      << data.substr(0, data.size() / 2);
  RTree t(1);
  const Status status = LoadRTreeFromFile(path, &t);
  EXPECT_FALSE(status.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace warpindex
