#include "core/engine.h"

#include <gtest/gtest.h>

#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

Dataset SmallDataset() {
  RandomWalkOptions options;
  options.num_sequences = 40;
  options.min_length = 20;
  options.max_length = 50;
  return GenerateRandomWalkDataset(options);
}

TEST(EngineTest, WiresStoreAndIndexToDataset) {
  const Engine engine(SmallDataset(), EngineOptions{});
  EXPECT_EQ(engine.dataset().size(), 40u);
  EXPECT_EQ(engine.store().num_sequences(), 40u);
  EXPECT_EQ(engine.feature_index().size(), 40u);
  EXPECT_FALSE(engine.has_st_filter());
  EXPECT_EQ(engine.st_filter(), nullptr);
}

TEST(EngineTest, SearchIsTwSimSearch) {
  const Engine engine(SmallDataset(), EngineOptions{});
  const Sequence q = engine.dataset()[0];
  const auto direct = engine.Search(q, 0.1);
  const auto via_kind = engine.SearchWith(MethodKind::kTwSimSearch, q, 0.1);
  EXPECT_EQ(direct.matches, via_kind.matches);
  // Exact copy always matches itself.
  EXPECT_NE(std::find(direct.matches.begin(), direct.matches.end(), 0),
            direct.matches.end());
}

TEST(EngineTest, StFilterOptIn) {
  EngineOptions options;
  options.build_st_filter = true;
  options.st_filter_categories = 20;
  const Engine engine(SmallDataset(), options);
  EXPECT_TRUE(engine.has_st_filter());
  ASSERT_NE(engine.st_filter(), nullptr);
  EXPECT_EQ(engine.st_filter()->categorizer().num_categories(), 20u);
  const auto result =
      engine.SearchWith(MethodKind::kStFilter, engine.dataset()[1], 0.1);
  EXPECT_GE(result.num_candidates, result.matches.size());
}

TEST(EngineTest, ElapsedMillisCombinesCpuAndIo) {
  const Engine engine(SmallDataset(), EngineOptions{});
  SearchCost cost;
  cost.wall_ms = 2.0;
  cost.io.RecordRandomRead(10);  // 10 seeks + 10 transfers
  const double expected_io =
      10 * 9.5 + 10 * engine.disk_model().TransferMillisPerPage();
  EXPECT_NEAR(engine.ElapsedMillis(cost), 2.0 + expected_io, 1e-9);
}

TEST(EngineTest, CustomPageSizePropagates) {
  EngineOptions options;
  options.page_size_bytes = 4096;
  const Engine engine(SmallDataset(), options);
  EXPECT_EQ(engine.store().page_size_bytes(), 4096u);
  EXPECT_EQ(engine.feature_index().rtree().options().page_size_bytes,
            4096u);
  EXPECT_EQ(engine.disk_model().page_size_bytes(), 4096u);
}

TEST(EngineTest, L1SimilarityModelSupported) {
  EngineOptions options;
  options.dtw = DtwOptions::L1();
  const Engine engine(SmallDataset(), options);
  const Sequence q = engine.dataset()[2];
  const auto result = engine.Search(q, 1.0);
  EXPECT_NE(std::find(result.matches.begin(), result.matches.end(), 2),
            result.matches.end());
}

TEST(EngineTest, LbCascadeKeepsAnswersAndSavesDtwCells) {
  EngineOptions plain;
  EngineOptions cascaded;
  cascaded.lb_cascade = true;
  const Engine a(SmallDataset(), plain);
  const Engine b(SmallDataset(), cascaded);
  uint64_t plain_cells = 0;
  uint64_t cascade_cells = 0;
  uint64_t cascade_lb_evals = 0;
  for (int qi = 0; qi < 10; ++qi) {
    const Sequence q = a.dataset()[static_cast<size_t>(qi * 4 % 40)];
    const SearchResult ra = a.Search(q, 0.5);
    const SearchResult rb = b.Search(q, 0.5);
    EXPECT_EQ(ra.matches, rb.matches);
    EXPECT_EQ(ra.num_candidates, rb.num_candidates);
    plain_cells += ra.cost.dtw_cells;
    cascade_cells += rb.cost.dtw_cells;
    cascade_lb_evals += rb.cost.lb_evals;
  }
  EXPECT_LE(cascade_cells, plain_cells);
  EXPECT_GT(cascade_lb_evals, 0u);
}

TEST(EngineTest, SubsequenceIndexOptIn) {
  EngineOptions options;
  options.build_subsequence_index = true;
  options.subsequence_min_window = 8;
  options.subsequence_max_window = 12;
  const Engine engine(SmallDataset(), options);
  ASSERT_TRUE(engine.has_subsequence_index());
  const Sequence q = engine.dataset()[2].Slice(3, 10);
  const auto matches = engine.SearchSubsequences(q, 0.0);
  const SubsequenceMatch expected{2, 3, 10, 0.0};
  EXPECT_NE(std::find(matches.begin(), matches.end(), expected),
            matches.end());
}

TEST(EngineTest, SubsequenceSearchSkipsTombstonedSequences) {
  EngineOptions options;
  options.build_subsequence_index = true;
  options.subsequence_min_window = 8;
  options.subsequence_max_window = 10;
  Engine engine(SmallDataset(), options);
  const Sequence q = engine.dataset()[5].Slice(0, 9);
  ASSERT_FALSE(engine.SearchSubsequences(q, 0.0).empty());
  ASSERT_TRUE(engine.Remove(5));
  for (const SubsequenceMatch& m : engine.SearchSubsequences(q, 0.0)) {
    EXPECT_NE(m.sequence_id, 5);
  }
}

TEST(EngineTest, L2SimilarityModelAgreesWithScan) {
  EngineOptions options;
  options.dtw = DtwOptions::L2();
  const Engine engine(SmallDataset(), options);
  for (int qi = 0; qi < 5; ++qi) {
    const Sequence q = engine.dataset()[static_cast<size_t>(qi * 7)];
    auto indexed = engine.Search(q, 2.0).matches;
    auto scanned = engine.SearchWith(MethodKind::kNaiveScan, q, 2.0).matches;
    std::sort(indexed.begin(), indexed.end());
    std::sort(scanned.begin(), scanned.end());
    EXPECT_EQ(indexed, scanned);
  }
}

TEST(EngineTest, BandedSimilarityModelAgreesWithScan) {
  EngineOptions options;
  options.dtw = DtwOptions::Linf();
  options.dtw.band = 5;  // Sakoe-Chiba radius
  const Engine engine(SmallDataset(), options);
  for (int qi = 0; qi < 5; ++qi) {
    const Sequence q = engine.dataset()[static_cast<size_t>(qi * 3)];
    auto indexed = engine.Search(q, 0.3).matches;
    auto scanned =
        engine.SearchWith(MethodKind::kNaiveScan, q, 0.3).matches;
    std::sort(indexed.begin(), indexed.end());
    std::sort(scanned.begin(), scanned.end());
    EXPECT_EQ(indexed, scanned);
  }
}

TEST(EngineTest, MethodKindNames) {
  EXPECT_STREQ(MethodKindName(MethodKind::kTwSimSearch), "TW-Sim-Search");
  EXPECT_STREQ(MethodKindName(MethodKind::kNaiveScan), "Naive-Scan");
  EXPECT_STREQ(MethodKindName(MethodKind::kLbScan), "LB-Scan");
  EXPECT_STREQ(MethodKindName(MethodKind::kStFilter), "ST-Filter");
}

TEST(EngineTest, IndexBufferPoolReducesRepeatedQueryIo) {
  EngineOptions options;
  options.index_buffer_pages = 256;
  const Engine engine(SmallDataset(), options);
  const Sequence q = engine.dataset()[4];
  const SearchResult cold = engine.Search(q, 0.1);
  const SearchResult warm = engine.Search(q, 0.1);
  EXPECT_EQ(cold.matches, warm.matches);
  // The second identical query hits the pool for every index page.
  EXPECT_LT(warm.cost.io.random_page_reads,
            cold.cost.io.random_page_reads);
  EXPECT_EQ(warm.cost.index_nodes, cold.cost.index_nodes);
}

TEST(EngineTest, BufferPoolDoesNotChangeAnswers) {
  EngineOptions with_pool;
  with_pool.index_buffer_pages = 64;
  const Engine a(SmallDataset(), with_pool);
  const Engine b(SmallDataset(), EngineOptions{});
  for (int qi = 0; qi < 10; ++qi) {
    const Sequence q = a.dataset()[static_cast<size_t>(qi * 3)];
    EXPECT_EQ(a.Search(q, 0.15).matches, b.Search(q, 0.15).matches);
  }
}

TEST(EngineTest, IncrementalIndexBuildOption) {
  EngineOptions options;
  options.bulk_load = false;
  const Engine engine(SmallDataset(), options);
  EXPECT_EQ(engine.feature_index().size(), 40u);
  const auto result = engine.Search(engine.dataset()[5], 0.0);
  EXPECT_NE(std::find(result.matches.begin(), result.matches.end(), 5),
            result.matches.end());
}

}  // namespace
}  // namespace warpindex
