#include "sequence/transforms.h"

#include <gtest/gtest.h>

#include "common/prng.h"
#include "dtw/dtw.h"

namespace warpindex {
namespace {

TEST(TransformsTest, ShiftAddsOffset) {
  const Sequence out = Shift(Sequence({1.0, 2.0}), 10.0);
  EXPECT_EQ(out, Sequence({11.0, 12.0}));
}

TEST(TransformsTest, ScaleMultiplies) {
  const Sequence out = Scale(Sequence({1.0, -2.0}), 3.0);
  EXPECT_EQ(out, Sequence({3.0, -6.0}));
}

TEST(TransformsTest, ZNormalizeHasZeroMeanUnitStd) {
  const Sequence out = ZNormalize(Sequence({2.0, 4.0, 4.0, 4.0, 5.0, 5.0,
                                            7.0, 9.0}));
  EXPECT_NEAR(out.Mean(), 0.0, 1e-12);
  EXPECT_NEAR(out.StdDev(), 1.0, 1e-12);
}

TEST(TransformsTest, ZNormalizeConstantSequence) {
  const Sequence out = ZNormalize(Sequence({5.0, 5.0, 5.0}));
  EXPECT_EQ(out, Sequence({0.0, 0.0, 0.0}));
}

TEST(TransformsTest, ZNormalizeRemovesShiftAndScale) {
  Prng prng(3);
  Sequence s;
  for (int i = 0; i < 50; ++i) {
    s.Append(prng.UniformDouble(-5.0, 5.0));
  }
  const Sequence transformed = Shift(Scale(s, 3.0), -7.0);
  const Sequence a = ZNormalize(s);
  const Sequence b = ZNormalize(transformed);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-9);
  }
}

TEST(TransformsTest, MinMaxNormalizeRangeAndEndpoints) {
  const Sequence out = MinMaxNormalize(Sequence({10.0, 20.0, 15.0}));
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 0.5);
}

TEST(TransformsTest, MinMaxNormalizeConstantSequence) {
  EXPECT_EQ(MinMaxNormalize(Sequence({3.0, 3.0})), Sequence({0.0, 0.0}));
}

TEST(TransformsTest, MovingAverageKnownValues) {
  const Sequence out = MovingAverage(Sequence({1.0, 2.0, 3.0, 4.0}), 2);
  EXPECT_EQ(out, Sequence({1.5, 2.5, 3.5}));
}

TEST(TransformsTest, MovingAverageWindowOneIsIdentity) {
  const Sequence s({1.0, 5.0, 2.0});
  EXPECT_EQ(MovingAverage(s, 1), s);
}

TEST(TransformsTest, MovingAverageFullWindow) {
  const Sequence out = MovingAverage(Sequence({2.0, 4.0, 6.0}), 3);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 4.0);
}

TEST(TransformsTest, MovingAverageSmoothsNoise) {
  Prng prng(4);
  Sequence s;
  for (int i = 0; i < 200; ++i) {
    s.Append(prng.UniformDouble(-1.0, 1.0));
  }
  const Sequence smoothed = MovingAverage(s, 20);
  EXPECT_LT(smoothed.StdDev(), s.StdDev() / 2.0);
}

TEST(TransformsTest, DifferenceKnownValues) {
  const Sequence out = Difference(Sequence({1.0, 4.0, 2.0}));
  EXPECT_EQ(out, Sequence({3.0, -2.0}));
}

TEST(TransformsTest, DifferenceRemovesShift) {
  const Sequence s({1.0, 4.0, 2.0, 8.0});
  EXPECT_EQ(Difference(s), Difference(Shift(s, 100.0)));
}

TEST(TransformsTest, NormalizationPreservesWarpingStructure) {
  // Pipeline check: if S warps to zero distance from Q, the z-normalized
  // pair does too (normalization is element-wise monotone-affine with the
  // same parameters only when the sequences share stats — use a warped
  // copy, which has identical element multiset up to repetition counts...
  // so just verify distances stay small for a shifted/scaled warped copy
  // after normalization).
  const Sequence s({1.0, 2.0, 3.0, 2.0, 1.0});
  const Sequence warped({1.0, 1.0, 2.0, 3.0, 3.0, 2.0, 1.0});
  const Sequence disguised = Shift(Scale(warped, 2.5), -4.0);
  const Dtw dtw(DtwOptions::Linf());
  // Raw distance is large; normalized distance is small.
  EXPECT_GT(dtw.Distance(s, disguised).distance, 1.0);
  // Not exactly zero: warping repeats elements, which shifts the mean/std
  // the normalization divides by. But the disguise is gone.
  EXPECT_LT(dtw.Distance(ZNormalize(s), ZNormalize(disguised)).distance,
            0.3);
}

}  // namespace
}  // namespace warpindex
