// Shard partitioners: deterministic assignments, hash spread, range
// contiguity in feature order, near-equal range shard sizes, and the
// feature MBRs that drive shard pruning.

#include "shard/partitioner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

Dataset WalkDataset(size_t n = 200, uint64_t seed = 42) {
  RandomWalkOptions options;
  options.num_sequences = n;
  options.min_length = 20;
  options.max_length = 40;
  options.seed = seed;
  return GenerateRandomWalkDataset(options);
}

TEST(PartitionerTest, ParseAndNameRoundTrip) {
  PartitionerKind kind = PartitionerKind::kRange;
  EXPECT_TRUE(ParsePartitionerKind("hash", &kind));
  EXPECT_EQ(kind, PartitionerKind::kHash);
  EXPECT_TRUE(ParsePartitionerKind("range", &kind));
  EXPECT_EQ(kind, PartitionerKind::kRange);
  EXPECT_STREQ(PartitionerKindName(PartitionerKind::kHash), "hash");
  EXPECT_STREQ(PartitionerKindName(PartitionerKind::kRange), "range");

  kind = PartitionerKind::kHash;
  EXPECT_FALSE(ParsePartitionerKind("roundrobin", &kind));
  EXPECT_FALSE(ParsePartitionerKind("", &kind));
  EXPECT_EQ(kind, PartitionerKind::kHash);  // untouched on failure
}

TEST(PartitionerTest, MixSequenceIdIsStableAndSpreads) {
  // The mix is pinned (SplitMix64 finalizer), not std::hash: a saved
  // manifest must mean the same partition on every standard library.
  EXPECT_EQ(MixSequenceId(0), MixSequenceId(0));
  EXPECT_NE(MixSequenceId(0), MixSequenceId(1));
  EXPECT_NE(MixSequenceId(1), MixSequenceId(2));
  // Consecutive ids should land in different mod-K classes often enough;
  // check a window of 16 ids hits more than one class for K = 4.
  std::vector<uint64_t> classes;
  for (uint64_t id = 0; id < 16; ++id) {
    classes.push_back(MixSequenceId(id) % 4);
  }
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  EXPECT_GT(classes.size(), 1u);
}

TEST(PartitionerTest, AssignmentsAreDeterministicAndInRange) {
  const Dataset dataset = WalkDataset();
  for (const PartitionerKind kind :
       {PartitionerKind::kHash, PartitionerKind::kRange}) {
    for (const size_t k : {1u, 2u, 4u, 7u}) {
      const ShardAssignment a = AssignShards(dataset, kind, k);
      const ShardAssignment b = AssignShards(dataset, kind, k);
      EXPECT_EQ(a.num_shards, k);
      ASSERT_EQ(a.shard_of.size(), dataset.size());
      EXPECT_EQ(a.shard_of, b.shard_of);
      for (const uint32_t shard : a.shard_of) {
        EXPECT_LT(shard, k);
      }
    }
  }
}

TEST(PartitionerTest, SingleShardAssignsEverythingToShardZero) {
  const Dataset dataset = WalkDataset(30);
  for (const PartitionerKind kind :
       {PartitionerKind::kHash, PartitionerKind::kRange}) {
    const ShardAssignment a = AssignShards(dataset, kind, 1);
    for (const uint32_t shard : a.shard_of) {
      EXPECT_EQ(shard, 0u);
    }
  }
}

TEST(PartitionerTest, HashSpreadsAcrossAllShards) {
  const Dataset dataset = WalkDataset(400);
  const ShardAssignment a =
      AssignShards(dataset, PartitionerKind::kHash, 4);
  std::vector<size_t> sizes(4, 0);
  for (const uint32_t shard : a.shard_of) {
    ++sizes[shard];
  }
  // A uniform mix of 400 ids over 4 shards: every shard populated, and no
  // shard grossly over-full (loose 2x bound, not a statistical test).
  for (const size_t size : sizes) {
    EXPECT_GT(size, 0u);
    EXPECT_LT(size, 200u);
  }
}

TEST(PartitionerTest, RangeShardSizesAreNearEqual) {
  const Dataset dataset = WalkDataset(201);
  for (const size_t k : {2u, 4u, 7u}) {
    const ShardAssignment a =
        AssignShards(dataset, PartitionerKind::kRange, k);
    std::vector<size_t> sizes(k, 0);
    for (const uint32_t shard : a.shard_of) {
      ++sizes[shard];
    }
    const auto [min_it, max_it] =
        std::minmax_element(sizes.begin(), sizes.end());
    EXPECT_LE(*max_it - *min_it, 1u) << "k=" << k;
    EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), size_t{0}),
              dataset.size());
  }
}

TEST(PartitionerTest, RangeShardsAreContiguousInFeatureOrder) {
  const Dataset dataset = WalkDataset(150);
  const ShardAssignment a =
      AssignShards(dataset, PartitionerKind::kRange, 5);

  // Re-derive the partitioner's sort order (lexicographic feature tuple,
  // ties by id) and require the shard labels to be non-decreasing along
  // it: each shard is one contiguous run of the sorted sequences.
  std::vector<size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::vector<std::array<double, kFeatureDims>> points(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    points[i] = ExtractFeature(dataset[i]).AsPoint();
  }
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    if (points[x] != points[y]) return points[x] < points[y];
    return x < y;
  });
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(a.shard_of[order[i]], a.shard_of[order[i - 1]])
        << "shard labels regress at sorted position " << i;
  }
}

TEST(PartitionerTest, BoundsCoverEveryAssignedFeaturePoint) {
  const Dataset dataset = WalkDataset(120);
  for (const PartitionerKind kind :
       {PartitionerKind::kHash, PartitionerKind::kRange}) {
    const ShardAssignment a = AssignShards(dataset, kind, 4);
    const std::vector<ShardFeatureBounds> bounds =
        ComputeShardBounds(dataset, a);
    ASSERT_EQ(bounds.size(), 4u);
    for (size_t i = 0; i < dataset.size(); ++i) {
      const ShardFeatureBounds& b = bounds[a.shard_of[i]];
      ASSERT_TRUE(b.valid);
      const auto p = ExtractFeature(dataset[i]).AsPoint();
      EXPECT_TRUE(
          b.mbr.ContainsPoint(Point::FromArray(p.data(), kFeatureDims)))
          << "sequence " << i << " outside its shard MBR";
      // The containment is exactly what makes MBR shard pruning exact:
      // MinDistLinf to the covering box can never exceed the true
      // feature distance of a covered sequence.
      EXPECT_EQ(b.mbr.MinDistLinf(Point::FromArray(p.data(), kFeatureDims)),
                0.0);
    }
  }
}

TEST(PartitionerTest, EmptyShardsHaveInvalidBounds) {
  // More shards than sequences: somebody must come up empty.
  const Dataset dataset = WalkDataset(3);
  const ShardAssignment a =
      AssignShards(dataset, PartitionerKind::kRange, 7);
  const std::vector<ShardFeatureBounds> bounds =
      ComputeShardBounds(dataset, a);
  size_t valid = 0;
  for (const ShardFeatureBounds& b : bounds) {
    valid += b.valid ? 1 : 0;
  }
  EXPECT_LE(valid, 3u);
  EXPECT_LT(valid, bounds.size());
}

TEST(PartitionerTest, CoverGrowsTheBox) {
  ShardFeatureBounds b;
  EXPECT_FALSE(b.valid);
  b.Cover(FeatureVector{1.0, 2.0, 3.0, 0.5});
  ASSERT_TRUE(b.valid);
  EXPECT_EQ(b.mbr.dims, kFeatureDims);
  b.Cover(FeatureVector{-1.0, 5.0, 2.0, 0.75});
  EXPECT_DOUBLE_EQ(b.mbr.min[0], -1.0);
  EXPECT_DOUBLE_EQ(b.mbr.max[0], 1.0);
  EXPECT_DOUBLE_EQ(b.mbr.min[1], 2.0);
  EXPECT_DOUBLE_EQ(b.mbr.max[1], 5.0);
  EXPECT_DOUBLE_EQ(b.mbr.min[2], 2.0);
  EXPECT_DOUBLE_EQ(b.mbr.max[2], 3.0);
  EXPECT_DOUBLE_EQ(b.mbr.min[3], 0.5);
  EXPECT_DOUBLE_EQ(b.mbr.max[3], 0.75);
}

TEST(PartitionerTest, RangePartitionerSeparatesClusters) {
  // Two far-apart clusters of walks; the range partitioner should put
  // them in shards whose MBRs a cluster-local query can prune against.
  RandomWalkOptions low;
  low.num_sequences = 40;
  low.min_length = 20;
  low.max_length = 30;
  low.start_min = 0.0;
  low.start_max = 1.0;
  low.seed = 7;
  Dataset dataset = GenerateRandomWalkDataset(low);
  RandomWalkOptions high = low;
  high.start_min = 100.0;
  high.start_max = 101.0;
  high.seed = 8;
  const Dataset far_cluster = GenerateRandomWalkDataset(high);
  for (size_t i = 0; i < far_cluster.size(); ++i) {
    dataset.Add(far_cluster[i]);
  }

  const ShardAssignment a =
      AssignShards(dataset, PartitionerKind::kRange, 2);
  const std::vector<ShardFeatureBounds> bounds =
      ComputeShardBounds(dataset, a);
  ASSERT_TRUE(bounds[0].valid);
  ASSERT_TRUE(bounds[1].valid);
  // A query sitting inside the low cluster must be far (L_inf) from one
  // of the two shard MBRs — that's the skip micro_shard measures.
  const auto q = ExtractFeature(dataset[0]).AsPoint();
  const Point qp = Point::FromArray(q.data(), kFeatureDims);
  const double d0 = bounds[0].mbr.MinDistLinf(qp);
  const double d1 = bounds[1].mbr.MinDistLinf(qp);
  EXPECT_GT(std::max(d0, d1), 50.0);
  EXPECT_EQ(std::min(d0, d1), 0.0);
}

}  // namespace
}  // namespace warpindex
