// Randomized end-to-end differential fuzzing: across random engine
// configurations, datasets, queries, and tolerances, the indexed search
// must return exactly the sequential scan's answer set.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/prng.h"
#include "core/engine.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"
#include "sequence/stock_generator.h"

namespace warpindex {
namespace {

std::vector<SequenceId> Sorted(std::vector<SequenceId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(FuzzEndToEndTest, RandomConfigurationsAgreeWithScan) {
  Prng prng(20260705);
  for (int round = 0; round < 12; ++round) {
    // Random engine configuration.
    EngineOptions options;
    const int64_t page_pick = prng.UniformInt(0, 2);
    options.page_size_bytes =
        page_pick == 0 ? 512 : (page_pick == 1 ? 1024 : 4096);
    const int64_t split_pick = prng.UniformInt(0, 2);
    options.split_policy = split_pick == 0   ? SplitPolicy::kLinear
                           : split_pick == 1 ? SplitPolicy::kQuadratic
                                             : SplitPolicy::kRStar;
    options.bulk_load = prng.UniformInt(0, 1) == 1;
    options.lb_cascade = prng.UniformInt(0, 1) == 1;
    options.index_buffer_pages =
        prng.UniformInt(0, 1) == 1 ? 32 : 0;
    options.dtw = prng.UniformInt(0, 1) == 1 ? DtwOptions::Linf()
                                             : DtwOptions::L1();

    // Random dataset.
    Dataset dataset;
    double eps_scale;
    if (prng.UniformInt(0, 1) == 0) {
      RandomWalkOptions rw;
      rw.num_sequences = static_cast<size_t>(prng.UniformInt(20, 120));
      rw.min_length = static_cast<size_t>(prng.UniformInt(5, 40));
      rw.max_length =
          rw.min_length + static_cast<size_t>(prng.UniformInt(0, 40));
      rw.seed = prng.NextUint64();
      dataset = GenerateRandomWalkDataset(rw);
      eps_scale = 0.5;
    } else {
      StockDataOptions stock;
      stock.num_sequences = static_cast<size_t>(prng.UniformInt(20, 80));
      stock.seed = prng.NextUint64();
      dataset = GenerateStockDataset(stock);
      eps_scale = 8.0;
    }
    if (options.dtw.combiner == DtwCombiner::kSum) {
      eps_scale *= 20.0;  // sum-accumulated distances live on a larger scale
    }

    const Engine engine(std::move(dataset), options);
    QueryWorkloadOptions qw;
    qw.num_queries = 4;
    qw.seed = prng.NextUint64();
    const auto queries = GenerateQueryWorkload(engine.dataset(), qw);
    for (const Sequence& q : queries) {
      const double eps = prng.UniformDouble(0.0, eps_scale);
      const auto indexed = Sorted(engine.Search(q, eps).matches);
      const auto scanned = Sorted(
          engine.SearchWith(MethodKind::kNaiveScan, q, eps).matches);
      ASSERT_EQ(indexed, scanned)
          << "round=" << round << " eps=" << eps
          << " page=" << options.page_size_bytes
          << " bulk=" << options.bulk_load
          << " cascade=" << options.lb_cascade;
    }
  }
}

TEST(FuzzEndToEndTest, ChurnThenQueryAgainstScan) {
  Prng prng(99887766);
  RandomWalkOptions rw;
  rw.num_sequences = 60;
  rw.min_length = 20;
  rw.max_length = 50;
  Engine engine(GenerateRandomWalkDataset(rw), EngineOptions{});
  for (int step = 0; step < 200; ++step) {
    const int64_t op = prng.UniformInt(0, 9);
    if (op < 4) {
      Sequence s;
      const int64_t len = prng.UniformInt(5, 40);
      double v = prng.UniformDouble(1.0, 10.0);
      for (int64_t i = 0; i < len; ++i) {
        s.Append(v);
        v += prng.UniformDouble(-0.1, 0.1);
      }
      engine.Insert(std::move(s));
    } else if (op < 6) {
      const auto id = static_cast<SequenceId>(prng.UniformInt(
          0, static_cast<int64_t>(engine.dataset().size()) - 1));
      engine.Remove(id);  // may be already dead; both outcomes fine
    } else {
      const size_t pick = static_cast<size_t>(prng.UniformInt(
          0, static_cast<int64_t>(engine.dataset().size()) - 1));
      const Sequence q =
          PerturbSequence(engine.dataset()[pick], prng.NextUint64());
      const double eps = prng.UniformDouble(0.0, 0.6);
      const auto indexed = Sorted(engine.Search(q, eps).matches);
      const auto scanned = Sorted(
          engine.SearchWith(MethodKind::kNaiveScan, q, eps).matches);
      ASSERT_EQ(indexed, scanned) << "step=" << step;
    }
  }
  EXPECT_TRUE(engine.feature_index().rtree().CheckInvariants().ok());
}

}  // namespace
}  // namespace warpindex
