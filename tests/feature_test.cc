#include "sequence/feature.h"

#include <gtest/gtest.h>

#include "common/prng.h"

namespace warpindex {
namespace {

TEST(FeatureTest, ExtractsFourTuple) {
  const Sequence s({3.0, 7.0, -1.0, 4.0});
  const FeatureVector f = ExtractFeature(s);
  EXPECT_EQ(f.first, 3.0);
  EXPECT_EQ(f.last, 4.0);
  EXPECT_EQ(f.greatest, 7.0);
  EXPECT_EQ(f.smallest, -1.0);
}

TEST(FeatureTest, SingleElementSequence) {
  const FeatureVector f = ExtractFeature(Sequence({5.0}));
  EXPECT_EQ(f.first, 5.0);
  EXPECT_EQ(f.last, 5.0);
  EXPECT_EQ(f.greatest, 5.0);
  EXPECT_EQ(f.smallest, 5.0);
}

TEST(FeatureTest, AsPointOrderMatchesIndexLayout) {
  FeatureVector f;
  f.first = 1.0;
  f.last = 2.0;
  f.greatest = 3.0;
  f.smallest = 0.5;
  const auto p = f.AsPoint();
  EXPECT_EQ(p[0], 1.0);
  EXPECT_EQ(p[1], 2.0);
  EXPECT_EQ(p[2], 3.0);
  EXPECT_EQ(p[3], 0.5);
}

// Applies a random time warping: each element is replicated 1..3 times.
// Paper §4.2: the feature vector must be invariant to this.
Sequence RandomWarp(const Sequence& s, Prng* prng) {
  Sequence warped;
  for (double v : s.elements()) {
    const int64_t copies = prng->UniformInt(1, 3);
    for (int64_t c = 0; c < copies; ++c) {
      warped.Append(v);
    }
  }
  return warped;
}

TEST(FeatureTest, InvariantUnderTimeWarping) {
  Prng prng(99);
  for (int trial = 0; trial < 50; ++trial) {
    Sequence s;
    const int64_t len = prng.UniformInt(1, 30);
    for (int64_t i = 0; i < len; ++i) {
      s.Append(prng.UniformDouble(-10.0, 10.0));
    }
    const Sequence warped = RandomWarp(s, &prng);
    EXPECT_EQ(ExtractFeature(s), ExtractFeature(warped));
  }
}

TEST(FeatureTest, LowerBoundDistanceIsLinfOnTuples) {
  FeatureVector a{1.0, 2.0, 3.0, 0.0};
  FeatureVector b{1.5, 2.0, 5.5, -1.0};
  // |1-1.5|=0.5, |2-2|=0, |3-5.5|=2.5, |0-(-1)|=1 -> max = 2.5
  EXPECT_DOUBLE_EQ(DtwLowerBoundDistance(a, b), 2.5);
  EXPECT_DOUBLE_EQ(DtwLowerBoundDistance(b, a), 2.5);  // symmetric
  EXPECT_DOUBLE_EQ(DtwLowerBoundDistance(a, a), 0.0);  // identity
}

TEST(FeatureTest, WithinToleranceMatchesDistance) {
  FeatureVector a{0.0, 0.0, 1.0, -1.0};
  FeatureVector b{0.2, -0.2, 1.1, -0.9};
  const double d = DtwLowerBoundDistance(a, b);
  EXPECT_TRUE(WithinLowerBoundTolerance(a, b, d));
  EXPECT_TRUE(WithinLowerBoundTolerance(a, b, d + 0.01));
  EXPECT_FALSE(WithinLowerBoundTolerance(a, b, d - 0.01));
}

TEST(FeatureTest, ToStringMentionsAllFields) {
  const std::string s = ExtractFeature(Sequence({1.0, 2.0})).ToString();
  EXPECT_NE(s.find("first"), std::string::npos);
  EXPECT_NE(s.find("last"), std::string::npos);
  EXPECT_NE(s.find("greatest"), std::string::npos);
  EXPECT_NE(s.find("smallest"), std::string::npos);
}

}  // namespace
}  // namespace warpindex
