// X-tree-style supernodes: overlap-heavy directory splits are replaced by
// multi-page supernodes; queries stay correct and invariants hold.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/prng.h"
#include "rtree/rtree.h"

namespace warpindex {
namespace {

// Wide, heavily overlapping rectangles — the workload where every
// directory split is bad and the X-tree keeps supernodes instead.
std::vector<RTreeEntry> OverlappingRects(size_t n, uint64_t seed) {
  Prng prng(seed);
  std::vector<RTreeEntry> entries;
  for (size_t i = 0; i < n; ++i) {
    const double x = prng.UniformDouble(0.0, 0.5);
    const double y = prng.UniformDouble(0.0, 0.5);
    entries.push_back(RTreeEntry::Leaf(
        Rect::Make({x, y}, {x + 0.5, y + 0.5}), static_cast<int64_t>(i)));
  }
  return entries;
}

TEST(RTreeSupernodeTest, OverlapHeavyWorkloadCreatesSupernodes) {
  RTreeOptions options;
  options.page_size_bytes = 256;
  options.allow_supernodes = true;
  options.supernode_overlap_threshold = 0.1;
  RTree tree(2, options);
  for (const auto& e : OverlappingRects(2000, 1)) {
    tree.Insert(e.rect, e.record_id);
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_GT(tree.supernode_count(), 0u);
  // Supernodes span multiple pages.
  EXPECT_GT(tree.TotalPages(), tree.node_count());
}

TEST(RTreeSupernodeTest, DisabledByDefault) {
  RTreeOptions options;
  options.page_size_bytes = 256;
  RTree tree(2, options);
  for (const auto& e : OverlappingRects(1000, 2)) {
    tree.Insert(e.rect, e.record_id);
  }
  EXPECT_EQ(tree.supernode_count(), 0u);
  EXPECT_EQ(tree.TotalPages(), tree.node_count());
}

TEST(RTreeSupernodeTest, QueriesMatchPlainTree) {
  RTreeOptions plain;
  plain.page_size_bytes = 256;
  RTreeOptions super = plain;
  super.allow_supernodes = true;
  super.supernode_overlap_threshold = 0.1;

  RTree a(2, plain);
  RTree b(2, super);
  const auto entries = OverlappingRects(1500, 3);
  for (const auto& e : entries) {
    a.Insert(e.rect, e.record_id);
    b.Insert(e.rect, e.record_id);
  }
  ASSERT_TRUE(b.CheckInvariants().ok());

  Prng prng(4);
  for (int trial = 0; trial < 25; ++trial) {
    Point c;
    c.dims = 2;
    c[0] = prng.UniformDouble(0.0, 1.0);
    c[1] = prng.UniformDouble(0.0, 1.0);
    const Rect query = Rect::SquareAround(c, prng.UniformDouble(0.01, 0.2));
    auto ra = a.RangeSearch(query);
    auto rb = b.RangeSearch(query);
    std::sort(ra.begin(), ra.end());
    std::sort(rb.begin(), rb.end());
    ASSERT_EQ(ra, rb);
  }
}

TEST(RTreeSupernodeTest, DeletionsShrinkSupernodesBack) {
  RTreeOptions options;
  options.page_size_bytes = 256;
  options.allow_supernodes = true;
  options.supernode_overlap_threshold = 0.1;
  RTree tree(2, options);
  const auto entries = OverlappingRects(2000, 5);
  for (const auto& e : entries) {
    tree.Insert(e.rect, e.record_id);
  }
  ASSERT_GT(tree.supernode_count(), 0u);
  for (size_t i = 0; i < 1900; ++i) {
    ASSERT_TRUE(tree.Delete(entries[i].rect, entries[i].record_id));
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), 100u);
  auto hits = tree.RangeSearch(Rect::Make({0.0, 0.0}, {1.0, 1.0}));
  EXPECT_EQ(hits.size(), 100u);
}

TEST(RTreeSupernodeTest, StatsChargeSupernodePages) {
  RTreeOptions options;
  options.page_size_bytes = 256;
  options.allow_supernodes = true;
  options.supernode_overlap_threshold = 0.05;
  RTree tree(2, options);
  for (const auto& e : OverlappingRects(2000, 6)) {
    tree.Insert(e.rect, e.record_id);
  }
  ASSERT_GT(tree.supernode_count(), 0u);
  RTreeQueryStats stats;
  tree.RangeSearch(Rect::Make({0.0, 0.0}, {1.0, 1.0}), &stats);
  // A full sweep touches every page, and supernodes make pages > nodes.
  EXPECT_EQ(stats.nodes_accessed, tree.TotalPages());
}

}  // namespace
}  // namespace warpindex
