// ST-Filter subsequence matching (the setting Park et al. designed it
// for): candidates must cover every true window match, and the filter
// must prune meaningfully.

#include <gtest/gtest.h>

#include <algorithm>

#include "dtw/dtw.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"
#include "suffixtree/st_filter.h"

namespace warpindex {
namespace {

Dataset WalkDataset(size_t n = 12, size_t len = 80) {
  RandomWalkOptions options;
  options.num_sequences = n;
  options.min_length = len;
  options.max_length = len;
  return GenerateRandomWalkDataset(options);
}

using Candidate = StFilter::SubsequenceCandidate;

std::vector<Candidate> BruteForceMatches(const Dataset& d, const Sequence& q,
                                         double epsilon, size_t min_len,
                                         size_t max_len) {
  const Dtw dtw(DtwOptions::Linf());
  std::vector<Candidate> out;
  for (size_t i = 0; i < d.size(); ++i) {
    const Sequence& s = d[i];
    for (size_t w = min_len; w <= max_len; ++w) {
      for (size_t off = 0; off + w <= s.size(); ++off) {
        if (dtw.Distance(s.Slice(off, w), q).distance <= epsilon) {
          out.push_back({static_cast<SequenceId>(i), off, w});
        }
      }
    }
  }
  return out;
}

TEST(StFilterSubsequenceTest, CandidatesCoverAllTrueMatches) {
  const Dataset d = WalkDataset();
  StFilterOptions options;
  options.num_categories = 30;
  const StFilter filter(d, options);
  for (const double epsilon : {0.05, 0.1, 0.2}) {
    for (int qi = 0; qi < 5; ++qi) {
      const Sequence q = PerturbSequence(
          d[static_cast<size_t>(qi * 2)].Slice(
              static_cast<size_t>(5 + qi * 7), 12),
          static_cast<uint64_t>(qi));
      auto candidates =
          filter.FindSubsequenceCandidates(q, epsilon, 10, 14);
      const auto sort_key = [](const Candidate& a, const Candidate& b) {
        return std::tie(a.sequence_id, a.offset, a.length) <
               std::tie(b.sequence_id, b.offset, b.length);
      };
      std::sort(candidates.begin(), candidates.end(), sort_key);
      for (const Candidate& truth :
           BruteForceMatches(d, q, epsilon, 10, 14)) {
        EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(),
                                       truth, sort_key))
            << "missing (" << truth.sequence_id << ", " << truth.offset
            << ", " << truth.length << ") at eps=" << epsilon;
      }
    }
  }
}

TEST(StFilterSubsequenceTest, ExactWindowAlwaysACandidate) {
  const Dataset d = WalkDataset(8, 60);
  StFilterOptions options;
  options.num_categories = 50;
  const StFilter filter(d, options);
  const Sequence q = d[3].Slice(20, 15);
  const auto candidates = filter.FindSubsequenceCandidates(q, 0.0, 15, 15);
  EXPECT_NE(std::find(candidates.begin(), candidates.end(),
                      Candidate{3, 20, 15}),
            candidates.end());
}

TEST(StFilterSubsequenceTest, CandidateLengthsRespectBounds) {
  const Dataset d = WalkDataset(6, 50);
  const StFilter filter(d, StFilterOptions{.num_categories = 20});
  const Sequence q = d[0].Slice(10, 12);
  const auto candidates = filter.FindSubsequenceCandidates(q, 0.3, 9, 13);
  EXPECT_FALSE(candidates.empty());
  for (const Candidate& c : candidates) {
    EXPECT_GE(c.length, 9u);
    EXPECT_LE(c.length, 13u);
    EXPECT_LE(c.offset + c.length,
              d[static_cast<size_t>(c.sequence_id)].size());
  }
}

TEST(StFilterSubsequenceTest, NoDuplicateCandidates) {
  const Dataset d = WalkDataset(6, 50);
  const StFilter filter(d, StFilterOptions{.num_categories = 20});
  const Sequence q = PerturbSequence(d[1].Slice(5, 10), 3);
  auto candidates = filter.FindSubsequenceCandidates(q, 0.2, 8, 12);
  const auto key = [](const Candidate& a, const Candidate& b) {
    return std::tie(a.sequence_id, a.offset, a.length) <
           std::tie(b.sequence_id, b.offset, b.length);
  };
  std::sort(candidates.begin(), candidates.end(), key);
  EXPECT_EQ(std::adjacent_find(candidates.begin(), candidates.end()),
            candidates.end());
}

TEST(StFilterSubsequenceTest, FarQueryYieldsNoCandidates) {
  const Dataset d = WalkDataset(10, 60);
  const StFilter filter(d, StFilterOptions{.num_categories = 100});
  const Sequence q(std::vector<double>(10, 500.0));
  EXPECT_TRUE(filter.FindSubsequenceCandidates(q, 0.1, 8, 12).empty());
}

TEST(StFilterSubsequenceTest, PruningBeatsExhaustiveEnumeration) {
  // The candidate set at a small tolerance must be far smaller than the
  // number of windows in the length class.
  const Dataset d = WalkDataset(15, 100);
  const StFilter filter(d, StFilterOptions{.num_categories = 100});
  const Sequence q = PerturbSequence(d[7].Slice(40, 20), 5);
  const auto candidates = filter.FindSubsequenceCandidates(q, 0.05, 18, 22);
  const size_t total_windows = 15 * ((100 - 18 + 1) + (100 - 19 + 1) +
                                     (100 - 20 + 1) + (100 - 21 + 1) +
                                     (100 - 22 + 1));
  EXPECT_LT(candidates.size(), total_windows / 4);
}

TEST(StFilterSubsequenceTest, StatsPopulated) {
  const Dataset d = WalkDataset(6, 40);
  const StFilter filter(d, StFilterOptions{.num_categories = 20});
  StFilterQueryStats stats;
  filter.FindSubsequenceCandidates(d[0].Slice(0, 10), 0.1, 8, 12, &stats);
  EXPECT_GT(stats.nodes_visited, 0u);
  EXPECT_GT(stats.dp_cells, 0u);
  EXPECT_GT(stats.pages_accessed, 0u);
}

}  // namespace
}  // namespace warpindex
