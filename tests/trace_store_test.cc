// TraceStore: tail-based keep rules (slow / error / shard-skew /
// probabilistic), ring eviction, id lookup, head gating, and the
// concurrent writers-vs-snapshot discipline (run under TSan in CI).

#include "obs/trace_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace warpindex {
namespace {

// A finished trace whose "shard" root spans have the given durations —
// fabricated through AppendSpan, so no clocks and no sleeps.
Trace MakeShardedTrace(const std::vector<double>& shard_ms) {
  Trace trace;
  TraceSpan root;
  root.name = "query";
  root.duration_ms = 1.0;
  trace.AppendSpan(root);
  for (size_t s = 0; s < shard_ms.size(); ++s) {
    TraceSpan shard;
    shard.name = "shard";
    shard.parent = 0;
    shard.duration_ms = shard_ms[s];
    shard.shard = static_cast<int32_t>(s);
    trace.AppendSpan(shard);
  }
  return trace;
}

CompletedTrace MakeCompleted(double wall_ms, bool errored = false,
                             std::vector<double> shard_ms = {}) {
  CompletedTrace trace;
  trace.method = "tw_sim_search";
  trace.epsilon = 1.0;
  trace.query_length = 100;
  trace.wall_ms = wall_ms;
  trace.errored = errored;
  trace.trace = MakeShardedTrace(shard_ms);
  return trace;
}

TraceStoreOptions NoCoinOptions() {
  TraceStoreOptions options;
  options.slow_ms = 10.0;
  options.sample_probability = 0.0;  // isolate the deterministic rules
  options.skew_ratio = 4.0;
  return options;
}

TEST(TraceStoreTest, KeepNameCoversEveryReason) {
  EXPECT_STREQ(TraceKeepName(TraceKeep::kNone), "none");
  EXPECT_STREQ(TraceKeepName(TraceKeep::kSlow), "slow");
  EXPECT_STREQ(TraceKeepName(TraceKeep::kError), "error");
  EXPECT_STREQ(TraceKeepName(TraceKeep::kShardSkew), "shard_skew");
  EXPECT_STREQ(TraceKeepName(TraceKeep::kSampled), "sampled");
}

TEST(TraceStoreTest, SlowTracesAreAlwaysKept) {
  TraceStore store(NoCoinOptions());
  EXPECT_EQ(store.Offer(MakeCompleted(10.0)), TraceKeep::kSlow);
  EXPECT_EQ(store.Offer(MakeCompleted(9.99)), TraceKeep::kNone);
  EXPECT_EQ(store.offered(), 2u);
  EXPECT_EQ(store.kept(), 1u);
  EXPECT_EQ(store.kept_slow(), 1u);
}

TEST(TraceStoreTest, ErroredTracesAreKept) {
  TraceStore store(NoCoinOptions());
  EXPECT_EQ(store.Offer(MakeCompleted(0.1, /*errored=*/true)),
            TraceKeep::kError);
  EXPECT_EQ(store.kept_error(), 1u);
  // Slow takes precedence over errored in the reported reason.
  EXPECT_EQ(store.Offer(MakeCompleted(50.0, /*errored=*/true)),
            TraceKeep::kSlow);
}

TEST(TraceStoreTest, ShardSkewOutliersAreKept) {
  TraceStore store(NoCoinOptions());
  // Balanced shards: max/mean = 1 — dropped.
  EXPECT_EQ(store.Offer(MakeCompleted(1.0, false, {1.0, 1.0, 1.0, 1.0})),
            TraceKeep::kNone);
  // One straggler: max 8, mean 2 — ratio 4 trips the rule.
  EXPECT_EQ(store.Offer(MakeCompleted(1.0, false, {8.0, 0.0, 0.0, 0.0})),
            TraceKeep::kShardSkew);
  EXPECT_EQ(store.kept_skew(), 1u);
}

TEST(TraceStoreTest, ShardSkewRatioMath) {
  EXPECT_EQ(TraceStore::ShardSkewRatio(MakeShardedTrace({})), 0.0);
  EXPECT_EQ(TraceStore::ShardSkewRatio(MakeShardedTrace({5.0})), 0.0);
  EXPECT_EQ(TraceStore::ShardSkewRatio(MakeShardedTrace({0.0, 0.0})), 0.0);
  EXPECT_DOUBLE_EQ(
      TraceStore::ShardSkewRatio(MakeShardedTrace({2.0, 2.0})), 1.0);
  EXPECT_DOUBLE_EQ(
      TraceStore::ShardSkewRatio(MakeShardedTrace({6.0, 2.0, 1.0})), 2.0);
}

TEST(TraceStoreTest, CoinAtProbabilityOneKeepsEverything) {
  TraceStoreOptions options = NoCoinOptions();
  options.sample_probability = 1.0;
  TraceStore store(options);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(store.Offer(MakeCompleted(0.1)), TraceKeep::kSampled);
  }
  EXPECT_EQ(store.kept_sampled(), 10u);
}

TEST(TraceStoreTest, CoinIsDeterministicPerSeed) {
  TraceStoreOptions options = NoCoinOptions();
  options.sample_probability = 0.3;
  options.seed = 7;
  TraceStore a(options);
  TraceStore b(options);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.Offer(MakeCompleted(0.1)), b.Offer(MakeCompleted(0.1)));
  }
  EXPECT_EQ(a.kept_sampled(), b.kept_sampled());
  // ~30% keep rate, loosely bounded (deterministic, so no flake).
  EXPECT_GT(a.kept_sampled(), 5u);
  EXPECT_LT(a.kept_sampled(), 40u);
}

TEST(TraceStoreTest, RingEvictsOldestKeptTraces) {
  TraceStoreOptions options = NoCoinOptions();
  options.capacity = 4;
  TraceStore store(options);
  for (int i = 0; i < 10; ++i) {
    store.Offer(MakeCompleted(100.0 + i));
  }
  const std::vector<CompletedTrace> kept = store.Snapshot();
  ASSERT_EQ(kept.size(), 4u);
  // Oldest-first snapshot of the newest four admissions (seq 7..10).
  for (size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].seq, 7 + i);
    EXPECT_DOUBLE_EQ(kept[i].wall_ms, 100.0 + 6 + static_cast<double>(i));
    EXPECT_EQ(kept[i].keep, TraceKeep::kSlow);
  }
  EXPECT_EQ(store.kept(), 10u);  // counter keeps counting past eviction
}

TEST(TraceStoreTest, DroppedTracesNeverReachTheRing) {
  TraceStore store(NoCoinOptions());
  for (int i = 0; i < 8; ++i) {
    store.Offer(MakeCompleted(0.5));
  }
  EXPECT_TRUE(store.Snapshot().empty());
  EXPECT_EQ(store.offered(), 8u);
  EXPECT_EQ(store.kept(), 0u);
}

TEST(TraceStoreTest, FindByTraceId) {
  TraceStore store(NoCoinOptions());
  CompletedTrace slow = MakeCompleted(42.0);
  const uint64_t id = slow.trace.trace_id();
  store.Offer(std::move(slow));
  store.Offer(MakeCompleted(43.0));

  CompletedTrace found;
  ASSERT_TRUE(store.Find(id, &found));
  EXPECT_EQ(found.trace.trace_id(), id);
  EXPECT_DOUBLE_EQ(found.wall_ms, 42.0);
  EXPECT_FALSE(store.Find(id ^ 0x5555, &found));
  EXPECT_FALSE(store.Find(0, &found));
}

TEST(TraceStoreTest, ShouldTraceHonorsHeadGate) {
  TraceStoreOptions options;
  options.head_sample_every = 1;
  TraceStore every(options);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(every.ShouldTrace());
  }
  options.head_sample_every = 4;
  TraceStore fourth(options);
  int traced = 0;
  for (int i = 0; i < 16; ++i) {
    traced += fourth.ShouldTrace() ? 1 : 0;
  }
  EXPECT_EQ(traced, 4);
}

TEST(TraceStoreTest, CapacityIsClampedToAtLeastOne) {
  TraceStoreOptions options = NoCoinOptions();
  options.capacity = 0;
  TraceStore store(options);
  EXPECT_EQ(store.capacity(), 1u);
  store.Offer(MakeCompleted(99.0));
  EXPECT_EQ(store.Snapshot().size(), 1u);
}

// The TSan acceptance test: many writer threads offering keepers while a
// reader snapshots and looks traces up — the /tracez scrape racing live
// serving. Run with -fsanitize=thread in CI (sanitizer matrix).
TEST(TraceStoreConcurrencyTest, WritersRaceSnapshotsCleanly) {
  TraceStoreOptions options = NoCoinOptions();
  options.capacity = 32;
  options.num_stripes = 4;
  TraceStore store(options);

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 200;
  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    CompletedTrace found;
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<CompletedTrace> kept = store.Snapshot();
      // Snapshot invariants under race: occupied slots only, seqs
      // strictly increasing (sorted, unique).
      for (size_t i = 0; i < kept.size(); ++i) {
        EXPECT_NE(kept[i].seq, 0u);
        if (i > 0) {
          EXPECT_LT(kept[i - 1].seq, kept[i].seq);
        }
      }
      if (!kept.empty()) {
        store.Find(kept.back().trace.trace_id(), &found);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, w]() {
      for (int i = 0; i < kPerWriter; ++i) {
        // Mix keeps and drops: even offers are slow, odd ones dropped.
        const double wall = i % 2 == 0 ? 50.0 + w : 0.1;
        store.Offer(MakeCompleted(wall, /*errored=*/false, {1.0, 1.0}));
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(store.offered(),
            static_cast<uint64_t>(kWriters * kPerWriter));
  EXPECT_EQ(store.kept(),
            static_cast<uint64_t>(kWriters * kPerWriter / 2));
  const std::vector<CompletedTrace> kept = store.Snapshot();
  EXPECT_EQ(kept.size(), store.capacity());
  std::set<uint64_t> seqs;
  for (const CompletedTrace& trace : kept) {
    EXPECT_EQ(trace.keep, TraceKeep::kSlow);
    seqs.insert(trace.seq);
  }
  EXPECT_EQ(seqs.size(), kept.size());
}

}  // namespace
}  // namespace warpindex
