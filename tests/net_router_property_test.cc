// The serving-plane acceptance property: a Router scatter-gathering
// over real shard-server processes (in-process here: same classes the
// `warpindex_cli shard-serve` / `route` processes run) answers BIT-
// identically to the in-process ShardedEngine over the same saved
// database — for every shard count, both partitioners, every search
// method, and kNN at every wave size. Robustness riders: a killed
// replica, a draining replica, and a stalled replica (forcing a hedged
// backup request) must not change a single bit of any answer.

#include "net/router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "net/shard_server.h"
#include "net/socket.h"
#include "obs/flight_recorder.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"
#include "shard/sharded_engine.h"

namespace warpindex {
namespace {

Dataset WalkDataset(uint64_t seed) {
  RandomWalkOptions options;
  options.num_sequences = 70;
  options.min_length = 20;
  options.max_length = 44;
  options.seed = seed;
  return GenerateRandomWalkDataset(options);
}

const MethodKind kAllMethods[] = {
    MethodKind::kTwSimSearch, MethodKind::kNaiveScan, MethodKind::kLbScan,
    MethodKind::kStFilter, MethodKind::kTwSimSearchCascade};

// One saved database plus the shard-server fleet and router over it.
// `group_shards[g]` lists the manifest shards group g serves;
// `replicas` servers are started per group (same subset).
class Cluster {
 public:
  Status Build(const std::string& dir, uint64_t seed, size_t num_shards,
               PartitionerKind partitioner,
               std::vector<std::vector<uint32_t>> group_shards,
               int replicas, RouterOptions router_options) {
    dir_ = dir;
    std::filesystem::remove_all(dir_);
    ShardedEngineOptions options;
    options.num_shards = num_shards;
    options.partitioner = partitioner;
    // kStFilter is part of the method sweep; both sides need the index.
    options.engine.build_st_filter = true;
    {
      const ShardedEngine built(WalkDataset(seed), options);
      WARPINDEX_RETURN_IF_ERROR(built.Save(dir_));
    }
    WARPINDEX_RETURN_IF_ERROR(
        ShardedEngine::Open(dir_, options, &expected_));

    router_options.groups.clear();
    for (size_t g = 0; g < group_shards.size(); ++g) {
      std::vector<RouterEndpoint> endpoints;
      for (int r = 0; r < replicas; ++r) {
        ShardServerOptions server_options;
        server_options.db_dir = dir_;
        server_options.serve_shards = group_shards[g];
        server_options.group = static_cast<int>(g);
        server_options.replica = r;
        server_options.engine.build_st_filter = true;
        server_options.server.io_timeout_ms = 50;
        std::unique_ptr<ShardServer> server;
        WARPINDEX_RETURN_IF_ERROR(
            ShardServer::Create(std::move(server_options), &server));
        WARPINDEX_RETURN_IF_ERROR(server->Start());
        endpoints.push_back(RouterEndpoint{"127.0.0.1", server->port()});
        servers_.push_back(std::move(server));
      }
      router_options.groups.push_back(std::move(endpoints));
    }
    return Router::Create(std::move(router_options), &router_);
  }

  ~Cluster() {
    router_.reset();  // drop pooled connections before the servers
    for (auto& server : servers_) {
      if (server != nullptr) server->Stop();
    }
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  const ShardedEngine& expected() const { return *expected_; }
  Router& router() { return *router_; }
  // Server index: group * replicas + replica (Build's start order).
  ShardServer& server(size_t index) { return *servers_[index]; }

 private:
  std::string dir_;
  std::unique_ptr<ShardedEngine> expected_;
  std::vector<std::unique_ptr<ShardServer>> servers_;
  std::unique_ptr<Router> router_;
};

// Hedging off for the determinism-sensitive property runs; the hedge
// path has its own test below (exactness holds either way, but the
// property loop should not depend on timing).
RouterOptions QuietOptions() {
  RouterOptions options;
  options.enable_hedging = false;
  options.connect_timeout_ms = 2000;
  options.call_timeout_ms = 20000;
  return options;
}

std::vector<std::vector<uint32_t>> OneShardPerGroup(size_t num_shards) {
  std::vector<std::vector<uint32_t>> groups;
  for (uint32_t shard = 0; shard < num_shards; ++shard) {
    groups.push_back({shard});
  }
  return groups;
}

void ExpectRangeBitIdentical(const ShardedEngine& expected, Router& router,
                             const std::vector<Sequence>& queries,
                             const std::string& label) {
  for (const Sequence& query : queries) {
    for (const double epsilon : {0.1, 0.35}) {
      for (const MethodKind kind : kAllMethods) {
        const SearchResult want =
            expected.SearchWith(kind, query, epsilon);
        SearchResult got;
        const Status status =
            router.RouteRange(kind, query, epsilon, nullptr, &got);
        ASSERT_TRUE(status.ok())
            << label << " method=" << MethodKindName(kind) << ": "
            << status.ToString();
        EXPECT_EQ(got.matches, want.matches)
            << label << " method=" << MethodKindName(kind)
            << " eps=" << epsilon;
        EXPECT_EQ(got.num_candidates, want.num_candidates)
            << label << " method=" << MethodKindName(kind)
            << " eps=" << epsilon;
        // Work counters are sums over the same per-shard engines, so
        // they survive the extra merge level unchanged.
        EXPECT_EQ(got.cost.dtw_evals, want.cost.dtw_evals) << label;
        EXPECT_EQ(got.cost.lb_evals, want.cost.lb_evals) << label;
      }
    }
  }
}

void ExpectKnnBitIdentical(const ShardedEngine& expected, Router& router,
                           const std::vector<Sequence>& queries,
                           const std::string& label) {
  for (const Sequence& query : queries) {
    for (const size_t k : {1u, 2u, 5u}) {
      const KnnResult want = expected.SearchKnn(query, k);
      KnnResult got;
      const Status status = router.RouteKnn(query, k, nullptr, &got);
      ASSERT_TRUE(status.ok()) << label << ": " << status.ToString();
      ASSERT_EQ(got.neighbors.size(), want.neighbors.size())
          << label << " k=" << k;
      for (size_t i = 0; i < got.neighbors.size(); ++i) {
        EXPECT_EQ(got.neighbors[i].id, want.neighbors[i].id)
            << label << " k=" << k << " i=" << i;
        EXPECT_EQ(got.neighbors[i].distance, want.neighbors[i].distance)
            << label << " k=" << k << " i=" << i
            << " (distances must cross the wire bit-identically)";
      }
    }
  }
}

class RouterPropertyTest
    : public ::testing::TestWithParam<PartitionerKind> {
 protected:
  std::string TempName(const std::string& tag) const {
    return testing::TempDir() + "/router_prop_" + tag + "_" +
           PartitionerKindName(GetParam());
  }
};

TEST_P(RouterPropertyTest, EveryMethodMatchesShardedEngineForEveryK) {
  for (const size_t num_shards : {1u, 2u, 4u}) {
    Cluster cluster;
    ASSERT_TRUE(cluster
                    .Build(TempName("k" + std::to_string(num_shards)),
                           /*seed=*/29 + num_shards, num_shards,
                           GetParam(), OneShardPerGroup(num_shards),
                           /*replicas=*/1, QuietOptions())
                    .ok());
    const auto queries = GenerateQueryWorkload(
        cluster.expected().shard(0).dataset(),
        QueryWorkloadOptions{.num_queries = 4, .seed = 31});
    ExpectRangeBitIdentical(cluster.expected(), cluster.router(), queries,
                            "K=" + std::to_string(num_shards));
    ExpectKnnBitIdentical(cluster.expected(), cluster.router(), queries,
                          "K=" + std::to_string(num_shards));

    const Router::Stats stats = cluster.router().stats();
    EXPECT_EQ(stats.num_shards, num_shards);
    EXPECT_GT(stats.queries, 0u);
    EXPECT_EQ(stats.failed_subrequests, 0u);
  }
}

TEST_P(RouterPropertyTest, MultiShardGroupsMergeIdentically) {
  // K=4 shards packed into 2 groups: the per-group pre-merge on the
  // shard server must not change the final merged answer.
  Cluster cluster;
  ASSERT_TRUE(cluster
                  .Build(TempName("grouped"), /*seed=*/47,
                         /*num_shards=*/4, GetParam(),
                         {{0u, 1u}, {2u, 3u}}, /*replicas=*/1,
                         QuietOptions())
                  .ok());
  const auto queries = GenerateQueryWorkload(
      cluster.expected().shard(0).dataset(),
      QueryWorkloadOptions{.num_queries = 4, .seed = 48});
  ExpectRangeBitIdentical(cluster.expected(), cluster.router(), queries,
                          "grouped");
  ExpectKnnBitIdentical(cluster.expected(), cluster.router(), queries,
                        "grouped");
  EXPECT_EQ(cluster.router().num_groups(), 2u);
  EXPECT_EQ(cluster.router().num_shards(), 4u);
}

TEST_P(RouterPropertyTest, KnnWaveSizesAllProduceTheSameAnswer) {
  // Smaller waves tighten the shared bound earlier but may only PRUNE
  // harder, never change the merged top-k.
  for (const size_t wave : {0u, 1u, 2u}) {
    RouterOptions options = QuietOptions();
    options.knn_wave_size = wave;
    Cluster cluster;
    ASSERT_TRUE(cluster
                    .Build(TempName("wave" + std::to_string(wave)),
                           /*seed=*/53, /*num_shards=*/4, GetParam(),
                           OneShardPerGroup(4), /*replicas=*/1,
                           std::move(options))
                    .ok());
    const auto queries = GenerateQueryWorkload(
        cluster.expected().shard(0).dataset(),
        QueryWorkloadOptions{.num_queries = 3, .seed = 54});
    ExpectKnnBitIdentical(cluster.expected(), cluster.router(), queries,
                          "wave=" + std::to_string(wave));
  }
}

TEST_P(RouterPropertyTest, KilledReplicaFailsOverWithExactAnswers) {
  Cluster cluster;
  ASSERT_TRUE(cluster
                  .Build(TempName("killed"), /*seed=*/61,
                         /*num_shards=*/2, GetParam(),
                         OneShardPerGroup(2), /*replicas=*/2,
                         QuietOptions())
                  .ok());
  // Hard-kill group 0's primary replica (server order: g0r0 g0r1 g1r0
  // g1r1). Connection refused is UNAVAILABLE: the router moves to the
  // next replica without backoff, and every answer stays exact.
  cluster.server(0).Stop();

  const auto queries = GenerateQueryWorkload(
      cluster.expected().shard(0).dataset(),
      QueryWorkloadOptions{.num_queries = 3, .seed = 62});
  ExpectRangeBitIdentical(cluster.expected(), cluster.router(), queries,
                          "killed-replica");
  ExpectKnnBitIdentical(cluster.expected(), cluster.router(), queries,
                        "killed-replica");
  EXPECT_GT(cluster.router().stats().retries, 0u);
  EXPECT_EQ(cluster.router().stats().failed_subrequests, 0u);
}

TEST_P(RouterPropertyTest, DrainingReplicaFailsOverWithExactAnswers) {
  Cluster cluster;
  ASSERT_TRUE(cluster
                  .Build(TempName("drained"), /*seed=*/67,
                         /*num_shards=*/2, GetParam(),
                         OneShardPerGroup(2), /*replicas=*/2,
                         QuietOptions())
                  .ok());
  // Graceful SIGTERM path: the replica answers UNAVAILABLE "draining"
  // on pooled connections — the router's signal to fail over now.
  cluster.server(0).RequestDrain();

  const auto queries = GenerateQueryWorkload(
      cluster.expected().shard(0).dataset(),
      QueryWorkloadOptions{.num_queries = 3, .seed = 68});
  ExpectRangeBitIdentical(cluster.expected(), cluster.router(), queries,
                          "draining-replica");
  cluster.server(0).WaitIdle();
  EXPECT_EQ(cluster.router().stats().failed_subrequests, 0u);
}

TEST_P(RouterPropertyTest, AllReplicasDeadIsAnErrorNotAPartialAnswer) {
  Cluster cluster;
  ASSERT_TRUE(cluster
                  .Build(TempName("dead"), /*seed=*/71,
                         /*num_shards=*/2, GetParam(),
                         OneShardPerGroup(2), /*replicas=*/1,
                         QuietOptions())
                  .ok());
  cluster.server(0).Stop();  // group 0 has no surviving replica

  const auto queries = GenerateQueryWorkload(
      cluster.expected().shard(0).dataset(),
      QueryWorkloadOptions{.num_queries = 1, .seed = 72});
  SearchResult out;
  const Status status = cluster.router().RouteRange(
      MethodKind::kTwSimSearch, queries.front(), /*epsilon=*/10.0,
      nullptr, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(out.matches.empty()) << "no partial answers";
  EXPECT_GT(cluster.router().stats().failed_subrequests, 0u);

  // The EngineLike wrapper has no error channel: empty result, counter.
  const SearchResult wrapped = cluster.router().SearchWith(
      MethodKind::kTwSimSearch, queries.front(), 10.0);
  EXPECT_TRUE(wrapped.matches.empty());
}

// A replica that accepts connections but never answers forces the hedge
// deterministically: the primary leg stalls past the hedge deadline, the
// backup leg answers, and the answer is still bit-identical.
TEST_P(RouterPropertyTest, StalledReplicaTriggersHedgeWithExactAnswers) {
  // Stalled fake replica: accepts and holds connections silently.
  TcpListener stalled;
  ASSERT_TRUE(stalled.Listen(TcpListenerOptions{}).ok());
  std::atomic<bool> stop{false};
  std::vector<int> held;
  std::mutex held_mu;
  std::thread acceptor([&] {
    while (!stop.load()) {
      const int fd = stalled.Accept();
      if (fd < 0) break;
      std::lock_guard<std::mutex> lock(held_mu);
      held.push_back(fd);
    }
  });

  const std::string dir = testing::TempDir() + "/router_prop_hedge_" +
                          std::string(PartitionerKindName(GetParam()));
  std::filesystem::remove_all(dir);
  ShardedEngineOptions engine_options;
  engine_options.num_shards = 1;
  engine_options.partitioner = GetParam();
  {
    const ShardedEngine built(WalkDataset(83), engine_options);
    ASSERT_TRUE(built.Save(dir).ok());
  }
  std::unique_ptr<ShardedEngine> expected;
  ASSERT_TRUE(ShardedEngine::Open(dir, engine_options, &expected).ok());

  ShardServerOptions server_options;
  server_options.db_dir = dir;
  server_options.serve_shards = {0};
  server_options.replica = 1;
  server_options.server.io_timeout_ms = 50;
  std::unique_ptr<ShardServer> real_replica;
  ASSERT_TRUE(
      ShardServer::Create(std::move(server_options), &real_replica).ok());
  ASSERT_TRUE(real_replica->Start().ok());

  FlightRecorder recorder(FlightRecorderOptions{.capacity = 64});
  RouterOptions options;
  options.enable_hedging = true;
  options.hedge_min_ms = 5;
  options.hedge_max_ms = 5;  // hedge almost immediately
  options.connect_timeout_ms = 500;
  options.call_timeout_ms = 3000;
  options.flight_recorder = &recorder;
  // Replica 0 stalls; replica 1 is real. The handshake succeeds off the
  // real replica, and every query's primary leg stalls into a hedge.
  options.groups = {{RouterEndpoint{"127.0.0.1", stalled.port()},
                     RouterEndpoint{"127.0.0.1", real_replica->port()}}};
  std::unique_ptr<Router> router;
  ASSERT_TRUE(Router::Create(std::move(options), &router).ok());

  const auto queries = GenerateQueryWorkload(
      expected->shard(0).dataset(),
      QueryWorkloadOptions{.num_queries = 3, .seed = 84});
  for (const Sequence& query : queries) {
    const SearchResult want =
        expected->SearchWith(MethodKind::kTwSimSearch, query, 0.3);
    SearchResult got;
    const Status status = router->RouteRange(MethodKind::kTwSimSearch,
                                             query, 0.3, nullptr, &got);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(got.matches, want.matches);
    EXPECT_EQ(got.num_candidates, want.num_candidates);
  }
  EXPECT_GT(router->stats().hedges, 0u)
      << "a stalled primary must force hedged backup requests";

  // The flight recorder attributes the winning replica and the hedge.
  bool saw_hedged_subrequest = false;
  for (const FlightRecord& record : recorder.Snapshot()) {
    if (record.replica >= 0 && record.net_hedges > 0) {
      saw_hedged_subrequest = true;
      EXPECT_EQ(record.replica, 1) << "the real replica won";
    }
  }
  EXPECT_TRUE(saw_hedged_subrequest);

  router.reset();
  stop.store(true);
  stalled.Shutdown();
  acceptor.join();
  {
    std::lock_guard<std::mutex> lock(held_mu);
    for (const int fd : held) CloseSocket(fd);
  }
  real_replica->Stop();
  std::filesystem::remove_all(dir);
}

TEST_P(RouterPropertyTest, TracedQueryStitchesRemoteSpans) {
  Cluster cluster;
  ASSERT_TRUE(cluster
                  .Build(TempName("traced"), /*seed=*/91,
                         /*num_shards=*/2, GetParam(),
                         OneShardPerGroup(2), /*replicas=*/1,
                         QuietOptions())
                  .ok());
  const auto queries = GenerateQueryWorkload(
      cluster.expected().shard(0).dataset(),
      QueryWorkloadOptions{.num_queries = 1, .seed = 92});

  Trace trace;
  SearchResult out;
  ASSERT_TRUE(cluster.router()
                  .RouteRange(MethodKind::kTwSimSearch, queries.front(),
                              /*epsilon=*/0.5, &trace, &out)
                  .ok());
  size_t scatter_spans = 0;
  size_t net_group_spans = 0;
  size_t remote_shard_spans = 0;
  for (const TraceSpan& span : trace.spans()) {
    if (span.name == "scatter_gather") ++scatter_spans;
    if (span.name == "net_group") ++net_group_spans;
    if (span.name == "shard") ++remote_shard_spans;
  }
  EXPECT_EQ(scatter_spans, 1u);
  // One synthetic net_group span per unpruned group, each holding the
  // replica's shipped remote spans underneath.
  EXPECT_GT(net_group_spans, 0u);
  EXPECT_EQ(remote_shard_spans, net_group_spans);
}

TEST_P(RouterPropertyTest, TopologyErrorsAreRejectedAtCreate) {
  const std::string dir = TempName("topology");
  std::filesystem::remove_all(dir);
  ShardedEngineOptions engine_options;
  engine_options.num_shards = 2;
  engine_options.partitioner = GetParam();
  {
    const ShardedEngine built(WalkDataset(97), engine_options);
    ASSERT_TRUE(built.Save(dir).ok());
  }

  auto start_server = [&](std::vector<uint32_t> shards)
      -> std::unique_ptr<ShardServer> {
    ShardServerOptions server_options;
    server_options.db_dir = dir;
    server_options.serve_shards = std::move(shards);
    server_options.server.io_timeout_ms = 50;
    std::unique_ptr<ShardServer> server;
    EXPECT_TRUE(
        ShardServer::Create(std::move(server_options), &server).ok());
    EXPECT_TRUE(server->Start().ok());
    return server;
  };

  auto shard0 = start_server({0});
  auto shard1 = start_server({1});
  auto both = start_server({0, 1});

  {  // Incomplete coverage: shard 1 unclaimed.
    RouterOptions options = QuietOptions();
    options.groups = {{RouterEndpoint{"127.0.0.1", shard0->port()}}};
    std::unique_ptr<Router> router;
    EXPECT_FALSE(Router::Create(std::move(options), &router).ok());
  }
  {  // Overlap: shard 0 claimed twice.
    RouterOptions options = QuietOptions();
    options.groups = {{RouterEndpoint{"127.0.0.1", shard0->port()}},
                      {RouterEndpoint{"127.0.0.1", both->port()}}};
    std::unique_ptr<Router> router;
    EXPECT_FALSE(Router::Create(std::move(options), &router).ok());
  }
  {  // Replicas of one group disagree about their shard subset.
    RouterOptions options = QuietOptions();
    options.groups = {{RouterEndpoint{"127.0.0.1", shard0->port()},
                       RouterEndpoint{"127.0.0.1", both->port()}},
                      {RouterEndpoint{"127.0.0.1", shard1->port()}}};
    std::unique_ptr<Router> router;
    EXPECT_FALSE(Router::Create(std::move(options), &router).ok());
  }
  {  // No groups at all.
    RouterOptions options = QuietOptions();
    std::unique_ptr<Router> router;
    EXPECT_FALSE(Router::Create(std::move(options), &router).ok());
  }
  {  // The happy topology still works (the rejections above were real).
    RouterOptions options = QuietOptions();
    options.groups = {{RouterEndpoint{"127.0.0.1", shard0->port()}},
                      {RouterEndpoint{"127.0.0.1", shard1->port()}}};
    std::unique_ptr<Router> router;
    EXPECT_TRUE(Router::Create(std::move(options), &router).ok());
  }

  shard0->Stop();
  shard1->Stop();
  both->Stop();
  std::filesystem::remove_all(dir);
}

TEST_P(RouterPropertyTest, FlightRecorderAttributesSubrequests) {
  FlightRecorder recorder(FlightRecorderOptions{.capacity = 64});
  SlowQueryLog slow_log(8);
  RouterOptions options = QuietOptions();
  options.flight_recorder = &recorder;
  options.slow_log = &slow_log;

  Cluster cluster;
  ASSERT_TRUE(cluster
                  .Build(TempName("flight"), /*seed=*/101,
                         /*num_shards=*/2, GetParam(),
                         OneShardPerGroup(2), /*replicas=*/1,
                         std::move(options))
                  .ok());
  const auto queries = GenerateQueryWorkload(
      cluster.expected().shard(0).dataset(),
      QueryWorkloadOptions{.num_queries = 2, .seed = 102});
  SearchResult out;
  ASSERT_TRUE(cluster.router()
                  .RouteRange(MethodKind::kTwSimSearch, queries.front(),
                              /*epsilon=*/0.5, nullptr, &out)
                  .ok());
  KnnResult knn;
  ASSERT_TRUE(
      cluster.router().RouteKnn(queries.front(), 2, nullptr, &knn).ok());

  size_t merged_records = 0;
  size_t sub_records = 0;
  for (const FlightRecord& record : recorder.Snapshot()) {
    if (record.shard < 0) {
      ++merged_records;  // the logical query (shard = -1)
    } else {
      ++sub_records;
      EXPECT_GE(record.replica, 0)
          << "sub-requests must say which replica answered";
    }
  }
  EXPECT_EQ(merged_records, 2u);  // one range + one kNN
  EXPECT_GT(sub_records, 0u);
  EXPECT_FALSE(slow_log.Snapshot().empty());
}

INSTANTIATE_TEST_SUITE_P(AllPartitioners, RouterPropertyTest,
                         ::testing::Values(PartitionerKind::kHash,
                                           PartitionerKind::kRange),
                         [](const auto& info) {
                           return std::string(
                               PartitionerKindName(info.param));
                         });

}  // namespace
}  // namespace warpindex
