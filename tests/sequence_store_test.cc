#include "storage/sequence_store.h"

#include <gtest/gtest.h>

#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

Dataset MakeDataset() {
  Dataset d;
  d.Add(Sequence({1.0, 2.0, 3.0}));
  d.Add(Sequence({4.0}));
  d.Add(Sequence(std::vector<double>(100, 7.0)));  // spans multiple pages
  return d;
}

TEST(SequenceStoreTest, FetchRoundTripsEverySequence) {
  const Dataset d = MakeDataset();
  const SequenceStore store(d, 128);
  ASSERT_EQ(store.num_sequences(), 3u);
  for (size_t i = 0; i < d.size(); ++i) {
    const Sequence fetched = store.Fetch(static_cast<SequenceId>(i));
    EXPECT_EQ(fetched, d[i]);
    EXPECT_EQ(fetched.id(), static_cast<SequenceId>(i));
  }
}

TEST(SequenceStoreTest, ScanVisitsAllInOrder) {
  const Dataset d = MakeDataset();
  const SequenceStore store(d, 128);
  std::vector<SequenceId> seen;
  store.ScanAll([&](SequenceId id, const Sequence& s) {
    seen.push_back(id);
    EXPECT_EQ(s, d[static_cast<size_t>(id)]);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<SequenceId>{0, 1, 2}));
}

TEST(SequenceStoreTest, ScanEarlyStop) {
  const SequenceStore store(MakeDataset(), 128);
  int visited = 0;
  store.ScanAll([&](SequenceId, const Sequence&) {
    ++visited;
    return visited < 2;
  });
  EXPECT_EQ(visited, 2);
}

TEST(SequenceStoreTest, PageCountMatchesPayload) {
  const Dataset d = MakeDataset();
  // Payload: (8 + 24) + (8 + 8) + (8 + 800) = 856 bytes.
  const SequenceStore store(d, 128);
  EXPECT_EQ(store.num_pages(), (856u + 127u) / 128u);
  EXPECT_EQ(store.TotalBytes(), store.num_pages() * 128u);
}

TEST(SequenceStoreTest, PagesOfSpanningRecord) {
  const Dataset d = MakeDataset();
  const SequenceStore store(d, 128);
  // Sequence 2 is 808 bytes -> at least 7 pages of 128.
  EXPECT_GE(store.PagesOf(2), 7u);
  EXPECT_LE(store.PagesOf(0), 1u);
}

TEST(SequenceStoreTest, FetchChargesOneSeekPlusRecordPages) {
  const SequenceStore store(MakeDataset(), 128);
  IoStats stats;
  store.Fetch(2, &stats);
  EXPECT_EQ(stats.seeks, 1u);
  EXPECT_EQ(stats.random_page_reads, store.PagesOf(2));
  EXPECT_EQ(stats.sequential_page_reads, 0u);
}

TEST(SequenceStoreTest, ScanChargesOneSequentialRun) {
  const SequenceStore store(MakeDataset(), 128);
  IoStats stats;
  store.ScanAll([](SequenceId, const Sequence&) { return true; }, &stats);
  EXPECT_EQ(stats.seeks, 1u);
  EXPECT_EQ(stats.sequential_page_reads, store.num_pages());
  EXPECT_EQ(stats.random_page_reads, 0u);
}

TEST(SequenceStoreTest, LargeDatasetRoundTrip) {
  RandomWalkOptions options;
  options.num_sequences = 50;
  options.min_length = 10;
  options.max_length = 300;
  const Dataset d = GenerateRandomWalkDataset(options);
  const SequenceStore store(d, 1024);
  for (size_t i = 0; i < d.size(); ++i) {
    ASSERT_EQ(store.Fetch(static_cast<SequenceId>(i)), d[i]);
  }
}

TEST(SequenceStoreTest, AppendExtendsTheHeapFile) {
  SequenceStore store(MakeDataset(), 128);
  const size_t pages_before = store.num_pages();
  IoStats stats;
  const SequenceId id =
      store.Append(Sequence(std::vector<double>(50, 3.5)), &stats);
  EXPECT_EQ(id, 3);
  EXPECT_EQ(store.num_sequences(), 4u);
  EXPECT_EQ(store.num_live(), 4u);
  EXPECT_GT(store.num_pages(), pages_before);
  EXPECT_GT(stats.page_writes, 0u);
  EXPECT_EQ(store.Fetch(id), Sequence(std::vector<double>(50, 3.5)));
}

TEST(SequenceStoreTest, AppendedRecordsSurviveInterleavedReads) {
  SequenceStore store(MakeDataset(), 64);
  std::vector<Sequence> appended;
  for (int i = 0; i < 20; ++i) {
    appended.emplace_back(
        std::vector<double>(static_cast<size_t>(3 + i * 5), i * 1.5));
    store.Append(appended.back());
    // Read back an earlier record between writes.
    EXPECT_EQ(store.Fetch(static_cast<SequenceId>(i / 2 + 3)),
              appended[static_cast<size_t>(i / 2)]);
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(store.Fetch(static_cast<SequenceId>(i + 3)),
              appended[static_cast<size_t>(i)]);
  }
}

TEST(SequenceStoreTest, RemoveTombstonesAndScanSkips) {
  SequenceStore store(MakeDataset(), 128);
  ASSERT_TRUE(store.Remove(1));
  EXPECT_FALSE(store.Remove(1));
  EXPECT_FALSE(store.Remove(99));
  EXPECT_FALSE(store.IsLive(1));
  EXPECT_TRUE(store.IsLive(0));
  EXPECT_EQ(store.num_live(), 2u);
  std::vector<SequenceId> seen;
  store.ScanAll([&](SequenceId id, const Sequence&) {
    seen.push_back(id);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<SequenceId>{0, 2}));
}

TEST(SequenceStoreTest, PaperPageSizeHoldsStockData) {
  // The store must round-trip the whole (synthetic) S&P corpus at the
  // paper's 1 KB page size.
  Dataset d;
  d.Add(Sequence(std::vector<double>(231, 42.0)));
  const SequenceStore store(d, 1024);
  // 8 + 231*8 = 1856 bytes -> 2 pages.
  EXPECT_EQ(store.num_pages(), 2u);
  EXPECT_EQ(store.Fetch(0), d[0]);
}

}  // namespace
}  // namespace warpindex
