#include "common/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace warpindex {
namespace {

// Builds a mutable argv from string literals.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (std::string& s : storage_) {
      pointers_.push_back(s.data());
    }
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

TEST(FlagsTest, ParsesEqualsAndSpaceForms) {
  FlagSet flags("test");
  int64_t n = 0;
  double eps = 0.0;
  std::string name;
  flags.AddInt64("n", &n, "count");
  flags.AddDouble("eps", &eps, "tolerance");
  flags.AddString("name", &name, "label");
  Argv argv({"prog", "--n=42", "--eps", "0.25", "--name=abc"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()));
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(eps, 0.25);
  EXPECT_EQ(name, "abc");
}

TEST(FlagsTest, BoolForms) {
  FlagSet flags("test");
  bool verbose = false;
  bool fast = true;
  flags.AddBool("verbose", &verbose, "chatty");
  flags.AddBool("fast", &fast, "speedy");
  Argv argv({"prog", "--verbose", "--nofast"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()));
  EXPECT_TRUE(verbose);
  EXPECT_FALSE(fast);
}

TEST(FlagsTest, BoolExplicitValues) {
  FlagSet flags("test");
  bool a = false;
  bool b = true;
  flags.AddBool("a", &a, "");
  flags.AddBool("b", &b, "");
  Argv argv({"prog", "--a=true", "--b=0"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()));
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);
}

TEST(FlagsTest, UnknownFlagFails) {
  FlagSet flags("test");
  int64_t n = 0;
  flags.AddInt64("n", &n, "count");
  Argv argv({"prog", "--bogus=1"});
  EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()));
}

TEST(FlagsTest, BadValueFails) {
  FlagSet flags("test");
  int64_t n = 0;
  flags.AddInt64("n", &n, "count");
  Argv argv({"prog", "--n=notanumber"});
  EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()));
}

TEST(FlagsTest, MissingValueFails) {
  FlagSet flags("test");
  int64_t n = 0;
  flags.AddInt64("n", &n, "count");
  Argv argv({"prog", "--n"});
  EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()));
}

TEST(FlagsTest, HelpReturnsFalse) {
  FlagSet flags("test");
  Argv argv({"prog", "--help"});
  EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()));
}

TEST(FlagsTest, UsageListsFlagsWithDefaults) {
  FlagSet flags("myprog");
  int64_t n = 10;
  flags.AddInt64("n", &n, "count of things");
  const std::string usage = flags.Usage();
  EXPECT_NE(usage.find("myprog"), std::string::npos);
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("count of things"), std::string::npos);
  EXPECT_NE(usage.find("10"), std::string::npos);
}

TEST(FlagsTest, DefaultsSurviveWhenNotSet) {
  FlagSet flags("test");
  int64_t n = 5;
  double eps = 1.5;
  flags.AddInt64("n", &n, "");
  flags.AddDouble("eps", &eps, "");
  Argv argv({"prog", "--n=9"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()));
  EXPECT_EQ(n, 9);
  EXPECT_DOUBLE_EQ(eps, 1.5);
}

}  // namespace
}  // namespace warpindex
