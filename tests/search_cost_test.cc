// SearchCost aggregation: Merge must be additive across every field
// (including the per-stage breakdown) and Reset must produce a
// reusable zero cost.

#include "core/search_method.h"

#include <gtest/gtest.h>

#include "obs/stage_timings.h"

namespace warpindex {
namespace {

SearchCost MakeCost(double scale) {
  SearchCost cost;
  cost.io.RecordRandomRead(static_cast<uint64_t>(2 * scale));
  cost.io.RecordSequentialRun(static_cast<uint64_t>(10 * scale));
  cost.dtw_cells = static_cast<uint64_t>(100 * scale);
  cost.dtw_evals = static_cast<uint64_t>(8 * scale);
  cost.lb_evals = static_cast<uint64_t>(5 * scale);
  cost.index_nodes = static_cast<uint64_t>(3 * scale);
  cost.wall_ms = 1.5 * scale;
  cost.cpu_ms = 1.25 * scale;
  cost.stages.Add(kStageRtreeSearch, 0.5 * scale);
  cost.stages_cpu.Add(kStageRtreeSearch, 0.4 * scale);
  cost.stages_cpu.Add(kStageDtwPostfilter, 0.8 * scale);
  cost.stages.Add(kStageDtwPostfilter, 1.0 * scale);
  cost.prunes.Record(kStageLbKeoghCascade, static_cast<uint64_t>(20 * scale),
                     static_cast<uint64_t>(12 * scale));
  cost.prunes.Record(kStageDtwPostfilter, static_cast<uint64_t>(8 * scale),
                     static_cast<uint64_t>(4 * scale));
  return cost;
}

TEST(SearchCostTest, MergeIsAdditive) {
  SearchCost a = MakeCost(1.0);
  const SearchCost b = MakeCost(2.0);
  a.Merge(b);

  EXPECT_EQ(a.io.random_page_reads, 6u);
  EXPECT_EQ(a.io.sequential_page_reads, 30u);
  EXPECT_EQ(a.io.seeks, 2u + 1u + 4u + 1u);
  EXPECT_EQ(a.dtw_cells, 300u);
  EXPECT_EQ(a.dtw_evals, 24u);
  EXPECT_EQ(a.lb_evals, 15u);
  EXPECT_EQ(a.index_nodes, 9u);
  EXPECT_DOUBLE_EQ(a.wall_ms, 4.5);
  EXPECT_DOUBLE_EQ(a.cpu_ms, 3.75);
  // StageTimings merge additively, stage by stage — the CPU siblings
  // included.
  EXPECT_DOUBLE_EQ(a.stages.Get(kStageRtreeSearch), 1.5);
  EXPECT_DOUBLE_EQ(a.stages.Get(kStageDtwPostfilter), 3.0);
  EXPECT_DOUBLE_EQ(a.stages_cpu.Get(kStageRtreeSearch), 1.2);
  EXPECT_DOUBLE_EQ(a.stages_cpu.Get(kStageDtwPostfilter), 2.4);
  EXPECT_DOUBLE_EQ(a.stages.TotalMillis(), 4.5);
  // StageCounters merge additively too (in and pruned separately).
  EXPECT_EQ(a.prunes.Get(kStageLbKeoghCascade).in, 60u);
  EXPECT_EQ(a.prunes.Get(kStageLbKeoghCascade).pruned, 36u);
  EXPECT_EQ(a.prunes.Get(kStageDtwPostfilter).in, 24u);
  EXPECT_EQ(a.prunes.Get(kStageDtwPostfilter).pruned, 12u);
}

// MergeParallel pins the sharded-merge semantics: resource counters
// (I/O, DTW work, lower-bound evals, index nodes, pool traffic, stage
// attribution, prunes) sum — they are machine work actually performed —
// but wall time takes the max, because the merged costs ran
// concurrently and only the critical path elapses.
TEST(SearchCostTest, MergeParallelSumsResourcesAndTakesMaxWall) {
  SearchCost a = MakeCost(1.0);
  const SearchCost b = MakeCost(2.0);
  a.MergeParallel(b);

  // Wall: max(1.5, 3.0), NOT 4.5 — K concurrent shards at t ms each
  // finish in ~t ms.
  EXPECT_DOUBLE_EQ(a.wall_ms, 3.0);
  // CPU stays ADDITIVE even across concurrent shards: K workers each
  // burning t ms really consumed K*t ms of machine time, and the
  // wall-vs-CPU skew is exactly what per-query CPU attribution exposes.
  EXPECT_DOUBLE_EQ(a.cpu_ms, 3.75);
  EXPECT_DOUBLE_EQ(a.stages_cpu.Get(kStageRtreeSearch), 1.2);
  EXPECT_DOUBLE_EQ(a.stages_cpu.Get(kStageDtwPostfilter), 2.4);
  // Everything else: identical to additive Merge.
  EXPECT_EQ(a.io.random_page_reads, 6u);
  EXPECT_EQ(a.io.sequential_page_reads, 30u);
  EXPECT_EQ(a.dtw_cells, 300u);
  EXPECT_EQ(a.dtw_evals, 24u);
  EXPECT_EQ(a.lb_evals, 15u);
  EXPECT_EQ(a.index_nodes, 9u);
  EXPECT_DOUBLE_EQ(a.stages.Get(kStageRtreeSearch), 1.5);
  EXPECT_DOUBLE_EQ(a.stages.Get(kStageDtwPostfilter), 3.0);
  EXPECT_EQ(a.prunes.Get(kStageLbKeoghCascade).in, 60u);
  EXPECT_EQ(a.prunes.Get(kStageLbKeoghCascade).pruned, 36u);
}

TEST(SearchCostTest, MergeParallelKeepsOwnWallWhenOtherIsFaster) {
  SearchCost slow = MakeCost(4.0);
  slow.MergeParallel(MakeCost(1.0));
  EXPECT_DOUBLE_EQ(slow.wall_ms, 6.0);  // max(6.0, 1.5)
  EXPECT_EQ(slow.dtw_evals, 40u);       // still summed
}

TEST(SearchCostTest, MergeParallelFoldIsOrderIndependentOnWall) {
  SearchCost forward;
  forward.MergeParallel(MakeCost(1.0));
  forward.MergeParallel(MakeCost(3.0));
  forward.MergeParallel(MakeCost(2.0));
  SearchCost backward;
  backward.MergeParallel(MakeCost(2.0));
  backward.MergeParallel(MakeCost(3.0));
  backward.MergeParallel(MakeCost(1.0));
  EXPECT_DOUBLE_EQ(forward.wall_ms, 4.5);  // max over the three
  EXPECT_DOUBLE_EQ(forward.wall_ms, backward.wall_ms);
  EXPECT_EQ(forward.dtw_cells, backward.dtw_cells);
}

TEST(SearchCostTest, MergeBringsInPruneStagesMissingOnTheLeft) {
  SearchCost a;
  SearchCost b;
  b.prunes.Record(kStageLbImprovedCascade, 10, 3);
  a.Merge(b);
  EXPECT_EQ(a.prunes.Get(kStageLbImprovedCascade).in, 10u);
  EXPECT_EQ(a.prunes.Get(kStageLbImprovedCascade).pruned, 3u);
  EXPECT_EQ(a.prunes.size(), 1u);
}

TEST(SearchCostTest, MergeBringsInStagesMissingOnTheLeft) {
  SearchCost a;
  SearchCost b;
  b.stages.Add(kStageLbYiCascade, 0.25);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.stages.Get(kStageLbYiCascade), 0.25);
  EXPECT_EQ(a.stages.size(), 1u);
}

TEST(SearchCostTest, ResetClearsEverything) {
  SearchCost cost = MakeCost(3.0);
  ASSERT_FALSE(cost.stages.empty());
  cost.Reset();

  EXPECT_EQ(cost.io.random_page_reads, 0u);
  EXPECT_EQ(cost.io.sequential_page_reads, 0u);
  EXPECT_EQ(cost.io.seeks, 0u);
  EXPECT_EQ(cost.dtw_cells, 0u);
  EXPECT_EQ(cost.dtw_evals, 0u);
  EXPECT_EQ(cost.lb_evals, 0u);
  EXPECT_EQ(cost.index_nodes, 0u);
  EXPECT_DOUBLE_EQ(cost.wall_ms, 0.0);
  EXPECT_TRUE(cost.stages.empty());
  EXPECT_DOUBLE_EQ(cost.stages.TotalMillis(), 0.0);
  EXPECT_TRUE(cost.prunes.empty());
}

TEST(SearchCostTest, ResetThenMergeAccumulatesFresh) {
  SearchCost acc = MakeCost(1.0);
  acc.Reset();
  acc.Merge(MakeCost(1.0));
  acc.Merge(MakeCost(1.0));
  EXPECT_EQ(acc.dtw_cells, 200u);
  EXPECT_DOUBLE_EQ(acc.stages.Get(kStageRtreeSearch), 1.0);
}

TEST(StageTimingsTest, AddAccumulatesAndKeepsInsertionOrder) {
  StageTimings stages;
  stages.Add("b", 1.0);
  stages.Add("a", 2.0);
  stages.Add("b", 0.5);
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages.entries()[0].first, "b");
  EXPECT_DOUBLE_EQ(stages.entries()[0].second, 1.5);
  EXPECT_EQ(stages.entries()[1].first, "a");
  EXPECT_DOUBLE_EQ(stages.Get("a"), 2.0);
  EXPECT_DOUBLE_EQ(stages.Get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(stages.TotalMillis(), 3.5);
}

TEST(StageTimingsTest, SelfMergeDoubles) {
  StageTimings stages;
  stages.Add("x", 1.25);
  stages.Merge(stages);
  EXPECT_DOUBLE_EQ(stages.Get("x"), 2.5);
  EXPECT_EQ(stages.size(), 1u);
}

TEST(StageTimingsTest, ScaleMultipliesEveryStage) {
  StageTimings stages;
  stages.Add("x", 2.0);
  stages.Add("y", 4.0);
  stages.Scale(0.5);
  EXPECT_DOUBLE_EQ(stages.Get("x"), 1.0);
  EXPECT_DOUBLE_EQ(stages.Get("y"), 2.0);
}

}  // namespace
}  // namespace warpindex
