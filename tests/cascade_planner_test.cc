// CascadePlanner (plan/cascade_planner.h): fixed modes return their
// shape verbatim; kAuto warms up on the full cascade, learns per-stage
// unit costs and pass rates from observations, keeps only stages that
// pay for themselves, and periodically re-explores dropped stages.

#include "plan/cascade_planner.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <tuple>
#include <vector>

namespace warpindex {
namespace {

using Stages = std::vector<CascadeStage>;

// One synthetic executed query: per-lb-stage (in, pruned, ms) triples
// plus the dtw stage's.
CascadeObservation MakeObservation(
    const std::vector<std::tuple<CascadeStage, uint64_t, uint64_t, double>>&
        lb,
    uint64_t dtw_in, uint64_t dtw_pruned, double dtw_ms) {
  CascadeObservation obs;
  for (const auto& [stage, in, pruned, ms] : lb) {
    obs.at(stage).in = in;
    obs.at(stage).pruned = pruned;
    obs.at(stage).ms = ms;
  }
  obs.dtw.in = dtw_in;
  obs.dtw.pruned = dtw_pruned;
  obs.dtw.ms = dtw_ms;
  return obs;
}

TEST(CascadePlannerTest, PaperModeChoosesNoLowerBoundStage) {
  CascadePlannerOptions options;
  options.mode = PlanMode::kPaper;
  CascadePlanner planner(options);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(planner.Choose().stages.empty());
  }
  EXPECT_EQ(planner.plans_chosen(), 5u);
}

TEST(CascadePlannerTest, CascadeModeChoosesFullCascade) {
  CascadePlanner planner;  // default mode: kCascade
  EXPECT_EQ(planner.Choose().stages, CascadePlan::Full().stages);
}

TEST(CascadePlannerTest, FixedModeChoosesTheFixedPlan) {
  CascadePlannerOptions options;
  options.mode = PlanMode::kFixed;
  options.fixed.stages = {CascadeStage::kFeatureLb, CascadeStage::kLbKeogh};
  CascadePlanner planner(options);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(planner.Choose().stages, options.fixed.stages);
  }
}

TEST(CascadePlannerTest, AutoWarmupRunsTheFullCascade) {
  CascadePlannerOptions options;
  options.mode = PlanMode::kAuto;
  options.warmup_queries = 4;
  options.explore_every = 0;
  CascadePlanner planner(options);
  for (size_t i = 0; i < options.warmup_queries; ++i) {
    EXPECT_EQ(planner.Choose().stages, CascadePlan::Full().stages)
        << "warm-up plan " << i;
  }
}

TEST(CascadePlannerTest, AutoKeepsCheapSelectiveStagesDropsUselessOnes) {
  CascadePlannerOptions options;
  options.mode = PlanMode::kAuto;
  options.warmup_queries = 0;
  options.explore_every = 0;
  CascadePlanner planner(options);

  // feature_lb: 0.0001 ms/candidate, prunes 90% — clearly worth it.
  // lb_yi: 0.01 ms/candidate, prunes NOTHING — pure overhead.
  // dtw: 1 ms/candidate downstream.
  const CascadeObservation obs = MakeObservation(
      {{CascadeStage::kFeatureLb, 100, 90, 0.01},
       {CascadeStage::kLbYi, 10, 0, 0.1}},
      /*dtw_in=*/10, /*dtw_pruned=*/5, /*dtw_ms=*/10.0);
  planner.Observe(obs);

  const CascadePlan plan = planner.Choose();
  EXPECT_EQ(plan.stages, Stages{CascadeStage::kFeatureLb})
      << "chose " << plan.ToString();
}

TEST(CascadePlannerTest, AutoDropsExpensiveStageWhoseSavingsAreTooSmall) {
  CascadePlannerOptions options;
  options.mode = PlanMode::kAuto;
  options.warmup_queries = 0;
  options.explore_every = 0;
  CascadePlanner planner(options);

  // lb_improved costs 0.9 ms/candidate but only prunes 10% of a 1
  // ms/candidate dtw stage: 0.9 > 0.1 * 1.0, not worth it.
  const CascadeObservation obs = MakeObservation(
      {{CascadeStage::kLbImproved, 100, 10, 90.0}},
      /*dtw_in=*/90, /*dtw_pruned=*/45, /*dtw_ms=*/90.0);
  planner.Observe(obs);
  EXPECT_TRUE(planner.Choose().stages.empty());
}

TEST(CascadePlannerTest, AutoReexploresPeriodically) {
  CascadePlannerOptions options;
  options.mode = PlanMode::kAuto;
  options.warmup_queries = 1;
  options.explore_every = 3;
  CascadePlanner planner(options);

  // Statistics that make every stage a loser, so the greedy plan is
  // empty — except on warm-up and every 3rd plan, which must re-run the
  // full cascade to refresh dropped stages' statistics.
  CascadeObservation obs = MakeObservation(
      {{CascadeStage::kFeatureLb, 100, 0, 1.0},
       {CascadeStage::kLbYi, 100, 0, 1.0},
       {CascadeStage::kLbKeogh, 100, 0, 1.0},
       {CascadeStage::kLbImproved, 100, 0, 1.0}},
      /*dtw_in=*/100, /*dtw_pruned=*/50, /*dtw_ms=*/1.0);
  planner.Observe(obs);

  const Stages full = CascadePlan::Full().stages;
  for (int plan_number = 1; plan_number <= 9; ++plan_number) {
    const CascadePlan plan = planner.Choose();
    const bool warming = plan_number <= 1;
    const bool exploring = plan_number % 3 == 0;
    if (warming || exploring) {
      EXPECT_EQ(plan.stages, full) << "plan " << plan_number;
    } else {
      EXPECT_TRUE(plan.stages.empty()) << "plan " << plan_number;
    }
  }
}

TEST(CascadePlannerTest, ObserveMaintainsEwmaStatsPerStage) {
  CascadePlannerOptions options;
  options.mode = PlanMode::kAuto;
  options.ewma_alpha = 0.5;
  CascadePlanner planner(options);

  planner.Observe(MakeObservation({{CascadeStage::kLbKeogh, 100, 80, 10.0}},
                                  20, 10, 40.0));
  // First observation seeds the estimate directly.
  CascadePlanner::StageStats stats =
      planner.stage_stats(CascadeStage::kLbKeogh);
  EXPECT_DOUBLE_EQ(stats.unit_cost_ms, 0.1);
  EXPECT_DOUBLE_EQ(stats.pass_rate, 0.2);
  EXPECT_EQ(stats.updates, 1u);
  EXPECT_DOUBLE_EQ(planner.dtw_stats().unit_cost_ms, 2.0);

  planner.Observe(MakeObservation({{CascadeStage::kLbKeogh, 100, 40, 30.0}},
                                  60, 30, 120.0));
  stats = planner.stage_stats(CascadeStage::kLbKeogh);
  EXPECT_DOUBLE_EQ(stats.unit_cost_ms, 0.5 * 0.1 + 0.5 * 0.3);
  EXPECT_DOUBLE_EQ(stats.pass_rate, 0.5 * 0.2 + 0.5 * 0.6);
  EXPECT_EQ(stats.updates, 2u);
  // A stage the query never ran keeps its defaults.
  EXPECT_EQ(planner.stage_stats(CascadeStage::kLbImproved).updates, 0u);
}

TEST(CascadePlannerTest, ConcurrentChooseAndObserveAreSafe) {
  // Exercised under TSan in CI: the planner is shared by every worker of
  // the concurrent executor.
  CascadePlannerOptions options;
  options.mode = PlanMode::kAuto;
  options.warmup_queries = 2;
  options.explore_every = 4;
  CascadePlanner planner(options);

  constexpr int kThreads = 4;
  constexpr int kIterations = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&planner]() {
      for (int i = 0; i < kIterations; ++i) {
        const CascadePlan plan = planner.Choose();
        CascadeObservation obs;
        uint64_t in = 64;
        for (const CascadeStage stage : plan.stages) {
          obs.at(stage).in = in;
          obs.at(stage).pruned = in / 4;
          obs.at(stage).ms = 0.01;
          in -= in / 4;
        }
        obs.dtw.in = in;
        obs.dtw.pruned = in / 2;
        obs.dtw.ms = 1.0;
        planner.Observe(obs);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(planner.plans_chosen(),
            static_cast<uint64_t>(kThreads) * kIterations);
}

}  // namespace
}  // namespace warpindex
