// Engine persistence: Save() + Open() must restore identical query
// behavior — including tombstones — without rebuilding the index.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "core/engine.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

Dataset WalkDataset(size_t n = 80) {
  RandomWalkOptions options;
  options.num_sequences = n;
  options.min_length = 30;
  options.max_length = 70;
  return GenerateRandomWalkDataset(options);
}

std::string TempDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<SequenceId> Sorted(std::vector<SequenceId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(EnginePersistenceTest, RoundTripPreservesQueryResults) {
  const std::string dir = TempDir("engine_roundtrip");
  Engine original(WalkDataset(), EngineOptions{});
  ASSERT_TRUE(original.Save(dir).ok());

  std::unique_ptr<Engine> reopened;
  ASSERT_TRUE(Engine::Open(dir, EngineOptions{}, &reopened).ok());
  EXPECT_EQ(reopened->dataset().size(), original.dataset().size());
  EXPECT_EQ(reopened->feature_index().rtree().node_count(),
            original.feature_index().rtree().node_count());

  const auto queries = GenerateQueryWorkload(
      original.dataset(), QueryWorkloadOptions{.num_queries = 10});
  for (const Sequence& q : queries) {
    EXPECT_EQ(Sorted(reopened->Search(q, 0.2).matches),
              Sorted(original.Search(q, 0.2).matches));
  }
  std::filesystem::remove_all(dir);
}

TEST(EnginePersistenceTest, TombstonesSurviveRoundTrip) {
  const std::string dir = TempDir("engine_tombstones");
  Engine original(WalkDataset(), EngineOptions{});
  ASSERT_TRUE(original.Remove(3));
  ASSERT_TRUE(original.Remove(42));
  const SequenceId inserted =
      original.Insert(Sequence({9.0, 9.5, 10.0, 9.5}));
  ASSERT_TRUE(original.Save(dir).ok());

  std::unique_ptr<Engine> reopened;
  ASSERT_TRUE(Engine::Open(dir, EngineOptions{}, &reopened).ok());
  EXPECT_EQ(reopened->live_size(), original.live_size());
  EXPECT_FALSE(reopened->Contains(3));
  EXPECT_FALSE(reopened->Contains(42));
  EXPECT_TRUE(reopened->Contains(inserted));

  // The removed sequence must not resurface in any method.
  const Sequence removed = original.dataset()[3];
  for (const MethodKind kind : {MethodKind::kTwSimSearch,
                                MethodKind::kNaiveScan,
                                MethodKind::kLbScan}) {
    const auto matches = reopened->SearchWith(kind, removed, 0.0).matches;
    EXPECT_EQ(std::find(matches.begin(), matches.end(), 3), matches.end());
  }
  // The inserted one must.
  const auto hits =
      reopened->Search(reopened->dataset()[static_cast<size_t>(inserted)],
                       0.0);
  EXPECT_NE(std::find(hits.matches.begin(), hits.matches.end(), inserted),
            hits.matches.end());
  std::filesystem::remove_all(dir);
}

TEST(EnginePersistenceTest, ReopenedEngineSupportsMutationAndKnn) {
  const std::string dir = TempDir("engine_mutate");
  {
    Engine original(WalkDataset(40), EngineOptions{});
    ASSERT_TRUE(original.Save(dir).ok());
  }
  std::unique_ptr<Engine> engine;
  ASSERT_TRUE(Engine::Open(dir, EngineOptions{}, &engine).ok());
  const SequenceId id = engine->Insert(Sequence({1.0, 2.0, 1.0}));
  EXPECT_EQ(engine->SearchKnn(Sequence({1.0, 2.0, 1.0}), 1).neighbors[0].id,
            id);
  EXPECT_TRUE(engine->Remove(0));
  EXPECT_TRUE(engine->feature_index().rtree().CheckInvariants().ok());
  std::filesystem::remove_all(dir);
}

TEST(EnginePersistenceTest, PageSizeMismatchRejected) {
  const std::string dir = TempDir("engine_pagesize");
  Engine original(WalkDataset(20), EngineOptions{});
  ASSERT_TRUE(original.Save(dir).ok());
  EngineOptions other;
  other.page_size_bytes = 4096;
  std::unique_ptr<Engine> reopened;
  const Status status = Engine::Open(dir, other, &reopened);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::filesystem::remove_all(dir);
}

TEST(EnginePersistenceTest, MissingDirectoryFails) {
  std::unique_ptr<Engine> engine;
  EXPECT_FALSE(
      Engine::Open("/nonexistent/engine_dir", EngineOptions{}, &engine)
          .ok());
}

}  // namespace
}  // namespace warpindex
