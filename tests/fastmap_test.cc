#include "fastmap/fastmap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dtw/dtw.h"
#include "fastmap/fastmap_index.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

Dataset SmallDataset(size_t n = 40, size_t len = 30) {
  RandomWalkOptions options;
  options.num_sequences = n;
  options.min_length = len / 2;
  options.max_length = len;
  return GenerateRandomWalkDataset(options);
}

TEST(FastMapTest, ProducesRequestedDimensionality) {
  const Dataset d = SmallDataset();
  FastMapOptions options;
  options.dims = 3;
  const FastMap fm(d, options);
  EXPECT_EQ(fm.dims(), 3);
  EXPECT_EQ(fm.DataPoint(0).dims, 3);
}

TEST(FastMapTest, DeterministicInSeed) {
  const Dataset d = SmallDataset();
  const FastMap a(d, FastMapOptions{});
  const FastMap b(d, FastMapOptions{});
  for (size_t i = 0; i < d.size(); ++i) {
    const Point pa = a.DataPoint(static_cast<SequenceId>(i));
    const Point pb = b.DataPoint(static_cast<SequenceId>(i));
    for (int dd = 0; dd < pa.dims; ++dd) {
      EXPECT_EQ(pa[dd], pb[dd]);
    }
  }
}

TEST(FastMapTest, EmbedOfDataObjectMatchesStoredPoint) {
  const Dataset d = SmallDataset(20, 20);
  FastMapOptions options;
  options.dims = 2;
  const FastMap fm(d, options);
  for (size_t i = 0; i < d.size(); ++i) {
    const Point stored = fm.DataPoint(static_cast<SequenceId>(i));
    const Point embedded = fm.Embed(d[i]);
    for (int dd = 0; dd < 2; ++dd) {
      EXPECT_NEAR(embedded[dd], stored[dd], 1e-9);
    }
  }
}

TEST(FastMapTest, SimilarSequencesEmbedNearby) {
  const Dataset d = SmallDataset(30, 25);
  FastMapOptions options;
  options.dims = 4;
  const FastMap fm(d, options);
  // A barely-perturbed copy of object 0 must land closer to object 0 than
  // the average inter-object embedded distance.
  const Sequence near_copy = PerturbSequence(d[0], 9);
  const Point p0 = fm.DataPoint(0);
  const Point pq = fm.Embed(near_copy);
  double d_near = 0.0;
  for (int dd = 0; dd < 4; ++dd) {
    d_near += (pq[dd] - p0[dd]) * (pq[dd] - p0[dd]);
  }
  double avg = 0.0;
  int count = 0;
  for (size_t i = 1; i < d.size(); ++i) {
    const Point pi = fm.DataPoint(static_cast<SequenceId>(i));
    double dist2 = 0.0;
    for (int dd = 0; dd < 4; ++dd) {
      dist2 += (pi[dd] - p0[dd]) * (pi[dd] - p0[dd]);
    }
    avg += std::sqrt(dist2);
    ++count;
  }
  avg /= count;
  EXPECT_LT(std::sqrt(d_near), avg);
}

TEST(FastMapTest, BuildDistanceEvalsAccounted) {
  const Dataset d = SmallDataset(25, 20);
  FastMapOptions options;
  options.dims = 2;
  const FastMap fm(d, options);
  // Per axis: pivot scans + projections, all >= N.
  EXPECT_GE(fm.build_distance_evals(), 2 * d.size());
}

TEST(FastMapTest, DegenerateAllIdenticalDatasetEmbedsAtOrigin) {
  // Every pairwise distance is zero, so every pivot pair has dist 0 and
  // all coordinates collapse to 0 — must not divide by zero.
  Dataset d;
  for (int i = 0; i < 10; ++i) {
    d.Add(Sequence({1.0, 2.0, 3.0}));
  }
  FastMapOptions options;
  options.dims = 3;
  const FastMap fm(d, options);
  for (size_t i = 0; i < d.size(); ++i) {
    const Point p = fm.DataPoint(static_cast<SequenceId>(i));
    for (int dd = 0; dd < 3; ++dd) {
      EXPECT_EQ(p[dd], 0.0);
    }
  }
  const Point q = fm.Embed(Sequence({5.0, 6.0}));
  for (int dd = 0; dd < 3; ++dd) {
    EXPECT_EQ(q[dd], 0.0);
  }
}

TEST(FastMapTest, SingleObjectDataset) {
  Dataset d;
  d.Add(Sequence({1.0, 2.0}));
  FastMapOptions options;
  options.dims = 2;
  const FastMap fm(d, options);
  const Point p = fm.DataPoint(0);
  EXPECT_EQ(p[0], 0.0);
  EXPECT_EQ(p[1], 0.0);
}

TEST(FastMapIndexTest, CandidatesMatchEmbeddedSpaceBruteForce) {
  const Dataset d = SmallDataset(50, 25);
  FastMapIndexOptions options;
  options.fastmap.dims = 3;
  const FastMapIndex index(d, options);
  const Sequence q = PerturbSequence(d[5], 77);
  const double epsilon = 0.4;
  auto candidates = index.FindCandidates(q, epsilon);
  std::sort(candidates.begin(), candidates.end());

  const Point pq = index.fastmap().Embed(q);
  std::vector<SequenceId> expected;
  for (size_t i = 0; i < d.size(); ++i) {
    const Point pi = index.fastmap().DataPoint(static_cast<SequenceId>(i));
    bool inside = true;
    for (int dd = 0; dd < 3; ++dd) {
      if (std::fabs(pi[dd] - pq[dd]) > epsilon) {
        inside = false;
        break;
      }
    }
    if (inside) {
      expected.push_back(static_cast<SequenceId>(i));
    }
  }
  EXPECT_EQ(candidates, expected);
}

TEST(FastMapIndexTest, RecallCanBeMeasuredAndMayLoseMatches) {
  // The reason the paper excludes FastMap: candidates are not guaranteed
  // to cover the true result set. We verify the pipeline runs and that
  // recall is a well-defined number in [0, 1] (the ablation bench reports
  // the actual value over many queries).
  const Dataset d = SmallDataset(60, 30);
  FastMapIndexOptions options;
  options.fastmap.dims = 2;
  const FastMapIndex index(d, options);
  const Dtw dtw(DtwOptions::Linf());
  const auto queries =
      GenerateQueryWorkload(d, QueryWorkloadOptions{.num_queries = 15});
  size_t truth = 0;
  size_t covered = 0;
  const double epsilon = 0.2;
  for (const Sequence& q : queries) {
    auto candidates = index.FindCandidates(q, epsilon);
    std::sort(candidates.begin(), candidates.end());
    for (size_t i = 0; i < d.size(); ++i) {
      if (dtw.Distance(d[i], q).distance <= epsilon) {
        ++truth;
        if (std::binary_search(candidates.begin(), candidates.end(),
                               static_cast<SequenceId>(i))) {
          ++covered;
        }
      }
    }
  }
  ASSERT_GT(truth, 0u);  // perturbed copies should match their source
  EXPECT_LE(covered, truth);
}

}  // namespace
}  // namespace warpindex
