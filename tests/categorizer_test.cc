#include "suffixtree/categorizer.h"

#include <gtest/gtest.h>

namespace warpindex {
namespace {

TEST(CategorizerTest, PartitionsRangeEvenly) {
  const Categorizer c = Categorizer::EqualWidth(0.0, 10.0, 5);
  EXPECT_EQ(c.num_categories(), 5u);
  EXPECT_EQ(c.Categorize(0.5), 0);
  EXPECT_EQ(c.Categorize(2.5), 1);
  EXPECT_EQ(c.Categorize(9.9), 4);
}

TEST(CategorizerTest, BoundaryValues) {
  const Categorizer c = Categorizer::EqualWidth(0.0, 10.0, 5);
  EXPECT_EQ(c.Categorize(0.0), 0);
  EXPECT_EQ(c.Categorize(10.0), 4);
  // Interior boundary 2.0 belongs to the upper interval (half-open).
  EXPECT_EQ(c.Categorize(2.0), 1);
}

TEST(CategorizerTest, ClampsOutOfRangeValues) {
  const Categorizer c = Categorizer::EqualWidth(0.0, 10.0, 5);
  EXPECT_EQ(c.Categorize(-100.0), 0);
  EXPECT_EQ(c.Categorize(100.0), 4);
}

TEST(CategorizerTest, IntervalsTileTheRange) {
  const Categorizer c = Categorizer::EqualWidth(-3.0, 7.0, 4);
  EXPECT_DOUBLE_EQ(c.IntervalLow(0), -3.0);
  EXPECT_DOUBLE_EQ(c.IntervalHigh(3), 7.0);
  for (Symbol s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(c.IntervalHigh(s), c.IntervalLow(s + 1));
  }
}

TEST(CategorizerTest, EveryValueFallsInItsInterval) {
  const Categorizer c = Categorizer::EqualWidth(0.0, 1.0, 100);
  for (int i = 0; i <= 1000; ++i) {
    const double v = i / 1000.0;
    const Symbol s = c.Categorize(v);
    EXPECT_GE(v, c.IntervalLow(s) - 1e-12);
    EXPECT_LE(v, c.IntervalHigh(s) + 1e-12);
  }
}

TEST(CategorizerTest, LowerBoundDistanceZeroInside) {
  const Categorizer c = Categorizer::EqualWidth(0.0, 10.0, 5);
  // Category 1 covers [2, 4].
  EXPECT_DOUBLE_EQ(c.LowerBoundDistance(1, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(c.LowerBoundDistance(1, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(c.LowerBoundDistance(1, 4.0), 0.0);
}

TEST(CategorizerTest, LowerBoundDistanceOutside) {
  const Categorizer c = Categorizer::EqualWidth(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(c.LowerBoundDistance(1, 1.0), 1.0);  // below [2,4]
  EXPECT_DOUBLE_EQ(c.LowerBoundDistance(1, 6.5), 2.5);  // above [2,4]
}

TEST(CategorizerTest, LowerBoundNeverExceedsTrueDistance) {
  const Categorizer c = Categorizer::EqualWidth(0.0, 100.0, 100);
  // For any pair (v, w): dist(category(v), w) <= |v - w|.
  for (double v = 0.0; v <= 100.0; v += 3.7) {
    for (double w = 0.0; w <= 100.0; w += 5.3) {
      EXPECT_LE(c.LowerBoundDistance(c.Categorize(v), w),
                std::abs(v - w) + 1e-12);
    }
  }
}

TEST(CategorizerTest, CategorizeSequence) {
  const Categorizer c = Categorizer::EqualWidth(0.0, 10.0, 5);
  const auto symbols = c.CategorizeSequence(Sequence({0.5, 5.0, 9.9}));
  EXPECT_EQ(symbols, (std::vector<Symbol>{0, 2, 4}));
}

TEST(CategorizerTest, SingleCategoryDegenerate) {
  const Categorizer c = Categorizer::EqualWidth(0.0, 1.0, 1);
  EXPECT_EQ(c.Categorize(0.3), 0);
  EXPECT_DOUBLE_EQ(c.LowerBoundDistance(0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.LowerBoundDistance(0, 2.0), 1.0);
}

}  // namespace
}  // namespace warpindex
