#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace warpindex {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([]() { return 42; }).get(), 42);
}

TEST(ThreadPoolTest, WorkerIndexIsStableAndInRange) {
  ThreadPool pool(3);
  EXPECT_EQ(ThreadPool::current_worker_index(), -1);  // not a pool thread
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(
        pool.Submit([]() { return ThreadPool::current_worker_index(); }));
  }
  std::set<int> seen;
  for (auto& f : futures) {
    const int index = f.get();
    EXPECT_GE(index, 0);
    EXPECT_LT(index, 3);
    seen.insert(index);
  }
  EXPECT_FALSE(seen.empty());
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedWork) {
  // One worker, many slow tasks: most are still queued when Shutdown is
  // called, and the drain policy must run every one of them.
  ThreadPool pool(1);
  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([&executed]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      executed.fetch_add(1);
    }));
  }
  pool.Shutdown();
  EXPECT_EQ(executed.load(), 16);
  for (auto& f : futures) {
    f.get();  // all futures are satisfied, none abandoned
  }
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_THROW(pool.Submit([]() { return 1; }), std::runtime_error);
  EXPECT_FALSE(pool.TrySubmitDetached([]() {}));
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();  // no deadlock, no double-join
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto ok = pool.Submit([]() { return 7; });
  auto bad = pool.Submit(
      []() -> int { throw std::runtime_error("query failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task is still alive.
  EXPECT_EQ(pool.Submit([]() { return 8; }).get(), 8);
}

TEST(ThreadPoolTest, ConcurrentSubmitters) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 8; ++t) {
    submitters.emplace_back([&pool, &total]() {
      std::vector<std::future<void>> futures;
      for (int i = 0; i < 50; ++i) {
        futures.push_back(pool.Submit([&total]() { total.fetch_add(1); }));
      }
      for (auto& f : futures) {
        f.get();
      }
    });
  }
  for (std::thread& t : submitters) {
    t.join();
  }
  EXPECT_EQ(total.load(), 8 * 50);
}

}  // namespace
}  // namespace warpindex
